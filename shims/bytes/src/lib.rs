//! Vendored stand-in for the `bytes` crate.
//!
//! Provides only the [`Buf`] / [`BufMut`] trait subset the workspace's
//! wire format uses: cursor-style reads over `&[u8]` and appends onto
//! `Vec<u8>`. Semantics match the real crate for that subset (reads
//! advance the slice; `get_*` panic when the buffer is short, which
//! callers guard with [`Buf::has_remaining`] / [`Buf::remaining`]).

#![forbid(unsafe_code)]

/// Read side of a byte cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Returns the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Advances the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);

    /// Whether any bytes are left.
    #[inline]
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte, advancing.
    #[inline]
    fn get_u8(&mut self) -> u8 {
        assert!(self.has_remaining(), "get_u8 on empty buffer");
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Reads a little-endian `u16`, advancing.
    #[inline]
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32`, advancing.
    #[inline]
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`, advancing.
    #[inline]
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }

    /// Copies `dst.len()` bytes out, advancing.
    #[inline]
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice past end");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    #[inline]
    fn remaining(&self) -> usize {
        self.len()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        self
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

impl<B: Buf + ?Sized> Buf for &mut B {
    #[inline]
    fn remaining(&self) -> usize {
        (**self).remaining()
    }

    #[inline]
    fn chunk(&self) -> &[u8] {
        (**self).chunk()
    }

    #[inline]
    fn advance(&mut self, cnt: usize) {
        (**self).advance(cnt)
    }
}

/// Write side: append-only byte sink.
pub trait BufMut {
    /// Appends one byte.
    fn put_u8(&mut self, v: u8);

    /// Appends a byte slice.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u16`.
    #[inline]
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    #[inline]
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    #[inline]
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl<B: BufMut + ?Sized> BufMut for &mut B {
    #[inline]
    fn put_u8(&mut self, v: u8) {
        (**self).put_u8(v)
    }

    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        (**self).put_slice(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_slice_and_vec() {
        let mut buf: Vec<u8> = Vec::new();
        buf.put_u8(7);
        buf.put_u64_le(0xDEAD_BEEF_u64);
        let mut cur: &[u8] = &buf;
        assert_eq!(cur.remaining(), 9);
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u64_le(), 0xDEAD_BEEF);
        assert!(!cur.has_remaining());
    }
}
