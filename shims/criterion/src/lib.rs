//! Vendored stand-in for `criterion`.
//!
//! Keeps the API surface the bench targets use — `Criterion`,
//! `bench_function`, `benchmark_group`/`finish`, `Bencher::iter`,
//! `criterion_group!`/`criterion_main!` — over a simple wall-clock
//! harness: calibrate the iteration count until a batch is long
//! enough to time, take a few samples, report the median ns/iter.
//! No statistics machinery, no HTML reports. When invoked with
//! `--test` (as `cargo test --benches` does) every benchmark runs a
//! single iteration as a smoke test.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the batch size the harness selected.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The benchmark harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test --benches` invokes bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Anything else is ignored.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Runs one benchmark and prints its median time per iteration.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.test_mode, f);
        self
    }

    /// Opens a named group; benchmarks inside report as `group/name`.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), criterion: self }
    }
}

/// Scoped collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, f: F) -> &mut Self
    where
        S: Into<String>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.criterion.test_mode, f);
        self
    }

    /// Ends the group (reporting is per-benchmark; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, test_mode: bool, mut f: F) {
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    // Warmup (and the entire run, in test mode).
    f(&mut b);
    if test_mode {
        println!("bench {name}: ok (smoke, 1 iter)");
        return;
    }
    // Calibrate: grow the batch until it is long enough to time
    // reliably, capping total calibration effort.
    let mut iters: u64 = 1;
    loop {
        b.iters = iters;
        f(&mut b);
        if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
            break;
        }
        iters *= 2;
    }
    let samples: Vec<u128> = (0..5)
        .map(|_| {
            b.iters = iters;
            f(&mut b);
            b.elapsed.as_nanos() / iters as u128
        })
        .collect();
    let mut sorted = samples;
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2];
    println!("bench {name}: {median} ns/iter (x{iters}, 5 samples)");
}

/// Bundles benchmark functions into one runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_loop() {
        let mut c = Criterion { test_mode: true };
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| std::hint::black_box(2u64 + 2));
            ran = true;
        });
        assert!(ran);
    }
}
