//! Vendored stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use:
//! `proptest! { #[test] fn f(x in strategy) { .. } }`, `prop_assert*`,
//! `prop_oneof!`, `any::<T>()`, range and tuple strategies,
//! `Strategy::prop_map`, `prop::collection::vec`, and simple
//! `"[class]{m,n}"` string patterns. Failing cases are reported with
//! their case number and seed; there is **no shrinking**.
//!
//! Determinism: every test derives its stream from a base seed — the
//! `PROPTEST_SEED` env var when set (CI pins this), else a fixed
//! default — mixed with the test's module path, so runs are
//! reproducible by construction.

#![forbid(unsafe_code)]

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// A generator of test values. Unlike real proptest there is no
    /// value tree and no shrinking: a strategy just samples.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, func: f }
        }

        /// Erases the concrete strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        source: S,
        func: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.func)(self.source.generate(rng))
        }
    }

    /// Type-erased strategy (see [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one strategy");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let idx = rng.random_range(0..self.options.len());
            self.options[idx].generate(rng)
        }
    }

    /// Always produces clones of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.random_range(self.clone())
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut StdRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            lo + rng.random::<f64>() * (hi - lo)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($S:ident . $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

    /// String pattern strategy: `&'static str` of the form
    /// `"[class]{m,n}"` (or any literal string without a class, taken
    /// verbatim). Supports `a-z` ranges and `\n`/`\t`/`\\`/`\]`
    /// escapes inside the class — the subset the tests use.
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut StdRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }
}

pub mod string {
    use rand::rngs::StdRng;
    use rand::RngExt;

    fn parse_class(body: &str) -> Vec<char> {
        let chars: Vec<char> = body.chars().collect();
        let mut set = Vec::new();
        let mut i = 0;
        while i < chars.len() {
            let c = match chars[i] {
                '\\' if i + 1 < chars.len() => {
                    i += 1;
                    match chars[i] {
                        'n' => '\n',
                        't' => '\t',
                        'r' => '\r',
                        other => other,
                    }
                }
                other => other,
            };
            // Range form `a-z` (a literal '-' at either end stands alone).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let hi = chars[i + 2];
                for code in (c as u32)..=(hi as u32) {
                    if let Some(ch) = char::from_u32(code) {
                        set.push(ch);
                    }
                }
                i += 3;
            } else {
                set.push(c);
                i += 1;
            }
        }
        set
    }

    /// Generates a string for a `"[class]{m,n}"` pattern; any other
    /// pattern shape is returned verbatim.
    pub(crate) fn generate_pattern(pattern: &str, rng: &mut StdRng) -> String {
        let parsed = pattern
            .strip_prefix('[')
            .and_then(|rest| rest.split_once(']'))
            .and_then(|(class, quant)| {
                let quant = quant.strip_prefix('{')?.strip_suffix('}')?;
                let (lo, hi) = quant.split_once(',')?;
                Some((parse_class(class), lo.parse::<usize>().ok()?, hi.parse::<usize>().ok()?))
            });
        match parsed {
            Some((set, lo, hi)) if !set.is_empty() => {
                let len = rng.random_range(lo..=hi);
                (0..len).map(|_| set[rng.random_range(0..set.len())]).collect()
            }
            _ => pattern.to_string(),
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use core::marker::PhantomData;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.random()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize, bool);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            rng.random()
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<A>(PhantomData<A>);

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;

        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// The whole-domain strategy for `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::RngExt;

    /// Element-count bounds for collection strategies.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for vectors of `element` values.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-suite configuration (only `cases` is honored).
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property, carrying its message.
    #[derive(Debug)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// Builds a failure with `message`.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h
    }

    /// Drives one `proptest!` test: derives a deterministic per-case
    /// RNG from the base seed and the test's name.
    pub struct TestRunner {
        cases: u32,
        seed: u64,
    }

    impl TestRunner {
        /// Base seed when `PROPTEST_SEED` is unset.
        pub const DEFAULT_SEED: u64 = 0x1BAC_71FE_5EED_2016;

        /// Builds a runner for the named test. `PROPTEST_SEED`
        /// overrides the base seed; `PROPTEST_CASES` the case count.
        pub fn new(config: ProptestConfig, name: &str) -> Self {
            let base = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse::<u64>().ok())
                .unwrap_or(Self::DEFAULT_SEED);
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse::<u32>().ok())
                .unwrap_or(config.cases);
            TestRunner { cases, seed: base ^ fnv1a(name) }
        }

        /// Number of cases to run.
        pub fn cases(&self) -> u32 {
            self.cases
        }

        /// The base seed in effect (for failure reports).
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Deterministic RNG for one case index.
        pub fn rng_for_case(&self, case: u32) -> StdRng {
            StdRng::seed_from_u64(self.seed.wrapping_add(
                (case as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }
}

/// Namespace alias so `prop::collection::vec(..)` works after a
/// prelude glob import, as with the real crate.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Fails the current property when `cond` is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($arg:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($arg)+),
            ));
        }
    };
}

/// Fails the current property when the operands differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($arg:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right` ({})\n  left: {:?}\n right: {:?}",
            format!($($arg)+),
            left,
            right
        );
    }};
}

/// Fails the current property when the operands are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: {:?}",
            left
        );
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Declares property tests: each `fn name(pat in strategy, ..)` body
/// runs for the configured number of deterministically seeded cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let runner = $crate::test_runner::TestRunner::new(
                    config,
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..runner.cases() {
                    let mut proptest_rng = runner.rng_for_case(case);
                    $(let $pat = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut proptest_rng,
                    );)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(err) = outcome {
                        ::std::panic!(
                            "proptest case {}/{} failed (seed {:#x}): {}",
                            case + 1,
                            runner.cases(),
                            runner.seed(),
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_maps(x in 1u32..100, v in prop::collection::vec(0u8..10, 0..20)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn oneof_and_tuples(pair in prop_oneof![
            (0u8..1, any::<u16>()).prop_map(|(_, v)| v as u32),
            (1u32..10).prop_map(|v| v + 1000),
        ]) {
            prop_assert!(pair <= u16::MAX as u32 || (1001..1010).contains(&pair));
        }

        #[test]
        fn string_patterns(s in "[ -~\n|]{0,50}") {
            prop_assert!(s.len() <= 50);
            prop_assert!(s.chars().all(|c| c == '\n' || c == '|' || (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        let runner = crate::test_runner::TestRunner::new(
            crate::test_runner::ProptestConfig::with_cases(4),
            "fixed-name",
        );
        let a: Vec<u64> = (0..4)
            .map(|c| crate::arbitrary::any::<u64>().generate(&mut runner.rng_for_case(c)))
            .collect();
        let b: Vec<u64> = (0..4)
            .map(|c| crate::arbitrary::any::<u64>().generate(&mut runner.rng_for_case(c)))
            .collect();
        assert_eq!(a, b);
    }
}
