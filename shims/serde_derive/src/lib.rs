//! Vendored no-op stand-ins for serde's derive macros.
//!
//! The workspace only ever *names* `serde::Serialize` /
//! `serde::Deserialize` in `cfg_attr` derives (no code serializes
//! anything yet), so these derives expand to nothing: the annotated
//! types compile unchanged and gain no impls.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
