//! Vendored stand-in for `parking_lot`.
//!
//! Exposes a [`Mutex`] with the same non-poisoning API shape the
//! workspace uses (`lock()` returning the guard directly, plus
//! `into_inner`), implemented over `std::sync::Mutex`. A poisoned
//! std lock is recovered rather than propagated, matching
//! parking_lot's behavior of not tracking poisoning at all.

#![forbid(unsafe_code)]

use std::sync::PoisonError;

/// A mutual-exclusion lock that does not poison.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves unique).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(1u32);
        *m.lock() += 41;
        assert_eq!(m.into_inner(), 42);
    }
}
