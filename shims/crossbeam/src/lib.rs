//! Vendored stand-in for `crossbeam`.
//!
//! Supplies the two pieces this workspace uses:
//!
//! * [`scope`] — crossbeam-style scoped threads (`scope.spawn(|_| ..)`)
//!   layered over `std::thread::scope`. One semantic difference: a
//!   panicking child propagates on join instead of surfacing as `Err`,
//!   so the customary `.expect(..)` on the result behaves the same.
//! * [`channel::bounded`] — a blocking bounded MPMC queue
//!   (`Mutex<VecDeque>` + condvars) with cloneable senders/receivers
//!   and an iterator that drains until every sender hangs up.

#![forbid(unsafe_code)]

use std::any::Any;

/// Scoped-thread handle namespace, mirroring `crossbeam::thread`.
pub mod thread {
    /// Result type of [`crate::scope`]: `Err` would carry a child
    /// panic payload; this implementation propagates panics instead,
    /// so callers only ever see `Ok`.
    pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;
}

/// A scope in which child threads may borrow from the caller's stack.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a scoped child thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the child and returns its result (`Err` on panic).
    pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a child thread; the closure receives the scope again so
    /// children can spawn grandchildren (crossbeam's signature).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Runs `f` with a [`Scope`]; returns once every spawned child has
/// finished. Child panics propagate when the scope joins.
pub fn scope<'env, F, R>(f: F) -> thread::Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        queue: VecDeque<T>,
        cap: usize,
        senders: usize,
        receivers: usize,
    }

    struct Inner<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error from sending on a channel with no receivers left; carries
    /// the rejected value back.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error from receiving on an empty channel with no senders left.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl std::fmt::Display for RecvError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "receiving on an empty, disconnected channel")
        }
    }

    /// Producer half; cloneable.
    pub struct Sender<T> {
        inner: Arc<Inner<T>>,
    }

    /// Consumer half; cloneable (MPMC — each value goes to one receiver).
    pub struct Receiver<T> {
        inner: Arc<Inner<T>>,
    }

    /// Creates a bounded channel holding at most `cap` queued values
    /// (a cap of 0 is rounded up to 1).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap: cap.max(1),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { inner: Arc::clone(&inner) }, Receiver { inner })
    }

    impl<T> Sender<T> {
        /// Blocks until there is room, then enqueues `value`. Fails
        /// only when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if state.receivers == 0 {
                    return Err(SendError(value));
                }
                if state.queue.len() < state.cap {
                    state.queue.push_back(value);
                    self.inner.not_empty.notify_one();
                    return Ok(());
                }
                state = self.inner.not_full.wait(state).unwrap();
            }
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().senders += 1;
            Sender { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.senders -= 1;
            if state.senders == 0 {
                drop(state);
                self.inner.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks for the next value; fails once the channel is empty
        /// and every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut state = self.inner.state.lock().unwrap();
            loop {
                if let Some(value) = state.queue.pop_front() {
                    self.inner.not_full.notify_one();
                    return Ok(value);
                }
                if state.senders == 0 {
                    return Err(RecvError);
                }
                state = self.inner.not_empty.wait(state).unwrap();
            }
        }

        /// Blocking iterator over received values; ends when all
        /// senders disconnect and the queue drains.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.inner.state.lock().unwrap().receivers += 1;
            Receiver { inner: Arc::clone(&self.inner) }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut state = self.inner.state.lock().unwrap();
            state.receivers -= 1;
            if state.receivers == 0 {
                drop(state);
                self.inner.not_full.notify_all();
            }
        }
    }

    /// Iterator returned by [`Receiver::iter`].
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;

        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1u64, 2, 3, 4];
        let total: u64 = scope(|s| {
            let handles: Vec<_> = data
                .chunks(2)
                .map(|c| s.spawn(move |_| c.iter().sum::<u64>()))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        })
        .unwrap();
        assert_eq!(total, 10);
    }

    #[test]
    fn bounded_channel_drains_after_senders_drop() {
        let (tx, rx) = channel::bounded::<u32>(2);
        let got: Vec<u32> = scope(|s| {
            for i in 0..4 {
                let tx = tx.clone();
                s.spawn(move |_| tx.send(i).unwrap());
            }
            drop(tx);
            rx.iter().collect()
        })
        .unwrap();
        let mut got = got;
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
    }

    #[test]
    fn send_fails_with_no_receivers() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert!(tx.send(9).is_err());
    }
}
