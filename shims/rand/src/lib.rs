//! Vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *minimal* subset of `rand`'s 0.10 API that it
//! actually uses: `rngs::StdRng`, [`SeedableRng::seed_from_u64`],
//! and [`RngExt`] with `random::<T>()` / `random_range(..)`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — fast,
//! well-dispersed, and fully deterministic. It is NOT the same stream
//! as upstream `rand`'s ChaCha12-based `StdRng`; nothing in this
//! workspace depends on a specific stream, only on determinism
//! (see `tests/determinism.rs` at the workspace root).

#![forbid(unsafe_code)]

pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

fn splitmix(z: &mut u64) -> u64 {
    *z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut x = *z;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Seedable generators (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed, expanding it through
    /// SplitMix64 as the xoshiro authors recommend.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut z = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix(&mut z);
        }
        // All-zero state is the one forbidden xoshiro state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// Raw 64-bit output.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain).
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types drawable uniformly from their "standard" distribution
/// (integers over their full range, floats in `[0, 1)`).
pub trait StandardUniform: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardUniform for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 / (1u32 << 24) as f32
    }
}

/// Types uniformly drawable from a bounded interval — the element
/// types `random_range` accepts.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }

            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width u64 range.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + f64::sample(rng) * (hi - lo)
    }

    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        Self::sample_exclusive(rng, lo, hi)
    }
}

/// Ranges drawable uniformly (`lo..hi` and `lo..=hi`). The single
/// blanket impl per range shape ties the element type to the range's
/// item type, which is what lets integer-literal inference work.
pub trait SampleRange<T> {
    /// Draws one value from the range. Panics on an empty range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in random_range");
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + PartialOrd + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in random_range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The ergonomic draw API (`rand` 0.10 naming).
pub trait RngExt: RngCore {
    /// A draw from the standard distribution of `T`.
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`.
    #[inline]
    fn random_range<T, RANGE: SampleRange<T>>(&mut self, range: RANGE) -> T {
        range.sample(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(0usize..=3);
            assert!(y <= 3);
            let f = rng.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 8];
        for _ in 0..8000 {
            buckets[rng.random_range(0usize..8)] += 1;
        }
        for &b in &buckets {
            assert!((700..1300).contains(&b), "bucket count {b}");
        }
    }
}
