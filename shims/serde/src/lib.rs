//! Vendored stand-in for `serde`.
//!
//! The workspace tags analysis types `#[cfg_attr(feature = "serde",
//! derive(serde::Serialize, serde::Deserialize))]` but never actually
//! serializes — so this shim supplies the trait *names* and, behind
//! the `derive` feature, no-op derive macros (see `serde_derive`).
//! Types annotated this way compile; real wire formats would need the
//! real crate.

#![forbid(unsafe_code)]

/// Marker stand-in for `serde::Serialize` (no methods; the no-op
/// derive generates no impls).
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize` (lifetime mirrors the
/// real trait so bounds written against it still parse).
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
