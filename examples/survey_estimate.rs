//! Census-by-survey: combine a Heidemann-style sampled ICMP survey
//! with the CDN's passive view and a capture/recapture model to
//! estimate the total active population — the measurement-practice
//! discussion of the paper's Sections 3 and 8 ("boding well for future
//! use of such statistical models and techniques driven by sampled
//! observation").
//!
//! ```sh
//! cargo run --release --example survey_estimate
//! ```

use ipactive::cdnsim::{Universe, UniverseConfig};
use ipactive::core::{stats, visibility};
use ipactive::probe::{IcmpScanner, ScanCampaign};

fn main() {
    let universe = Universe::generate(UniverseConfig::small(77));
    let daily = universe.build_daily();
    let cdn = daily.all_active();
    println!("CDN passive view: {} active addresses", cdn.len());

    // Full 8-scan campaign (the paper's ICMP reference).
    let full = ScanCampaign::new(5, 8).run_union(&universe);
    let split = visibility::split_addrs(&cdn, &full);
    println!(
        "full ICMP campaign: {} responders ({:.0}% CDN-only remain invisible to it)",
        full.len(),
        100.0 * split.cdn_only_fraction()
    );

    // Sampled surveys at decreasing fractions: how well does a 1%
    // probe panel recover the full campaign's count?
    println!("\nsampled surveys (single sweep, fixed panel):");
    println!("  {:>9} {:>10} {:>14} {:>9}", "fraction", "responders", "extrapolated", "error");
    let scanner = IcmpScanner::new(5);
    let full_single = scanner.scan(&universe, 0);
    for fraction in [0.5, 0.25, 0.1, 0.01] {
        let sample = scanner.scan_sample(&universe, 0, fraction);
        let extrapolated = sample.len() as f64 / fraction;
        let err = 100.0 * (extrapolated - full_single.len() as f64) / full_single.len() as f64;
        println!(
            "  {:>8.0}% {:>10} {:>14.0} {:>8.1}%",
            fraction * 100.0,
            sample.len(),
            extrapolated,
            err
        );
    }

    // Capture/recapture: treat CDN and ICMP as two sightings of the
    // same population; extrapolate the part invisible to both.
    println!("\ncapture/recapture population estimates:");
    let overlap = cdn.intersect_len(&full) as u64;
    let union = cdn.union(&full).len();
    if let Some(lp) = stats::lincoln_petersen(cdn.len() as u64, full.len() as u64, overlap) {
        println!("  Lincoln–Petersen: {:.0}", lp);
    }
    println!("  Chapman        : {:.0}", stats::chapman(cdn.len() as u64, full.len() as u64, overlap));
    println!("  union observed : {union}");
    println!(
        "\n(the estimate exceeds the union: the overlap pattern implies hosts\n\
         invisible to both methods — the paper's caveat about every remote\n\
         census applies: the two 'captures' are not truly independent.)"
    );
}
