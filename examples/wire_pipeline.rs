//! Wire pipeline with fault injection: serialize a universe's logs
//! through the framed binary format, damage the stream the way flaky
//! transport would, and show the collector surviving it — the
//! smoltcp-style robustness demonstration for the log path.
//!
//! ```sh
//! cargo run --release --example wire_pipeline
//! ```

use ipactive::cdnsim::{
    collect_daily, emit_daily_logs, emit_daily_logs_packed, parallel_pipeline, Universe,
    UniverseConfig,
};

fn main() {
    let universe = Universe::generate(UniverseConfig::small(99));
    let days = universe.config().daily_days;

    // Clean runs: flat vs packed framing.
    let mut flat = Vec::new();
    let flat_records = emit_daily_logs(&universe, &mut flat).unwrap();
    let mut packed = Vec::new();
    let packed_records = emit_daily_logs_packed(&universe, &mut packed).unwrap();
    println!("== wire formats ==");
    println!(
        "flat   : {:>9} bytes, {:>8} records ({:.1} B/record)",
        flat.len(),
        flat_records,
        flat.len() as f64 / flat_records as f64
    );
    println!(
        "packed : {:>9} bytes, {:>8} records ({:.1}x smaller stream)",
        packed.len(),
        packed_records,
        flat.len() as f64 / packed.len() as f64
    );

    let (clean, stats) = collect_daily(&flat[..], days).unwrap();
    let total_hits = |ds: &ipactive::core::DailyDataset| -> u64 {
        ds.blocks.iter().map(|b| b.total_hits).sum()
    };
    let clean_hits = total_hits(&clean);
    println!(
        "\nclean collection: {} records -> {} active addrs, {} blocks, 0 skipped",
        stats.records_read,
        clean.total_active(),
        clean.blocks.len()
    );

    // Fault injection: flip bytes at regular intervals, as a corrupting
    // link would. CRC-protected frames must be dropped, never decoded
    // into wrong data.
    println!("\n== fault injection (one bit flip every N KiB) ==");
    println!(
        "{:>10} {:>9} {:>12} {:>11} {:>10}",
        "every", "skipped", "addrs kept", "addr loss", "hit loss"
    );
    for stride_kib in [256usize, 64, 16, 4] {
        let mut dirty = flat.clone();
        let mut injected = 0;
        let mut pos = stride_kib * 1024 / 2;
        while pos < dirty.len() {
            dirty[pos] ^= 0x20;
            injected += 1;
            pos += stride_kib * 1024;
        }
        match collect_daily(&dirty[..], days) {
            Ok((ds, stats)) => {
                let addr_loss = 1.0 - ds.total_active() as f64 / clean.total_active() as f64;
                let hit_loss = 1.0 - total_hits(&ds) as f64 / clean_hits as f64;
                println!(
                    "{:>7}KiB {:>9} {:>12} {:>10.2}% {:>9.3}%  ({} flips)",
                    stride_kib,
                    stats.frames_skipped,
                    ds.total_active(),
                    100.0 * addr_loss,
                    100.0 * hit_loss,
                    injected
                );
            }
            Err(e) => {
                println!(
                    "{:>7}KiB {:>9} {:>12} {:>11} {:>10}  ({} flips; stream abandoned: {e})",
                    stride_kib, "-", "-", "-", "-", injected
                );
            }
        }
    }
    println!("\nevery surviving record is guaranteed authentic (CRC-32 per frame);");
    println!("corruption can only ever drop data, not fabricate it.");

    // Sharded topology: same data path, fanned out. Every grid point
    // reproduces the clean dataset exactly (hash-partitioned blocks +
    // commutative builder merge), so only the throughput moves.
    println!("\n== sharded pipeline (workers x collectors) ==");
    println!("{:>8} {:>11} {:>12} {:>13}", "w x c", "records", "records/s", "identical?");
    for (workers, collectors) in [(1usize, 1usize), (4, 1), (4, 4)] {
        let (ds, report) = parallel_pipeline(&universe, workers, collectors);
        println!(
            "{:>4} x {:<3} {:>11} {:>12.0} {:>13}",
            workers,
            collectors,
            report.totals.records_read,
            report.records_per_sec(),
            if ds == clean { "yes" } else { "NO" },
        );
    }
}
