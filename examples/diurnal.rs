//! Diurnal profiles from raw request logs — the hour-of-day view that
//! per-request logging affords beyond the paper's daily aggregates
//! (its related work: "diurnal activity patterns", Quan et al.).
//!
//! Expands one day of raw requests for blocks of different network
//! kinds and prints their hourly request histograms side by side.
//!
//! ```sh
//! cargo run --release --example diurnal
//! ```

use ipactive::cdnsim::requests::hourly_histogram;
use ipactive::cdnsim::{AsKind, Universe, UniverseConfig};

fn main() {
    let universe = Universe::generate(UniverseConfig::small(31));
    let day = 10; // a mid-window weekday

    println!("== hourly request profiles, day {day} (one block per kind) ==\n");
    for kind in [AsKind::ResidentialIsp, AsKind::CellularIsp, AsKind::University] {
        // The busiest CDN-active block of this kind.
        let Some(entry) = universe
            .blocks
            .iter()
            .filter(|e| universe.ases[e.as_index].kind == kind && e.policy.cdn_active())
            .max_by_key(|e| {
                universe
                    .raw_requests(e.block, day)
                    .len()
            })
        else {
            continue;
        };
        let raw = universe.raw_requests(entry.block, day);
        if raw.is_empty() {
            continue;
        }
        let hourly = hourly_histogram(&raw);
        let peak = *hourly.iter().max().unwrap() as f64;
        println!("{:?} — {} ({} requests)", kind, entry.block, raw.len());
        for (hour, &n) in hourly.iter().enumerate() {
            let bar = "#".repeat((40.0 * n as f64 / peak) as usize);
            println!("  {hour:02}:00 {n:>6} {bar}");
        }
        println!();
    }
    println!("(request volumes differ per kind; the arrival-time shape is the");
    println!(" configured residential diurnal curve — evening peak, night trough.)");
}
