//! Market survey: the Section 8 "implications to Internet governance"
//! scenario. Combine routing-table coverage, per-RIR utilization, and
//! the activity census to estimate how much advertised space is
//! actually in use — the evidence base an RIR or address broker would
//! want when judging transfer requests.
//!
//! ```sh
//! cargo run --release --example market_survey
//! ```

use ipactive::cdnsim::{Universe, UniverseConfig};
use ipactive::core::{demographics, market};
use ipactive::rir::Rir;

fn main() {
    let universe = Universe::generate(UniverseConfig::small(23));
    let daily = universe.build_daily();

    let s = market::survey(&daily, universe.bgp().base());
    println!("== IPv4 market survey ==\n");
    println!("advertised unicast addresses : {}", s.advertised);
    println!("observed active addresses    : {}", s.active);
    println!(
        "active share of advertised   : {:.1}%  (paper: 42.8%)",
        100.0 * s.active_share
    );

    // Restrict to blocks with observed WWW clients, as the paper does,
    // and estimate the unused remainder inside them.
    println!(
        "\nwithin the {} active /24s ({} addresses):",
        s.active_blocks,
        s.active_blocks * 256
    );
    println!("  unused despite being in active blocks: {}", s.idle_in_active_blocks);

    // Per-RIR utilization: who still has slack, who is exhausted in
    // practice (Figure 12's policy reading).
    let feats = demographics::features(&daily);
    let grids = demographics::per_rir(&feats, universe.delegations());
    println!("\nper-RIR utilization of active blocks:");
    println!("  {:<9} {:>7} {:>12} {:>14}", "RIR", "blocks", "high-STU", "exhaustion");
    for g in &grids {
        let rir: Rir = g.rir;
        let status = match rir.exhaustion() {
            Some(ym) => format!("exhausted {ym}"),
            None => "free pool left".to_string(),
        };
        println!(
            "  {:<9} {:>7} {:>11.0}% {:>16}",
            rir.name(),
            g.total,
            100.0 * g.high_stu_fraction(3),
            status
        );
    }

    // Candidate sellers: ASes holding the most low-utilization space.
    let holdings: Vec<_> = universe
        .blocks
        .iter()
        .map(|e| (e.block, universe.ases[e.as_index].asn))
        .collect();
    let ranking = market::slack_ranking(&holdings, &daily);
    println!("\ntop candidate transfer-market sellers (most idle addresses):");
    for slack in ranking.iter().take(5) {
        println!(
            "  {:<10} ~{} idle of {} held ({:.0}% idle)",
            slack.asn.to_string(),
            slack.addrs_idle,
            slack.addrs_held,
            100.0 * slack.idle_fraction()
        );
    }
}
