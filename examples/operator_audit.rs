//! Operator audit: the Section 8 "implications to network management"
//! scenario. A network operator monitors their own address space with
//! the paper's metrics to find reclaimable blocks: sparsely-filled
//! static space and oversized dynamic pools.
//!
//! ```sh
//! cargo run --release --example operator_audit
//! ```

use ipactive::cdnsim::{AsKind, Universe, UniverseConfig};
use ipactive::core::matrix::BlockMetrics;

fn main() {
    let universe = Universe::generate(UniverseConfig::small(7));
    let daily = universe.build_daily();

    // Audit the largest residential ISP in the universe, as its own
    // operator would: per-block utilization, then recommendations.
    let isp = universe
        .ases
        .iter()
        .filter(|a| a.kind == AsKind::ResidentialIsp)
        .max_by_key(|a| a.block_range.1 - a.block_range.0)
        .expect("universe has residential ISPs");
    println!(
        "== address audit for {} ({} — {} /24 blocks) ==\n",
        isp.asn,
        isp.country,
        isp.block_range.1 - isp.block_range.0
    );

    let mut reclaimable_addrs = 0u32;
    let mut rows = Vec::new();
    for entry in &universe.blocks[isp.block_range.0..isp.block_range.1] {
        let Some(rec) = daily.block(entry.block) else {
            rows.push((entry.block, None));
            continue;
        };
        let m = BlockMetrics::of(rec, 0..daily.num_days);
        rows.push((entry.block, Some(m)));
    }

    println!("{:<18} {:>4} {:>6}  recommendation", "block", "FD", "STU");
    for (block, metrics) in rows {
        match metrics {
            None => {
                reclaimable_addrs += 256;
                println!("{:<18} {:>4} {:>6}  UNUSED — reclaim or lease out", block, "-", "-");
            }
            Some(m) => {
                let advice = if m.fd < 64 {
                    reclaimable_addrs += 256 - m.fd;
                    "sparse static space — renumber into a shared pool"
                } else if m.fd > 250 && m.stu < 0.6 {
                    reclaimable_addrs += ((1.0 - m.stu) * 128.0) as u32;
                    "oversized dynamic pool — shrink the pool"
                } else if m.fd > 250 {
                    "well-utilized dynamic pool"
                } else {
                    "moderately utilized"
                };
                println!("{:<18} {:>4} {:>6.2}  {advice}", block, m.fd, m.stu);
            }
        }
    }

    println!(
        "\nestimated reclaimable addresses: ~{} (of {} held)",
        reclaimable_addrs,
        (isp.block_range.1 - isp.block_range.0) * 256
    );
    println!("(candidates for transfer-market supply, per the paper's Section 8)");
}
