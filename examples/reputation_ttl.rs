//! Reputation TTLs: the Section 8 "implications to network security"
//! scenario. IP-based reputation must expire before the address is
//! handed to a different user; the right TTL varies enormously with
//! the block's assignment practice. This example runs the library's
//! persistence analysis (`ipactive::core::persistence`) over a
//! synthetic deployment:
//!
//! * blocks whose addresses cycle through users daily get hours-scale
//!   TTLs;
//! * sticky dynamic blocks get days;
//! * static blocks get weeks;
//! * blocks with a detected assignment *change* expire immediately
//!   (the paper: "our change detection method could be used to trigger
//!   expiration of host reputation").
//!
//! ```sh
//! cargo run --release --example reputation_ttl
//! ```

use ipactive::cdnsim::{Universe, UniverseConfig};
use ipactive::core::persistence::{analyze, ReputationTtl};
use ipactive::core::change;
use std::collections::HashMap;

fn main() {
    let universe = Universe::generate(UniverseConfig::small(11));
    let daily = universe.build_daily();

    // Detect blocks whose assignment practice changed mid-window:
    // their history is worthless regardless of churn level.
    let month = (daily.num_days / 4).max(1);
    let changed = change::detect(&daily, month, change::DEFAULT_THRESHOLD);

    let results = analyze(&daily, &changed);

    println!("== per-block reputation TTL recommendations ==\n");
    println!("{:<18} {:>4} {:>7} {:>7} {:>7}  ttl", "block", "FD", "daily", "reuse", "streak");
    for (p, ttl) in results.iter().take(12) {
        println!(
            "{:<18} {:>4} {:>7.0} {:>7.2} {:>6.1}d  {:?}",
            p.block, p.fd, p.mean_daily_active, p.reuse_ratio, p.mean_streak_days, ttl
        );
    }

    let mut summary: HashMap<ReputationTtl, usize> = HashMap::new();
    for (_, ttl) in &results {
        *summary.entry(*ttl).or_default() += 1;
    }
    println!("\nfleet summary:");
    for ttl in [
        ReputationTtl::ExpireNow,
        ReputationTtl::Hours,
        ReputationTtl::Days,
        ReputationTtl::Weeks,
    ] {
        println!("  {:<10} {:>5} blocks", format!("{ttl:?}"), summary.get(&ttl).copied().unwrap_or(0));
    }
    println!(
        "\n{} blocks had an assignment-practice change this window — any cached\n\
         reputation for their addresses should be dropped immediately.",
        changed.major.len()
    );
}
