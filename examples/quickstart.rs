//! Quickstart: generate a miniature Internet, build the datasets, and
//! compute the paper's headline metrics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ipactive::cdnsim::{Universe, UniverseConfig};
use ipactive::core::{blocks, churn, matrix, traffic};

fn main() {
    // Everything is seeded: rerunning reproduces identical output.
    let config = UniverseConfig::small(42);
    println!("generating a synthetic Internet ({} ASes)...", config.total_ases());
    let universe = Universe::generate(config);
    let daily = universe.build_daily();
    let weekly = universe.build_weekly();

    println!(
        "\n{} /24 blocks, {} distinct active addresses over {} days",
        daily.blocks.len(),
        daily.total_active(),
        daily.num_days
    );

    // --- Churn (Section 4) -------------------------------------------------
    let series = churn::daily_series(&daily);
    let avg_up: f64 = series.iter().skip(1).map(|d| d.up as f64).sum::<f64>()
        / (series.len() - 1) as f64;
    let avg_active: f64 =
        series.iter().map(|d| d.active as f64).sum::<f64>() / series.len() as f64;
    println!(
        "daily churn: on average {:.1}% of the active pool turns over each day",
        100.0 * avg_up / avg_active
    );
    let drift = churn::year_drift(&weekly);
    if let Some(last) = drift.last() {
        println!(
            "across the year the active set drifted by +{:.0}%/-{:.0}% vs week 0",
            100.0 * last.appear_frac,
            100.0 * last.disappear_frac
        );
    }

    // --- Spatio-temporal metrics (Section 5) -------------------------------
    let busiest = daily
        .blocks
        .iter()
        .max_by_key(|b| b.ip_traffic.len())
        .expect("universe has active blocks");
    let m = matrix::BlockMetrics::of(busiest, 0..daily.num_days);
    println!(
        "\nbusiest block {}: filling degree {} / 256, spatio-temporal utilization {:.2}",
        busiest.block, m.fd, m.stu
    );
    println!("activity matrix (rows = 16-address groups, cols = days):");
    for line in matrix::render(busiest, daily.num_days, 16).lines() {
        println!("  |{line}|");
    }

    // --- Potential utilization (Section 5.4) -------------------------------
    let p = blocks::potential_utilization(&daily);
    println!(
        "\n{} active /24s: {} sparsely filled (FD<64), {} run as full dynamic pools",
        p.active_blocks, p.low_fd_blocks, p.high_fd_blocks
    );

    // --- Traffic concentration (Section 6) ---------------------------------
    let shares = traffic::cumulative_shares(&daily);
    println!(
        "always-on addresses: {:.1}% of the pool, {:.1}% of all traffic",
        100.0 * shares.always_on_ip_fraction(),
        100.0 * shares.always_on_traffic_fraction()
    );
}
