//! ITU-style subscriber statistics.
//!
//! Figure 3(b) annotates the top countries with their world rank in
//! fixed-broadband and cellular subscriptions (ITU, 2015). The ranks
//! for the paper's eleven displayed countries are reproduced here as a
//! lookup table; the synthetic universe uses the same countries so the
//! regenerated figure carries identical annotations.

use crate::CountryCode;

/// World ranks in subscriber counts for one country (1 = most
/// subscribers worldwide).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubscriberRanks {
    /// Rank by fixed-broadband subscriptions.
    pub broadband: u8,
    /// Rank by cellular subscriptions.
    pub cellular: u8,
}

/// ITU 2015 ranks for the countries shown in Figure 3(b).
///
/// Returns `None` for countries outside the paper's display set.
pub fn subscriber_ranks(country: CountryCode) -> Option<SubscriberRanks> {
    // (code, broadband rank, cellular rank) as annotated in Figure 3(b).
    const TABLE: [(&str, u8, u8); 11] = [
        ("US", 2, 3),
        ("CN", 1, 1),
        ("JP", 3, 7),
        ("BR", 7, 5),
        ("DE", 4, 14),
        ("KR", 9, 25),
        ("GB", 8, 19),
        ("FR", 5, 22),
        ("RU", 6, 6),
        ("IT", 12, 16),
        ("IN", 10, 2),
    ];
    TABLE
        .iter()
        .find(|(code, _, _)| CountryCode::new(code) == country)
        .map(|&(_, broadband, cellular)| SubscriberRanks { broadband, cellular })
}

/// The Figure 3(b) country display order (top countries by combined
/// CDN+ICMP visible addresses in the paper).
pub const FIGURE3B_COUNTRIES: [&str; 11] =
    ["US", "CN", "JP", "BR", "DE", "KR", "GB", "FR", "RU", "IT", "IN"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_countries_have_ranks() {
        let us = subscriber_ranks(CountryCode::new("US")).unwrap();
        assert_eq!((us.broadband, us.cellular), (2, 3));
        let cn = subscriber_ranks(CountryCode::new("CN")).unwrap();
        assert_eq!((cn.broadband, cn.cellular), (1, 1));
        let in_ = subscriber_ranks(CountryCode::new("IN")).unwrap();
        assert_eq!((in_.broadband, in_.cellular), (10, 2));
    }

    #[test]
    fn unknown_country_is_none() {
        assert!(subscriber_ranks(CountryCode::new("ZZ")).is_none());
    }

    #[test]
    fn all_display_countries_covered() {
        for code in FIGURE3B_COUNTRIES {
            assert!(
                subscriber_ranks(CountryCode::new(code)).is_some(),
                "missing ranks for {code}"
            );
        }
    }

    #[test]
    fn broadband_ranks_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for code in FIGURE3B_COUNTRIES {
            let r = subscriber_ranks(CountryCode::new(code)).unwrap();
            assert!(seen.insert(r.broadband), "duplicate broadband rank for {code}");
        }
    }
}
