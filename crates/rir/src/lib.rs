//! # ipactive-rir
//!
//! Regional Internet Registry (RIR) substrate: address delegations,
//! country assignment, registry exhaustion dates, and ITU-style
//! subscriber ranks.
//!
//! The paper joins address activity against the RIRs' extended
//! delegation files to produce regional breakdowns (Figures 3 and 12)
//! and annotates its growth timeline with registry exhaustion dates
//! (Figure 1). This crate reimplements those joins over a delegation
//! database; the synthetic universe populates it with delegations that
//! follow real registry proportions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod db;
mod itu;
mod nro;
mod region;

pub use db::{Delegation, DelegationDb};
pub use nro::{parse_nro, range_to_prefixes, to_nro_text, NroError, NroErrorKind};
pub use itu::{subscriber_ranks, SubscriberRanks, FIGURE3B_COUNTRIES};
pub use region::{CountryCode, Rir, YearMonth, RIR_EXHAUSTION, IANA_EXHAUSTION};
