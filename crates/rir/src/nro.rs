//! Parser for the NRO extended allocation and assignment file format.
//!
//! The paper assigns regions and countries to addresses using "allocation
//! data provided by the RIRs" (Section 3.4) — the pipe-separated
//! *extended delegated* statistics files published at
//! `https://www.nro.net/statistics`:
//!
//! ```text
//! 2|nro|20160101|123456|19830101|20151231|+0000
//! arin|*|ipv4|*|45678|summary
//! arin|US|ipv4|20.0.0.0|4096|20010904|allocated|a1b2c3
//! ripencc|DE|ipv4|62.0.0.0|1024|19990701|assigned
//! ```
//!
//! This module parses that format into [`Delegation`]s. IPv4 records
//! carry an *address count* that need not be a power of two, so a
//! record can expand to several CIDR prefixes; the expansion is exact
//! (covers precisely the delegated range).

use crate::{CountryCode, Delegation, DelegationDb, Rir};
use core::fmt;
use ipactive_net::{Addr, Prefix};

/// A parse failure, with the 1-based line number where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NroError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub kind: NroErrorKind,
}

/// The kinds of parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NroErrorKind {
    /// Fewer fields than the format requires.
    TooFewFields(usize),
    /// Unknown registry identifier.
    UnknownRegistry(String),
    /// Malformed start address.
    BadAddress(String),
    /// Malformed or zero address count.
    BadCount(String),
    /// Malformed country code.
    BadCountry(String),
    /// The record's range runs past the end of the address space.
    RangeOverflow,
}

impl fmt::Display for NroError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: ", self.line)?;
        match &self.kind {
            NroErrorKind::TooFewFields(n) => write!(f, "expected ≥7 fields, found {n}"),
            NroErrorKind::UnknownRegistry(r) => write!(f, "unknown registry {r:?}"),
            NroErrorKind::BadAddress(a) => write!(f, "bad start address {a:?}"),
            NroErrorKind::BadCount(c) => write!(f, "bad address count {c:?}"),
            NroErrorKind::BadCountry(c) => write!(f, "bad country code {c:?}"),
            NroErrorKind::RangeOverflow => write!(f, "range exceeds the IPv4 space"),
        }
    }
}

impl std::error::Error for NroError {}

fn registry(name: &str) -> Option<Rir> {
    match name {
        "arin" => Some(Rir::Arin),
        "ripencc" | "ripe" => Some(Rir::Ripe),
        "apnic" => Some(Rir::Apnic),
        "lacnic" => Some(Rir::Lacnic),
        "afrinic" => Some(Rir::Afrinic),
        _ => None,
    }
}

/// Expands `[start, start+count)` into the minimal list of CIDR
/// prefixes covering it exactly. (Re-exported convenience over
/// [`Prefix::cover_range`].)
pub fn range_to_prefixes(start: Addr, count: u64) -> Vec<Prefix> {
    Prefix::cover_range(start, count)
}

/// Parses the extended-delegation text, returning one [`Delegation`]
/// per covering prefix of each IPv4 `allocated`/`assigned` record.
///
/// Header, summary, comment, and non-IPv4 lines are skipped, as are
/// records in other statuses (`available`, `reserved`); malformed
/// *record* lines are hard errors — a registry feed with garbage in it
/// should not be silently half-imported.
pub fn parse_nro(text: &str) -> Result<Vec<Delegation>, NroError> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        // Version header: first field is a number.
        if fields[0].chars().all(|c| c.is_ascii_digit()) {
            continue;
        }
        // Summary lines: `registry|*|type|*|count|summary`.
        if fields.last() == Some(&"summary") {
            continue;
        }
        if fields.len() < 7 {
            return Err(NroError { line: lineno, kind: NroErrorKind::TooFewFields(fields.len()) });
        }
        let (reg, cc, kind, start, value, _date, status) =
            (fields[0], fields[1], fields[2], fields[3], fields[4], fields[5], fields[6]);
        if kind != "ipv4" {
            continue;
        }
        if !matches!(status, "allocated" | "assigned") {
            continue;
        }
        let rir = registry(reg).ok_or(NroError {
            line: lineno,
            kind: NroErrorKind::UnknownRegistry(reg.to_string()),
        })?;
        let start: Addr = start.parse().map_err(|_| NroError {
            line: lineno,
            kind: NroErrorKind::BadAddress(start.to_string()),
        })?;
        let count: u64 = value.parse().ok().filter(|&c| c > 0).ok_or(NroError {
            line: lineno,
            kind: NroErrorKind::BadCount(value.to_string()),
        })?;
        if start.bits() as u64 + count > 1 << 32 {
            return Err(NroError { line: lineno, kind: NroErrorKind::RangeOverflow });
        }
        let country = if cc.len() == 2 && cc.bytes().all(|b| b.is_ascii_uppercase()) {
            CountryCode::new(cc)
        } else {
            return Err(NroError { line: lineno, kind: NroErrorKind::BadCountry(cc.to_string()) });
        };
        for prefix in range_to_prefixes(start, count) {
            out.push(Delegation { prefix, rir, country });
        }
    }
    Ok(out)
}

/// Serializes delegations back into NRO extended-delegation text
/// (header plus one `allocated` record per delegation). Together with
/// [`parse_nro`] this round-trips: `parse_nro(to_nro_text(ds)) == ds`
/// for prefix-aligned delegations.
pub fn to_nro_text(delegations: &[Delegation]) -> String {
    fn registry_name(rir: Rir) -> &'static str {
        match rir {
            Rir::Arin => "arin",
            Rir::Ripe => "ripencc",
            Rir::Apnic => "apnic",
            Rir::Lacnic => "lacnic",
            Rir::Afrinic => "afrinic",
        }
    }
    let mut out = format!(
        "2|nro|20160101|{}|19830101|20151231|+0000
",
        delegations.len()
    );
    for d in delegations {
        out.push_str(&format!(
            "{}|{}|ipv4|{}|{}|20150101|allocated
",
            registry_name(d.rir),
            d.country,
            d.prefix.network(),
            d.prefix.num_addrs(),
        ));
    }
    out
}

impl DelegationDb {
    /// Builds a database directly from NRO extended-delegation text.
    pub fn from_nro(text: &str) -> Result<DelegationDb, NroError> {
        let mut db = DelegationDb::new();
        for d in parse_nro(text)? {
            db.insert(d);
        }
        Ok(db)
    }

    /// Exports the database as NRO extended-delegation text.
    pub fn to_nro(&self) -> String {
        to_nro_text(&self.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# NRO extended allocation and assignment report
2|nro|20160101|4|19830101|20151231|+0000
arin|*|ipv4|*|2|summary
arin|US|ipv4|20.0.0.0|4096|20010904|allocated|a1b2c3
arin|CA|ipv4|24.0.0.0|256|20050101|assigned
ripencc|DE|ipv4|62.0.0.0|1024|19990701|allocated
apnic|CN|ipv6|2400::|32|20080101|allocated
lacnic|BR|ipv4|177.0.0.0|512|20120101|reserved
afrinic|ZA|ipv4|196.0.0.0|768|20100101|allocated
";

    #[test]
    fn parses_records_and_skips_noise() {
        let ds = parse_nro(SAMPLE).unwrap();
        // 4096 → one /20; 256 → one /24; 1024 → one /22;
        // 768 → /23 + /24 (two prefixes); ipv6 + reserved skipped.
        assert_eq!(ds.len(), 5);
        assert_eq!(ds[0].prefix.to_string(), "20.0.0.0/20");
        assert_eq!(ds[0].rir, Rir::Arin);
        assert_eq!(ds[0].country.as_str(), "US");
        assert_eq!(ds[1].prefix.to_string(), "24.0.0.0/24");
        assert_eq!(ds[2].prefix.to_string(), "62.0.0.0/22");
        let za: Vec<String> = ds[3..].iter().map(|d| d.prefix.to_string()).collect();
        assert_eq!(za, vec!["196.0.0.0/23", "196.0.2.0/24"]);
    }

    #[test]
    fn db_lookup_after_import() {
        let db = DelegationDb::from_nro(SAMPLE).unwrap();
        let d = db.lookup("20.0.5.9".parse().unwrap()).unwrap();
        assert_eq!(d.rir, Rir::Arin);
        assert_eq!(d.country.as_str(), "US");
        assert_eq!(db.country_of("196.0.2.200".parse().unwrap()).unwrap().as_str(), "ZA");
        assert!(db.lookup("50.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn rejects_malformed_records() {
        let err = parse_nro("arin|US|ipv4|20.0.0.0|4096\n").unwrap_err();
        assert_eq!(err.kind, NroErrorKind::TooFewFields(5));
        let err = parse_nro("example|US|ipv4|20.0.0.0|256|20010904|allocated\n").unwrap_err();
        assert!(matches!(err.kind, NroErrorKind::UnknownRegistry(_)));
        let err = parse_nro("arin|US|ipv4|999.0.0.0|256|20010904|allocated\n").unwrap_err();
        assert!(matches!(err.kind, NroErrorKind::BadAddress(_)));
        let err = parse_nro("arin|US|ipv4|20.0.0.0|zero|20010904|allocated\n").unwrap_err();
        assert!(matches!(err.kind, NroErrorKind::BadCount(_)));
        let err = parse_nro("arin|US|ipv4|20.0.0.0|0|20010904|allocated\n").unwrap_err();
        assert!(matches!(err.kind, NroErrorKind::BadCount(_)));
        let err = parse_nro("arin|us|ipv4|20.0.0.0|256|20010904|allocated\n").unwrap_err();
        assert!(matches!(err.kind, NroErrorKind::BadCountry(_)));
        let err =
            parse_nro("arin|US|ipv4|255.255.255.0|512|20010904|allocated\n").unwrap_err();
        assert_eq!(err.kind, NroErrorKind::RangeOverflow);
        // Line numbers point at the offender.
        let err = parse_nro("# ok\narin|US|ipv4|20.0.0.0|bad|x|allocated\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn ripe_legacy_name_accepted() {
        let ds = parse_nro("ripe|NL|ipv4|62.1.0.0|256|20000101|assigned\n").unwrap();
        assert_eq!(ds[0].rir, Rir::Ripe);
    }

    #[test]
    fn range_expansion_covers_exactly() {
        // Classic awkward case: 3 × /24 starting on a /23 boundary.
        let prefixes = range_to_prefixes("10.0.0.0".parse().unwrap(), 768);
        let total: u64 = prefixes.iter().map(|p| p.num_addrs() as u64).sum();
        assert_eq!(total, 768);
        assert_eq!(prefixes.len(), 2); // /23 + /24
        // Unaligned start: 192.0.2.128 count 384 → /25 + /25 + /25? No:
        // alignment forces /25 at .128, then /25+/25 … verify coverage only.
        let prefixes = range_to_prefixes("192.0.2.128".parse().unwrap(), 384);
        let total: u64 = prefixes.iter().map(|p| p.num_addrs() as u64).sum();
        assert_eq!(total, 384);
        // Contiguity: each prefix begins where the previous ended.
        let mut cursor = 0xC0000280u64;
        for p in &prefixes {
            assert_eq!(p.network().bits() as u64, cursor);
            cursor += p.num_addrs() as u64;
        }
    }

    #[test]
    fn whole_space_expansion() {
        let prefixes = range_to_prefixes(Addr::MIN, 1 << 32);
        assert_eq!(prefixes.len(), 1);
        assert_eq!(prefixes[0].to_string(), "0.0.0.0/0");
    }

    #[test]
    fn nro_roundtrip_via_export() {
        let db = DelegationDb::from_nro(SAMPLE).unwrap();
        let text = db.to_nro();
        let db2 = DelegationDb::from_nro(&text).unwrap();
        assert_eq!(db.len(), db2.len());
        for d in db.iter() {
            let got = db2.lookup(d.prefix.network()).unwrap();
            assert_eq!(got.rir, d.rir);
            assert_eq!(got.country, d.country);
        }
    }

    #[test]
    fn single_address_expansion() {
        let prefixes = range_to_prefixes("1.2.3.4".parse().unwrap(), 1);
        assert_eq!(prefixes.len(), 1);
        assert_eq!(prefixes[0].to_string(), "1.2.3.4/32");
    }
}
