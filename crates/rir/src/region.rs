//! RIRs, country codes, and registry milestones.

use core::fmt;

/// The five Regional Internet Registries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Rir {
    /// American Registry for Internet Numbers (North America).
    Arin,
    /// Réseaux IP Européens NCC (Europe / Middle East / Central Asia).
    Ripe,
    /// Asia-Pacific Network Information Centre.
    Apnic,
    /// Latin America and Caribbean NIC.
    Lacnic,
    /// African NIC.
    Afrinic,
}

impl Rir {
    /// All five registries, in the paper's display order (Figure 3a).
    pub const ALL: [Rir; 5] = [Rir::Arin, Rir::Ripe, Rir::Apnic, Rir::Lacnic, Rir::Afrinic];

    /// Canonical display name.
    pub fn name(self) -> &'static str {
        match self {
            Rir::Arin => "ARIN",
            Rir::Ripe => "RIPE",
            Rir::Apnic => "APNIC",
            Rir::Lacnic => "LACNIC",
            Rir::Afrinic => "AFRINIC",
        }
    }

    /// The month the registry's general free pool exhausted, if it had
    /// by the paper's publication (Figure 1 annotations). `None` for
    /// AFRINIC, which still had free space in 2016.
    pub fn exhaustion(self) -> Option<YearMonth> {
        match self {
            Rir::Apnic => Some(YearMonth::new(2011, 4)),
            Rir::Ripe => Some(YearMonth::new(2012, 9)),
            Rir::Lacnic => Some(YearMonth::new(2014, 6)),
            Rir::Arin => Some(YearMonth::new(2015, 9)),
            Rir::Afrinic => None,
        }
    }

    /// Index in [`Rir::ALL`]; handy for array-keyed accumulators.
    pub fn index(self) -> usize {
        match self {
            Rir::Arin => 0,
            Rir::Ripe => 1,
            Rir::Apnic => 2,
            Rir::Lacnic => 3,
            Rir::Afrinic => 4,
        }
    }
}

impl fmt::Display for Rir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The month IANA's central free pool exhausted (February 2011).
pub const IANA_EXHAUSTION: YearMonth = YearMonth { year: 2011, month: 2 };

/// `(registry, exhaustion month)` for the four exhausted RIRs, in
/// chronological order — Figure 1's annotation set.
pub const RIR_EXHAUSTION: [(Rir, YearMonth); 4] = [
    (Rir::Apnic, YearMonth { year: 2011, month: 4 }),
    (Rir::Ripe, YearMonth { year: 2012, month: 9 }),
    (Rir::Lacnic, YearMonth { year: 2014, month: 6 }),
    (Rir::Arin, YearMonth { year: 2015, month: 9 }),
];

/// ISO 3166-1 alpha-2 country code, stored as two ASCII uppercase bytes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountryCode([u8; 2]);

impl CountryCode {
    /// Creates a code from a 2-letter string. Panics on malformed input
    /// (codes in this project come from a fixed internal vocabulary).
    pub fn new(code: &str) -> Self {
        let b = code.as_bytes();
        assert!(
            b.len() == 2 && b.iter().all(|c| c.is_ascii_uppercase()),
            "invalid country code {code:?}"
        );
        CountryCode([b[0], b[1]])
    }

    /// The code as a string slice.
    pub fn as_str(&self) -> &str {
        core::str::from_utf8(&self.0).expect("country codes are ASCII")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "CountryCode({})", self.as_str())
    }
}

/// A calendar month, used for long-run timelines (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct YearMonth {
    /// Calendar year (e.g. 2015).
    pub year: u16,
    /// Month 1..=12.
    pub month: u8,
}

impl YearMonth {
    /// Creates a month; panics if `month` is not in `1..=12`.
    pub fn new(year: u16, month: u8) -> Self {
        assert!((1..=12).contains(&month), "month {month} out of range");
        YearMonth { year, month }
    }

    /// Months elapsed since `earlier` (can be negative).
    pub fn months_since(self, earlier: YearMonth) -> i32 {
        (self.year as i32 - earlier.year as i32) * 12 + (self.month as i32 - earlier.month as i32)
    }

    /// The month `n` months after this one.
    pub fn plus_months(self, n: u32) -> YearMonth {
        let total = (self.year as u32) * 12 + (self.month as u32 - 1) + n;
        YearMonth { year: (total / 12) as u16, month: (total % 12 + 1) as u8 }
    }
}

impl fmt::Display for YearMonth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04}-{:02}", self.year, self.month)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rir_all_has_unique_indices() {
        let mut seen = [false; 5];
        for r in Rir::ALL {
            assert!(!seen[r.index()], "duplicate index for {r}");
            seen[r.index()] = true;
            assert_eq!(Rir::ALL[r.index()], r);
        }
    }

    #[test]
    fn exhaustion_dates_are_chronological() {
        for w in RIR_EXHAUSTION.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
        assert!(IANA_EXHAUSTION < RIR_EXHAUSTION[0].1);
        assert_eq!(Rir::Afrinic.exhaustion(), None);
        assert_eq!(Rir::Arin.exhaustion(), Some(YearMonth::new(2015, 9)));
    }

    #[test]
    fn country_code_roundtrip() {
        let us = CountryCode::new("US");
        assert_eq!(us.as_str(), "US");
        assert_eq!(us.to_string(), "US");
        assert_eq!(us, CountryCode::new("US"));
        assert_ne!(us, CountryCode::new("CN"));
    }

    #[test]
    #[should_panic(expected = "invalid country code")]
    fn country_code_rejects_lowercase() {
        CountryCode::new("us");
    }

    #[test]
    fn yearmonth_arithmetic() {
        let jan15 = YearMonth::new(2015, 1);
        let dec15 = YearMonth::new(2015, 12);
        assert_eq!(dec15.months_since(jan15), 11);
        assert_eq!(jan15.months_since(dec15), -11);
        assert_eq!(jan15.plus_months(11), dec15);
        assert_eq!(jan15.plus_months(12), YearMonth::new(2016, 1));
        assert_eq!(jan15.plus_months(0), jan15);
        assert_eq!(YearMonth::new(2008, 1).plus_months(23), YearMonth::new(2009, 12));
    }

    #[test]
    fn yearmonth_ordering_and_display() {
        assert!(YearMonth::new(2014, 12) < YearMonth::new(2015, 1));
        assert_eq!(YearMonth::new(2015, 3).to_string(), "2015-03");
    }
}
