//! Delegation database: prefix → (RIR, country).

use crate::{CountryCode, Rir};
use ipactive_net::{Addr, Prefix, PrefixTrie};

/// One address-space delegation, as in the NRO extended allocation files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delegation {
    /// The delegated prefix.
    pub prefix: Prefix,
    /// The registry that made the delegation.
    pub rir: Rir,
    /// Country the registrant is registered in.
    pub country: CountryCode,
}

/// Longest-prefix-match database of delegations.
///
/// Lookups return the most specific delegation covering an address,
/// mirroring how per-country assignments nest inside regional
/// allocations in the real delegation files.
///
/// ```
/// use ipactive_rir::{CountryCode, Delegation, DelegationDb, Rir};
/// let mut db = DelegationDb::new();
/// db.insert(Delegation {
///     prefix: "24.0.0.0/8".parse().unwrap(),
///     rir: Rir::Arin,
///     country: CountryCode::new("US"),
/// });
/// let d = db.lookup("24.1.2.3".parse().unwrap()).unwrap();
/// assert_eq!(d.rir, Rir::Arin);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DelegationDb {
    trie: PrefixTrie<(Rir, CountryCode)>,
}

impl DelegationDb {
    /// An empty database.
    pub fn new() -> Self {
        DelegationDb { trie: PrefixTrie::new() }
    }

    /// Adds (or replaces) a delegation.
    pub fn insert(&mut self, d: Delegation) {
        self.trie.insert(d.prefix, (d.rir, d.country));
    }

    /// Number of delegations stored.
    pub fn len(&self) -> usize {
        self.trie.len()
    }

    /// Whether the database is empty.
    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    /// Most specific delegation covering `addr`, if any.
    pub fn lookup(&self, addr: Addr) -> Option<Delegation> {
        self.trie
            .longest_match(addr)
            .map(|(prefix, &(rir, country))| Delegation { prefix, rir, country })
    }

    /// The registry for `addr`, if delegated.
    pub fn rir_of(&self, addr: Addr) -> Option<Rir> {
        self.lookup(addr).map(|d| d.rir)
    }

    /// The registration country for `addr`, if delegated.
    pub fn country_of(&self, addr: Addr) -> Option<CountryCode> {
        self.lookup(addr).map(|d| d.country)
    }

    /// All delegations in address order.
    pub fn iter(&self) -> Vec<Delegation> {
        self.trie
            .iter()
            .into_iter()
            .map(|(prefix, &(rir, country))| Delegation { prefix, rir, country })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn deleg(p: &str, rir: Rir, cc: &str) -> Delegation {
        Delegation { prefix: p.parse().unwrap(), rir, country: CountryCode::new(cc) }
    }

    #[test]
    fn lookup_prefers_most_specific() {
        let mut db = DelegationDb::new();
        db.insert(deleg("80.0.0.0/8", Rir::Ripe, "GB"));
        db.insert(deleg("80.1.0.0/16", Rir::Ripe, "DE"));
        let d = db.lookup("80.1.2.3".parse().unwrap()).unwrap();
        assert_eq!(d.country.as_str(), "DE");
        let d = db.lookup("80.2.2.3".parse().unwrap()).unwrap();
        assert_eq!(d.country.as_str(), "GB");
        assert!(db.lookup("81.0.0.1".parse().unwrap()).is_none());
    }

    #[test]
    fn convenience_accessors() {
        let mut db = DelegationDb::new();
        db.insert(deleg("1.0.0.0/8", Rir::Apnic, "CN"));
        let a: Addr = "1.2.3.4".parse().unwrap();
        assert_eq!(db.rir_of(a), Some(Rir::Apnic));
        assert_eq!(db.country_of(a).unwrap().as_str(), "CN");
        assert_eq!(db.rir_of("2.0.0.0".parse().unwrap()), None);
    }

    #[test]
    fn iter_returns_address_order() {
        let mut db = DelegationDb::new();
        db.insert(deleg("200.0.0.0/8", Rir::Lacnic, "BR"));
        db.insert(deleg("41.0.0.0/8", Rir::Afrinic, "ZA"));
        db.insert(deleg("100.0.0.0/8", Rir::Arin, "US"));
        let all = db.iter();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].country.as_str(), "ZA");
        assert_eq!(all[2].country.as_str(), "BR");
    }

    #[test]
    fn replace_updates_value() {
        let mut db = DelegationDb::new();
        db.insert(deleg("10.0.0.0/8", Rir::Arin, "US"));
        db.insert(deleg("10.0.0.0/8", Rir::Arin, "CA"));
        assert_eq!(db.len(), 1);
        assert_eq!(db.country_of("10.1.1.1".parse().unwrap()).unwrap().as_str(), "CA");
    }
}
