//! Property tests for the registry substrate.

use ipactive_net::Addr;
use ipactive_rir::{parse_nro, range_to_prefixes, CountryCode, DelegationDb, Rir};
use proptest::prelude::*;

proptest! {
    /// CIDR expansion covers the requested range exactly, contiguously,
    /// and in order, for any start/count that fits the space.
    #[test]
    fn range_expansion_is_exact(start in any::<u32>(), count in 1u64..100_000) {
        let count = count.min((1u64 << 32) - start as u64);
        let prefixes = range_to_prefixes(Addr::new(start), count);
        let mut cursor = start as u64;
        for p in &prefixes {
            prop_assert_eq!(p.network().bits() as u64, cursor, "gap or overlap");
            cursor += p.num_addrs() as u64;
        }
        prop_assert_eq!(cursor - start as u64, count, "total coverage");
        // Expansion is minimal-ish: never more prefixes than set bits
        // of count plus alignment fixups (bounded by 64).
        prop_assert!(prefixes.len() <= 64);
    }

    /// Round trip: synthesize an NRO file from random records, parse
    /// it back, and confirm lookups resolve to the right registry.
    #[test]
    fn nro_roundtrip(records in prop::collection::vec(
        (0u8..5, 0u32..200, 1u64..4096), 1..20)) {
        let regs = ["arin", "ripencc", "apnic", "lacnic", "afrinic"];
        let rirs = [Rir::Arin, Rir::Ripe, Rir::Apnic, Rir::Lacnic, Rir::Afrinic];
        let ccs = ["US", "DE", "CN", "BR", "ZA"];
        let mut text = String::from("2|nro|20160101|1|19830101|20151231|+0000\n");
        let mut expected = Vec::new();
        for (i, &(reg, slot, count)) in records.iter().enumerate() {
            // Disjoint /16-aligned starts so lookups are unambiguous.
            let start = ((10 + i as u32) << 24) | (slot << 16);
            let a = Addr::new(start);
            text.push_str(&format!(
                "{}|{}|ipv4|{}|{}|20100101|allocated\n",
                regs[reg as usize], ccs[reg as usize], a, count
            ));
            expected.push((a, rirs[reg as usize], ccs[reg as usize]));
        }
        let db = DelegationDb::from_nro(&text).unwrap();
        for (addr, rir, cc) in expected {
            let d = db.lookup(addr).unwrap();
            prop_assert_eq!(d.rir, rir);
            prop_assert_eq!(d.country, CountryCode::new(cc));
        }
    }

    /// The parser never panics on arbitrary junk — it returns Ok or Err.
    #[test]
    fn parser_is_total(junk in "[ -~\n|]{0,500}") {
        let _ = parse_nro(&junk);
    }
}
