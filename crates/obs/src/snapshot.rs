//! Immutable snapshots of a [`Registry`](crate::Registry), their JSON
//! rendering, and the indented span-tree profile.
//!
//! JSON output is fully deterministic in layout: metric names sort
//! lexicographically, events sort by provenance, every number prints
//! in a canonical form, and the key order inside objects is fixed. A
//! [`SnapshotMode::Deterministic`] snapshot additionally contains no
//! wall-time quantity at all, so two runs over the same inputs and
//! seeds render byte-identical documents whatever the thread count.

use crate::journal::Event;
use std::collections::BTreeMap;

/// What a snapshot may contain. See the crate docs for the contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Counters, gauges, histograms, journal — no wall time. Byte-
    /// stable across runs and thread counts; golden-testable.
    Deterministic,
    /// Everything, including the span timing tree.
    Timed,
}

impl SnapshotMode {
    /// Stable lowercase name used in JSON snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            SnapshotMode::Deterministic => "deterministic",
            SnapshotMode::Timed => "timed",
        }
    }
}

/// Frozen histogram state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Inclusive upper bounds, ascending.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; one longer than `bounds` (overflow last).
    pub buckets: Vec<u64>,
    /// Per-bucket recent trace ids (oldest first), parallel to
    /// `buckets`. Exemplars carry run provenance, so they render only
    /// in [`SnapshotMode::Timed`] JSON.
    pub exemplars: Vec<Vec<u64>>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Bucket-interpolated quantile estimate (`q` in `0.0..=1.0`);
    /// see [`Histogram::quantile`](crate::Histogram::quantile) for the
    /// interpolation and overflow-saturation rules. Returns 0.0 on an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Target rank in 1..=count; ceil so q = 0.0 still asks for the
        // first observation and q = 1.0 for the last.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if below + n >= rank {
                let lower = if i == 0 { 0 } else { self.bounds[i - 1] };
                let upper = match self.bounds.get(i) {
                    Some(&b) => b,
                    // Overflow bucket: the upper edge is unknown, so
                    // the estimate saturates at the last finite bound.
                    None => return lower as f64,
                };
                let into = (rank - below) as f64 / n as f64;
                return lower as f64 + into * (upper - lower) as f64;
            }
            below += n;
        }
        // Unreachable when count equals the bucket sum; be defensive.
        self.bounds.last().copied().unwrap_or(0) as f64
    }

    /// The index of the bucket holding the rank-`⌈q·count⌉`
    /// observation — the bucket whose exemplars explain that quantile.
    /// `None` on an empty histogram.
    pub fn quantile_bucket(&self, q: f64) -> Option<usize> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut below = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if below + n >= rank {
                return Some(i);
            }
            below += n;
        }
        None
    }
}

/// Frozen aggregate for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-joined nesting path.
    pub path: String,
    /// Times entered.
    pub count: u64,
    /// Total nanoseconds.
    pub total_ns: u64,
    /// Fastest entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest entry, nanoseconds.
    pub max_ns: u64,
}

/// A frozen copy of a registry: the single artifact that report
/// structs (`PipelineReport`, `SupervisedRunSummary`, cache stats)
/// are views over.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Which contract this snapshot satisfies.
    pub mode: SnapshotMode,
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram states by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Journal events, sorted by provenance.
    pub events: Vec<Event>,
    /// Events lost past the journal's capacity.
    pub events_dropped: u64,
    /// Span aggregates by path (empty in deterministic mode).
    pub spans: Vec<SpanSnapshot>,
}

impl Snapshot {
    /// The value of counter `name`, `0` when never registered.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of gauge `name`, `0` when never registered.
    pub fn gauge(&self, name: &str) -> i64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.counters
            .range(prefix.to_string()..)
            .take_while(|(name, _)| name.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// Events of the given kind.
    pub fn events_of(&self, kind: crate::EventKind) -> impl Iterator<Item = &Event> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Total nanoseconds recorded under span `path` (`0` if absent).
    pub fn span_total_ns(&self, path: &str) -> u64 {
        self.spans.iter().find(|s| s.path == path).map(|s| s.total_ns).unwrap_or(0)
    }

    /// Renders the snapshot as a deterministic JSON document (sorted
    /// names, fixed key order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode.as_str()));

        out.push_str("  \"counters\": {");
        let mut first = true;
        for (name, value) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {value}", json_string(name)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"gauges\": {");
        let mut first = true;
        for (name, value) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n    {}: {value}", json_string(name)));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str("  \"histograms\": {");
        let mut first = true;
        for (name, h) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            // Exemplars name traces by recency — wall-time provenance
            // — so the deterministic document omits them entirely.
            let exemplars = match self.mode {
                SnapshotMode::Deterministic => String::new(),
                SnapshotMode::Timed => {
                    format!(", \"exemplars\": {}", json_exemplar_array(&h.exemplars))
                }
            };
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"bounds\": {}, \"buckets\": {}{}}}",
                json_string(name),
                h.count,
                h.sum,
                json_u64_array(&h.bounds),
                json_u64_array(&h.buckets),
                exemplars,
            ));
        }
        out.push_str(if first { "},\n" } else { "\n  },\n" });

        out.push_str(&format!("  \"events_dropped\": {},\n", self.events_dropped));
        out.push_str("  \"events\": [");
        let mut first = true;
        for e in &self.events {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!(
                "\n    {{\"kind\": \"{}\", \"shard\": {}, \"day\": {}, \"offset\": {}, \
                 \"attempt\": {}, \"detail\": {}}}",
                e.kind.as_str(),
                json_opt(e.shard.map(u64::from)),
                json_opt(e.day.map(u64::from)),
                json_opt(e.offset),
                json_opt(e.attempt.map(u64::from)),
                json_string(&e.detail),
            ));
        }
        out.push_str(if first { "]" } else { "\n  ]" });

        if self.mode == SnapshotMode::Timed {
            out.push_str(",\n  \"spans\": [");
            let mut first = true;
            for s in &self.spans {
                if !first {
                    out.push(',');
                }
                first = false;
                out.push_str(&format!(
                    "\n    {{\"path\": {}, \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \
                     \"max_ns\": {}}}",
                    json_string(&s.path),
                    s.count,
                    s.total_ns,
                    s.min_ns,
                    s.max_ns,
                ));
            }
            out.push_str(if first { "]" } else { "\n  ]" });
        }
        out.push_str("\n}\n");
        out
    }

    /// Renders the span tree as an indented profile, children under
    /// parents, slowest sibling first. Empty string when no spans
    /// were recorded (e.g. a deterministic snapshot).
    pub fn render_profile(&self) -> String {
        if self.spans.is_empty() {
            return String::new();
        }
        // Group children under parents, then order siblings by total
        // time descending (ties broken by path for stability).
        let totals = spans_map(&self.spans);
        let mut spans: Vec<&SpanSnapshot> = self.spans.iter().collect();
        spans.sort_by_cached_key(|s| {
            let parts: Vec<&str> = s.path.split('/').collect();
            sort_key(&totals, &parts)
        });
        let mut out = String::new();
        out.push_str("span tree (wall time per stage)\n");
        for s in spans {
            let depth = s.path.matches('/').count();
            let name = s.path.rsplit('/').next().unwrap_or(&s.path);
            out.push_str(&format!(
                "{:indent$}{name}: {:.1} ms  (calls {}, min {:.2} ms, max {:.2} ms)\n",
                "",
                s.total_ns as f64 / 1e6,
                s.count,
                s.min_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6,
                indent = depth * 2,
            ));
        }
        out
    }
}

fn spans_map(spans: &[SpanSnapshot]) -> BTreeMap<&str, u64> {
    spans.iter().map(|s| (s.path.as_str(), s.total_ns)).collect()
}

/// Sort key placing each span after its ancestors and ordering
/// sibling subtrees by total time descending: for every path prefix,
/// (negated total of that prefix, prefix name).
fn sort_key(totals: &BTreeMap<&str, u64>, parts: &[&str]) -> Vec<(i128, String)> {
    let mut key = Vec::with_capacity(parts.len());
    let mut prefix = String::new();
    for part in parts {
        if !prefix.is_empty() {
            prefix.push('/');
        }
        prefix.push_str(part);
        let total = totals.get(prefix.as_str()).copied().unwrap_or(0);
        key.push((-(total as i128), part.to_string()));
    }
    key
}

fn json_opt(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let inner: Vec<String> = values.iter().map(u64::to_string).collect();
    format!("[{}]", inner.join(", "))
}

fn json_exemplar_array(rings: &[Vec<u64>]) -> String {
    let inner: Vec<String> = rings
        .iter()
        .map(|ring| {
            let ids: Vec<String> = ring.iter().map(|id| format!("\"{id:016x}\"")).collect();
            format!("[{}]", ids.join(", "))
        })
        .collect();
    format!("[{}]", inner.join(", "))
}

/// Escapes a string for JSON embedding.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Event, EventKind, Registry};

    #[test]
    fn json_is_parseable_and_ordered() {
        let reg = Registry::new();
        reg.counter("store.fsync").add(4);
        reg.counter("engine.cache.hit").add(9);
        reg.gauge("engine.days").set(28);
        reg.histogram("store.write.bytes", &[1024, 65536]).observe(2000);
        reg.emit(Event::new(EventKind::Resync).shard(1).offset(77).detail("2 frames"));
        {
            let _s = reg.span("run");
        }
        let det = reg.snapshot(SnapshotMode::Deterministic);
        let json = det.to_json();
        let value = crate::json::parse(&json).expect("snapshot JSON parses");
        let obj = value.as_object().unwrap();
        assert_eq!(obj.iter().map(|(k, _)| k.as_str()).collect::<Vec<_>>(), vec![
            "mode",
            "counters",
            "gauges",
            "histograms",
            "events_dropped",
            "events"
        ]);
        assert!(
            json.find("engine.cache.hit").unwrap() < json.find("store.fsync").unwrap(),
            "counters must sort by name"
        );

        let timed = reg.snapshot(SnapshotMode::Timed).to_json();
        assert!(timed.contains("\"spans\""));
        crate::json::parse(&timed).expect("timed JSON parses");
    }

    #[test]
    fn exemplars_render_only_in_timed_mode() {
        let reg = Registry::new();
        let h = reg.histogram("serve.latency_us", &[10, 100]);
        h.observe_traced(5, crate::TraceId(0xBEEF));
        h.observe_traced(5000, crate::TraceId(0xCAFE));
        let det = reg.snapshot(SnapshotMode::Deterministic).to_json();
        assert!(!det.contains("exemplars"), "deterministic documents carry no exemplars");
        let timed = reg.snapshot(SnapshotMode::Timed).to_json();
        assert!(timed.contains("\"exemplars\": [[\"000000000000beef\"], [], [\"000000000000cafe\"]]"));
        crate::json::parse(&timed).expect("timed JSON parses");

        let snap = reg.snapshot(SnapshotMode::Timed);
        let hs = &snap.histograms["serve.latency_us"];
        assert_eq!(hs.quantile_bucket(0.99), Some(2), "the tail lands in the overflow bucket");
        assert_eq!(hs.exemplars[hs.quantile_bucket(0.99).unwrap()], vec![0xCAFE]);
        let empty = HistogramSnapshot {
            bounds: vec![1],
            buckets: vec![0, 0],
            exemplars: vec![vec![], vec![]],
            count: 0,
            sum: 0,
        };
        assert_eq!(empty.quantile_bucket(0.5), None);
    }

    #[test]
    fn accessors_default_to_zero() {
        let reg = Registry::new();
        reg.counter("pipeline.shard.0.records").add(5);
        reg.counter("pipeline.shard.1.records").add(7);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("pipeline.shard.0.records"), 5);
        assert_eq!(snap.counter("missing"), 0);
        assert_eq!(snap.gauge("missing"), 0);
        assert_eq!(snap.counter_sum("pipeline.shard."), 12);
        assert_eq!(snap.counter_sum("pipeline.shard.1"), 7);
        assert_eq!(snap.span_total_ns("nowhere"), 0);
    }

    #[test]
    fn profile_indents_children_under_parents() {
        let reg = Registry::new();
        {
            let _a = reg.span("suite");
            {
                let _b = reg.span("fig1");
            }
            {
                let _c = reg.span("fig2");
            }
        }
        let profile = reg.snapshot(SnapshotMode::Timed).render_profile();
        let lines: Vec<&str> = profile.lines().collect();
        assert_eq!(lines[0], "span tree (wall time per stage)");
        assert!(lines[1].starts_with("suite: "));
        assert!(lines[2].starts_with("  fig"), "children indent under the parent: {profile}");
        assert!(lines[3].starts_with("  fig"));
        let det = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(det.render_profile(), "");
    }

    #[test]
    fn string_escaping_round_trips() {
        let s = json_string("a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }
}
