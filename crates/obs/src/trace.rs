//! Distributed trace capture: per-request/per-grant trace contexts,
//! bounded structural span records, and deterministic JSON documents
//! that a coordinator or observatory can stitch across processes.
//!
//! The tracing plane deliberately records **structure, not time**: a
//! [`SpanRecord`] carries a sequence number, a parent link, a stage
//! name, and a request-derived detail string — never a latency, a
//! cache verdict, or a thread id. That is what lets trace documents
//! participate in the same byte-identical determinism contract as
//! [`SnapshotMode::Deterministic`](crate::SnapshotMode::Deterministic)
//! snapshots: the same seeds and inputs produce the same trace bytes
//! whatever the worker count. Wall time links back to a trace through
//! histogram *exemplars* (see [`crate::metrics::Histogram`]), which
//! live only in timed snapshots.
//!
//! Cross-process stitching works through [`TraceContext`]: the parent
//! process records a root span, ships `(trace_id, span_seq)` over its
//! boundary (wire frame or CLI flag), and the child process numbers
//! its own spans *after* the parent's (`next = max(last, parent) + 1`)
//! so a later [`TraceStore::import`] interleaves both sides into one
//! ordered tree without renumbering.

use std::collections::BTreeMap;

/// Hard cap on distinct traces retained by one [`TraceStore`]; later
/// traces are counted as dropped, never allocated.
pub const MAX_TRACES: usize = 1024;

/// Hard cap on spans retained per trace; later spans are counted as
/// truncated.
pub const MAX_SPANS_PER_TRACE: usize = 128;

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A 64-bit trace identifier. Zero is reserved for "no trace".
///
/// Minted deterministically from a seed and a unit number (request
/// index, grant holder id, shard) — never from a clock or an RNG — so
/// reruns of the same workload mint the same ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace id.
    pub const NONE: TraceId = TraceId(0);

    /// Deterministically mints a non-zero id from `(seed, unit)` via
    /// a splitmix64 finalizer. Distinct salts on `seed` keep id
    /// populations from different layers (loadgen, coordinator,
    /// figures) disjoint in practice.
    pub fn mint(seed: u64, unit: u64) -> TraceId {
        let id = splitmix(seed ^ splitmix(unit.wrapping_add(1)));
        TraceId(if id == 0 { 1 } else { id })
    }

    /// Whether this is the reserved absent id.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// The canonical 16-digit lowercase hex form.
    pub fn to_hex(self) -> String {
        format!("{:016x}", self.0)
    }

    /// Parses the canonical hex form (also accepts shorter strings).
    pub fn from_hex(s: &str) -> Option<TraceId> {
        u64::from_str_radix(s, 16).ok().map(TraceId)
    }
}

/// A propagatable position inside a trace: the trace id plus the
/// sequence number of the span that new child spans should hang off.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace this context belongs to ([`TraceId::NONE`] when the
    /// request is untraced).
    pub trace: TraceId,
    /// Sequence number of the parent span (0 = the trace root).
    pub span: u64,
}

impl TraceContext {
    /// The absent context (untraced request).
    pub const NONE: TraceContext = TraceContext { trace: TraceId::NONE, span: 0 };

    /// A context at the root of `trace`.
    pub fn root(trace: TraceId) -> TraceContext {
        TraceContext { trace, span: 0 }
    }

    /// Whether this context carries no trace.
    pub fn is_none(self) -> bool {
        self.trace.is_none()
    }
}

/// One recorded span: structural provenance only, per the module
/// contract — no wall time, no thread ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Per-trace sequence number (1-based; 0 is the implicit root).
    pub seq: u64,
    /// Sequence number of the parent span (0 = root).
    pub parent: u64,
    /// Stage name (`serve.admission`, `engine.compose`, ...).
    pub name: String,
    /// Request-derived deterministic detail (`days 0..10`).
    pub detail: String,
}

/// What [`TraceStore::record`] did with a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordOutcome {
    /// Recorded; carries the assigned sequence number.
    Recorded(u64),
    /// The trace hit [`MAX_SPANS_PER_TRACE`]; the span was dropped.
    SpanCapped,
    /// The store hit [`MAX_TRACES`]; a new trace was refused.
    TraceCapped,
}

/// Bounded per-registry store of span records, keyed by trace id.
#[derive(Debug, Default)]
pub struct TraceStore {
    traces: BTreeMap<u64, Vec<SpanRecord>>,
}

impl TraceStore {
    /// Records one span under `ctx`, assigning it the next sequence
    /// number after both the trace's last span and the context's
    /// parent span (so spans imported later from a child process that
    /// continued the numbering slot in between without collision).
    pub fn record(
        &mut self,
        ctx: TraceContext,
        name: impl Into<String>,
        detail: impl Into<String>,
    ) -> RecordOutcome {
        if ctx.is_none() {
            return RecordOutcome::TraceCapped;
        }
        if !self.traces.contains_key(&ctx.trace.0) && self.traces.len() >= MAX_TRACES {
            return RecordOutcome::TraceCapped;
        }
        let spans = self.traces.entry(ctx.trace.0).or_default();
        if spans.len() >= MAX_SPANS_PER_TRACE {
            return RecordOutcome::SpanCapped;
        }
        let last = spans.last().map(|s| s.seq).unwrap_or(0);
        let seq = last.max(ctx.span) + 1;
        spans.push(SpanRecord {
            seq,
            parent: ctx.span,
            name: name.into(),
            detail: detail.into(),
        });
        RecordOutcome::Recorded(seq)
    }

    /// Merges externally exported spans into trace `trace`, keeping
    /// the result sorted by sequence number. Import is idempotent:
    /// a span whose `seq` is already present is skipped, so a trace
    /// file can be re-read after a partial import (or alongside spans
    /// the local process already recorded through a shared registry)
    /// without duplication. Returns how many spans were added.
    pub fn import(&mut self, trace: u64, spans: Vec<SpanRecord>) -> usize {
        if trace == 0 || spans.is_empty() {
            return 0;
        }
        if !self.traces.contains_key(&trace) && self.traces.len() >= MAX_TRACES {
            return 0;
        }
        let existing = self.traces.entry(trace).or_default();
        let mut added = 0;
        for span in spans {
            if existing.len() >= MAX_SPANS_PER_TRACE {
                break;
            }
            if existing.iter().any(|s| s.seq == span.seq) {
                continue;
            }
            existing.push(span);
            added += 1;
        }
        if added > 0 {
            existing.sort_by_key(|s| s.seq);
        }
        added
    }

    /// The spans of `trace`, in sequence order, if it exists.
    pub fn spans(&self, trace: u64) -> Option<&[SpanRecord]> {
        self.traces.get(&trace).map(Vec::as_slice)
    }

    /// All trace ids, ascending.
    pub fn ids(&self) -> Vec<u64> {
        self.traces.keys().copied().collect()
    }

    /// Renders one trace as a deterministic JSON document (trailing
    /// newline), or `None` if the trace is unknown.
    pub fn trace_json(&self, trace: u64) -> Option<String> {
        let spans = self.traces.get(&trace)?;
        let mut out = String::with_capacity(256);
        render_trace(&mut out, trace, spans, "");
        out.push('\n');
        Some(out)
    }

    /// Renders every trace, ascending by id, as one deterministic
    /// JSON document (trailing newline).
    pub fn traces_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"traces\": [");
        let mut first = true;
        for (trace, spans) in &self.traces {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("\n    ");
            render_trace(&mut out, *trace, spans, "    ");
        }
        out.push_str(if first { "]\n}\n" } else { "\n  ]\n}\n" });
        out
    }
}

fn render_trace(out: &mut String, trace: u64, spans: &[SpanRecord], indent: &str) {
    out.push_str(&format!("{{\"trace_id\": \"{:016x}\", \"spans\": [", trace));
    let mut first = true;
    for s in spans {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n{indent}  {{\"seq\": {}, \"parent\": {}, \"name\": {}, \"detail\": {}}}",
            s.seq,
            s.parent,
            crate::snapshot::json_string(&s.name),
            crate::snapshot::json_string(&s.detail),
        ));
    }
    if first {
        out.push_str("]}");
    } else {
        out.push_str(&format!("\n{indent}]}}"));
    }
}

/// Parses a single-trace document produced by
/// [`TraceStore::trace_json`] (or a worker's exported trace file)
/// back into `(trace_id, spans)`.
pub fn parse_trace_doc(doc: &str) -> Result<(u64, Vec<SpanRecord>), String> {
    let value = crate::json::parse(doc).map_err(|e| e.to_string())?;
    let trace = value
        .get("trace_id")
        .and_then(crate::json::Json::as_str)
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .ok_or("missing or malformed trace_id")?;
    let spans = value
        .get("spans")
        .and_then(crate::json::Json::as_array)
        .ok_or("missing spans array")?
        .iter()
        .map(|s| {
            let num = |key: &str| {
                s.get(key)
                    .and_then(crate::json::Json::as_f64)
                    .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                    .map(|n| n as u64)
                    .ok_or_else(|| format!("span missing integer `{key}`"))
            };
            let text = |key: &str| {
                s.get(key)
                    .and_then(crate::json::Json::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| format!("span missing string `{key}`"))
            };
            Ok(SpanRecord {
                seq: num("seq")?,
                parent: num("parent")?,
                name: text("name")?,
                detail: text("detail")?,
            })
        })
        .collect::<Result<Vec<SpanRecord>, String>>()?;
    Ok((trace, spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_ids_are_deterministic_nonzero_and_unit_distinct() {
        let a = TraceId::mint(0xC4A05, 0);
        let b = TraceId::mint(0xC4A05, 1);
        assert_eq!(a, TraceId::mint(0xC4A05, 0), "same seed+unit mints the same id");
        assert_ne!(a, b);
        assert!(!a.is_none() && !b.is_none());
        assert_eq!(TraceId::from_hex(&a.to_hex()), Some(a), "hex round-trips");
    }

    #[test]
    fn record_numbers_after_parent_and_last() {
        let mut store = TraceStore::default();
        let trace = TraceId(7);
        let root = TraceContext::root(trace);
        let RecordOutcome::Recorded(s1) = store.record(root, "client.request", "") else {
            panic!("root span refused")
        };
        assert_eq!(s1, 1);
        // A child process told "your parent is span 1" numbers from 2
        // even though its local store is empty.
        let mut remote = TraceStore::default();
        let ctx = TraceContext { trace, span: s1 };
        let RecordOutcome::Recorded(s2) = store.record(ctx, "serve.admission", "day_window") else {
            panic!()
        };
        assert_eq!(s2, 2);
        let RecordOutcome::Recorded(r2) = remote.record(ctx, "worker.run", "shard 0") else {
            panic!()
        };
        assert_eq!(r2, 2, "remote numbering continues after the shipped parent seq");
    }

    #[test]
    fn import_is_idempotent_and_sorted() {
        let mut coord = TraceStore::default();
        let trace = TraceId(9);
        coord.record(TraceContext::root(trace), "coord.grant", "shard 0");
        let mut worker = TraceStore::default();
        worker.record(TraceContext { trace, span: 1 }, "worker.run", "");
        worker.record(TraceContext { trace, span: 2 }, "store.commit", "");
        let exported = worker.trace_json(trace.0).unwrap();
        let (tid, spans) = parse_trace_doc(&exported).unwrap();
        assert_eq!(tid, trace.0);
        assert_eq!(coord.import(tid, spans.clone()), 2);
        assert_eq!(coord.import(tid, spans), 0, "re-import adds nothing");
        let seqs: Vec<u64> = coord.spans(trace.0).unwrap().iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        // Post-import recording continues after the imported spans.
        let RecordOutcome::Recorded(s) =
            coord.record(TraceContext { trace, span: 1 }, "coord.steal", "heartbeat stalled")
        else {
            panic!()
        };
        assert_eq!(s, 4);
    }

    #[test]
    fn caps_bound_memory() {
        let mut store = TraceStore::default();
        let trace = TraceId(3);
        for _ in 0..MAX_SPANS_PER_TRACE {
            assert!(matches!(
                store.record(TraceContext::root(trace), "s", ""),
                RecordOutcome::Recorded(_)
            ));
        }
        assert_eq!(store.record(TraceContext::root(trace), "s", ""), RecordOutcome::SpanCapped);
        for i in 1..MAX_TRACES as u64 {
            store.record(TraceContext::root(TraceId(1_000 + i)), "s", "");
        }
        assert_eq!(
            store.record(TraceContext::root(TraceId(999_999)), "s", ""),
            RecordOutcome::TraceCapped
        );
        assert!(matches!(
            store.record(TraceContext::root(trace), "s", ""),
            RecordOutcome::SpanCapped
        ));
    }

    #[test]
    fn untraced_context_is_refused_cheaply() {
        let mut store = TraceStore::default();
        assert_eq!(store.record(TraceContext::NONE, "s", ""), RecordOutcome::TraceCapped);
        assert!(store.ids().is_empty());
    }

    #[test]
    fn json_documents_parse_and_sort_by_id() {
        let mut store = TraceStore::default();
        store.record(TraceContext::root(TraceId(0xBEEF)), "b", "two");
        store.record(TraceContext::root(TraceId(0xABBA)), "a", "one \"quoted\"");
        let all = store.traces_json();
        let value = crate::json::parse(&all).expect("traces document parses");
        let traces = value.get("traces").unwrap().as_array().unwrap();
        assert_eq!(traces.len(), 2);
        assert_eq!(traces[0].get("trace_id").unwrap().as_str(), Some("000000000000abba"));
        assert_eq!(traces[1].get("trace_id").unwrap().as_str(), Some("000000000000beef"));
        assert_eq!(store.trace_json(0x5050), None);
        let one = store.trace_json(0xABBA).unwrap();
        let (tid, spans) = parse_trace_doc(&one).unwrap();
        assert_eq!(tid, 0xABBA);
        assert_eq!(spans[0].detail, "one \"quoted\"");
    }

    #[test]
    fn empty_store_renders_an_empty_list() {
        let store = TraceStore::default();
        assert_eq!(store.traces_json(), "{\n  \"traces\": []\n}\n");
        crate::json::parse(&store.traces_json()).unwrap();
    }
}
