//! RAII scoped timing spans aggregated into a parent/child tree.
//!
//! A span opened while another span is open *on the same thread*
//! nests under it: the tree key is the `/`-joined path of open span
//! names (`repro/fig4a/pipeline`). Each distinct path aggregates call
//! count, total, min, and max wall time — a profile, not a trace, so
//! memory stays bounded no matter how hot the loop.
//!
//! Spans measure wall time and therefore live only in
//! [`SnapshotMode::Timed`](crate::SnapshotMode::Timed) snapshots; the
//! deterministic mode strips them (see the crate docs for the
//! contract).

use crate::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Maximum nesting depth a span path may reach; deeper spans fold
/// into their ancestor's [`FOLD`] bucket.
pub const MAX_DEPTH: usize = 16;

/// Maximum direct children one span path may grow; further *new*
/// sibling names fold into the parent's [`FOLD`] bucket (existing
/// paths keep aggregating normally).
pub const MAX_CHILDREN: usize = 64;

/// The synthetic leaf name that over-deep or over-wide span trees
/// aggregate under. Every fold bumps the `span.truncated` counter, so
/// pathological nesting degrades to one bucket plus a count — never
/// to unbounded memory.
pub const FOLD: &str = "...";

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Times this path was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Fastest single entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest single entry, nanoseconds.
    pub max_ns: u64,
}

impl Default for SpanStat {
    fn default() -> SpanStat {
        SpanStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }
}

impl SpanStat {
    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }
}

/// An open timing span; dropping it records one observation under its
/// path. Created by [`Registry::span`] or the
/// [`span!`](crate::span!) macro. Guards must drop in LIFO order
/// (which scoped `let` bindings guarantee).
pub struct Span {
    registry: Registry,
    path: String,
    truncated: bool,
    start: Instant,
}

impl Span {
    pub(crate) fn open(registry: Registry, name: String) -> Span {
        let (path, truncated) = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let (path, truncated) = match stack.last() {
                // Past the depth cap the span folds into the parent's
                // `...` bucket; once the parent *is* a fold bucket,
                // deeper spans reuse it so runaway recursion costs one
                // path, not one per level.
                Some(parent_path) if stack.len() >= MAX_DEPTH => {
                    let path = if parent_path.rsplit('/').next() == Some(FOLD) {
                        parent_path.clone()
                    } else {
                        format!("{parent_path}/{FOLD}")
                    };
                    (path, true)
                }
                Some(parent_path) => (format!("{parent_path}/{name}"), false),
                None => (name, false),
            };
            stack.push(path.clone());
            (path, truncated)
        });
        Span { registry, path, truncated, start: Instant::now() }
    }

    /// The `/`-joined path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        if self.truncated {
            self.registry.counter("span.truncated").inc();
        }
        self.registry.record_span(&self.path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotMode;

    #[test]
    fn spans_nest_by_thread_stack() {
        let reg = Registry::new();
        {
            let _outer = reg.span("suite");
            {
                let _inner = reg.span("fig1");
                let _leaf = reg.span("pipeline");
            }
            let _inner2 = reg.span("fig2");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["suite", "suite/fig1", "suite/fig1/pipeline", "suite/fig2"]);
    }

    #[test]
    fn repeated_entries_aggregate() {
        let reg = Registry::new();
        for _ in 0..10 {
            let _s = reg.span("hot");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.count, 10);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }

    #[test]
    fn pathological_depth_folds_into_one_bucket() {
        fn recurse(reg: &Registry, depth: usize) {
            if depth == 0 {
                return;
            }
            let _s = reg.span("deep");
            recurse(reg, depth - 1);
        }
        let reg = Registry::new();
        recurse(&reg, 40);
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert_eq!(
            snap.spans.len(),
            MAX_DEPTH + 1,
            "{MAX_DEPTH} real levels plus exactly one fold bucket"
        );
        let fold = snap.spans.iter().find(|s| s.path.ends_with(FOLD)).expect("fold bucket");
        assert_eq!(fold.count, (40 - MAX_DEPTH) as u64, "every over-deep entry aggregates");
        assert_eq!(
            snap.counter("span.truncated"),
            (40 - MAX_DEPTH) as u64,
            "truncation is counted, not silent"
        );
    }

    #[test]
    fn pathological_fanout_folds_new_children() {
        let reg = Registry::new();
        {
            let _parent = reg.span("parent");
            for i in 0..100 {
                let _c = reg.span(format!("child{i:03}"));
            }
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert_eq!(
            snap.spans.len(),
            1 + MAX_CHILDREN + 1,
            "parent, {MAX_CHILDREN} real children, one fold bucket"
        );
        let fold = snap.spans.iter().find(|s| s.path == format!("parent/{FOLD}")).unwrap();
        assert_eq!(fold.count, 100 - MAX_CHILDREN as u64);
        assert_eq!(snap.counter("span.truncated"), 100 - MAX_CHILDREN as u64);
        // An established path keeps aggregating even once the parent
        // is at cap.
        {
            let _parent = reg.span("parent");
            let _c = reg.span("child000");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        let c0 = snap.spans.iter().find(|s| s.path == "parent/child000").unwrap();
        assert_eq!(c0.count, 2);
        assert_eq!(snap.counter("span.truncated"), 100 - MAX_CHILDREN as u64);
    }

    #[test]
    fn sibling_threads_root_their_own_stacks() {
        let reg = Registry::new();
        let _outer = reg.span("main");
        std::thread::scope(|scope| {
            let reg = reg.clone();
            scope.spawn(move || {
                let _worker = reg.span("worker");
            });
        });
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert!(
            snap.spans.iter().any(|s| s.path == "worker"),
            "a span on a fresh thread roots at top level, not under main"
        );
    }
}
