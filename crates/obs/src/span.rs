//! RAII scoped timing spans aggregated into a parent/child tree.
//!
//! A span opened while another span is open *on the same thread*
//! nests under it: the tree key is the `/`-joined path of open span
//! names (`repro/fig4a/pipeline`). Each distinct path aggregates call
//! count, total, min, and max wall time — a profile, not a trace, so
//! memory stays bounded no matter how hot the loop.
//!
//! Spans measure wall time and therefore live only in
//! [`SnapshotMode::Timed`](crate::SnapshotMode::Timed) snapshots; the
//! deterministic mode strips them (see the crate docs for the
//! contract).

use crate::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Aggregated timing for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Times this path was entered.
    pub count: u64,
    /// Total nanoseconds across all entries.
    pub total_ns: u64,
    /// Fastest single entry, nanoseconds.
    pub min_ns: u64,
    /// Slowest single entry, nanoseconds.
    pub max_ns: u64,
}

impl Default for SpanStat {
    fn default() -> SpanStat {
        SpanStat { count: 0, total_ns: 0, min_ns: u64::MAX, max_ns: 0 }
    }
}

impl SpanStat {
    pub(crate) fn record(&mut self, elapsed_ns: u64) {
        self.count += 1;
        self.total_ns += elapsed_ns;
        self.min_ns = self.min_ns.min(elapsed_ns);
        self.max_ns = self.max_ns.max(elapsed_ns);
    }
}

/// An open timing span; dropping it records one observation under its
/// path. Created by [`Registry::span`] or the
/// [`span!`](crate::span!) macro. Guards must drop in LIFO order
/// (which scoped `let` bindings guarantee).
pub struct Span {
    registry: Registry,
    path: String,
    start: Instant,
}

impl Span {
    pub(crate) fn open(registry: Registry, name: String) -> Span {
        let path = STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent_path) => format!("{parent_path}/{name}"),
                None => name,
            };
            stack.push(path.clone());
            path
        });
        Span { registry, path, start: Instant::now() }
    }

    /// The `/`-joined path this span records under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.registry.record_span(&self.path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SnapshotMode;

    #[test]
    fn spans_nest_by_thread_stack() {
        let reg = Registry::new();
        {
            let _outer = reg.span("suite");
            {
                let _inner = reg.span("fig1");
                let _leaf = reg.span("pipeline");
            }
            let _inner2 = reg.span("fig2");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["suite", "suite/fig1", "suite/fig1/pipeline", "suite/fig2"]);
    }

    #[test]
    fn repeated_entries_aggregate() {
        let reg = Registry::new();
        for _ in 0..10 {
            let _s = reg.span("hot");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert_eq!(snap.spans.len(), 1);
        let s = &snap.spans[0];
        assert_eq!(s.count, 10);
        assert!(s.min_ns <= s.max_ns);
        assert!(s.total_ns >= s.max_ns);
    }

    #[test]
    fn sibling_threads_root_their_own_stacks() {
        let reg = Registry::new();
        let _outer = reg.span("main");
        std::thread::scope(|scope| {
            let reg = reg.clone();
            scope.spawn(move || {
                let _worker = reg.span("worker");
            });
        });
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert!(
            snap.spans.iter().any(|s| s.path == "worker"),
            "a span on a fresh thread roots at top level, not under main"
        );
    }
}
