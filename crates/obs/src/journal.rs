//! The run event journal: a bounded lock-free ring of structured
//! events with shard/day/offset provenance.
//!
//! Emission is one `fetch_add` plus one slot publication — no locks on
//! the hot path, no allocation beyond the event itself. The ring is
//! bounded at construction; events past capacity are counted, never
//! silently lost, so a snapshot can always say "and N more". Draining
//! sorts by provenance (kind, shard, day, offset, attempt, detail)
//! rather than arrival order, because arrival order is thread-timing
//! dependent and the journal participates in the deterministic
//! snapshot contract.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// What happened. Ordered so sorted journals group by event class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A supervised shard buffer decode was retried after a fault.
    Retry,
    /// A frame (or buffer) was quarantined after retries exhausted.
    Quarantine,
    /// A frame decoder lost sync and scanned forward to recover.
    Resync,
    /// A store or pipeline recovered state after a crash (stale tmp
    /// sweep, manifest rollback, replay from store).
    CrashRecovery,
    /// The analysis cache was switched to bypass (uncached baseline).
    CacheBypass,
    /// `fsck` moved a damaged file into quarantine.
    FsckQuarantine,
    /// `fsck` adopted an orphaned generation file into the manifest.
    FsckAdopt,
    /// `fsck` salvaged surviving frames out of a damaged day.
    FsckSalvage,
    /// `fsck` applied a repair (rewrote a day, swept a stale file).
    FsckRepair,
    /// A coordinator spawned (or respawned) a shard worker process.
    WorkerSpawn,
    /// A worker's progress heartbeat, observed by the coordinator.
    /// `offset` carries the final beat count seen for that grant.
    WorkerHeartbeat,
    /// The coordinator fenced a new epoch over a dead or wedged
    /// worker's lease and took the shard back.
    LeaseSteal,
    /// The coordinator's post-mortem `fsck` verdict on an orphaned
    /// shard store (`detail` says healthy/repaired).
    FsckVerdict,
    /// A shard exhausted reassignment and was recorded as lost:
    /// coverage degrades, quarantine provenance is written.
    ShardLost,
    /// The observatory published a new epoch snapshot (`offset`
    /// carries the epoch number, `day` the new day count).
    EpochPublish,
    /// A serve query worker panicked mid-query; the request was
    /// answered degraded instead of dropped.
    QueryPanic,
    /// The serve admission queue was full and a request was shed with
    /// an explicit `Overloaded` response.
    LoadShed,
    /// A windowed SLO check breached its declared targets (shed-rate
    /// or p99 burn); `offset` carries the window index, `detail` the
    /// measured-vs-target numbers.
    SloBurn,
}

impl EventKind {
    /// Stable lowercase name used in JSON snapshots.
    pub fn as_str(self) -> &'static str {
        match self {
            EventKind::Retry => "retry",
            EventKind::Quarantine => "quarantine",
            EventKind::Resync => "resync",
            EventKind::CrashRecovery => "crash_recovery",
            EventKind::CacheBypass => "cache_bypass",
            EventKind::FsckQuarantine => "fsck_quarantine",
            EventKind::FsckAdopt => "fsck_adopt",
            EventKind::FsckSalvage => "fsck_salvage",
            EventKind::FsckRepair => "fsck_repair",
            EventKind::WorkerSpawn => "worker_spawn",
            EventKind::WorkerHeartbeat => "worker_heartbeat",
            EventKind::LeaseSteal => "lease_steal",
            EventKind::FsckVerdict => "fsck_verdict",
            EventKind::ShardLost => "shard_lost",
            EventKind::EpochPublish => "epoch_publish",
            EventKind::QueryPanic => "query_panic",
            EventKind::LoadShed => "load_shed",
            EventKind::SloBurn => "slo_burn",
        }
    }
}

/// One structured journal entry. Provenance fields are optional
/// because not every event has a shard (fsck) or a day (engine), but
/// whatever is known travels with the event into the final report.
///
/// Determinism contract: every field must be a function of input data
/// and seeds — no wall-clock timestamps, no thread ids, no absolute
/// paths.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Event {
    /// Event class.
    pub kind: EventKind,
    /// Originating shard, when the event has one.
    pub shard: Option<u32>,
    /// Day index the event concerns, when known.
    pub day: Option<u16>,
    /// Buffer index or byte offset provenance, when known.
    pub offset: Option<u64>,
    /// Attempt number for retry-class events (1-based).
    pub attempt: Option<u32>,
    /// Free-form deterministic detail (reason, counts).
    pub detail: String,
}

impl Event {
    /// A new event of `kind` with no provenance and empty detail.
    pub fn new(kind: EventKind) -> Event {
        Event { kind, shard: None, day: None, offset: None, attempt: None, detail: String::new() }
    }

    /// Attaches shard provenance.
    pub fn shard(mut self, shard: u32) -> Event {
        self.shard = Some(shard);
        self
    }

    /// Attaches day provenance.
    pub fn day(mut self, day: u16) -> Event {
        self.day = Some(day);
        self
    }

    /// Attaches buffer-index / byte-offset provenance.
    pub fn offset(mut self, offset: u64) -> Event {
        self.offset = Some(offset);
        self
    }

    /// Attaches the attempt number (1-based).
    pub fn attempt(mut self, attempt: u32) -> Event {
        self.attempt = Some(attempt);
        self
    }

    /// Attaches a deterministic detail string.
    pub fn detail(mut self, detail: impl Into<String>) -> Event {
        self.detail = detail.into();
        self
    }
}

/// Bounded lock-free event ring. See the module docs.
pub struct Journal {
    slots: Box<[OnceLock<Event>]>,
    next: AtomicUsize,
    dropped: AtomicU64,
}

impl Journal {
    /// A journal holding at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Journal {
        Journal {
            slots: (0..capacity).map(|_| OnceLock::new()).collect(),
            next: AtomicUsize::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Appends `event`; past capacity the event is dropped and
    /// counted.
    pub fn emit(&self, event: Event) {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        match self.slots.get(i) {
            // Each index is claimed by exactly one emitter, so the
            // slot is always vacant.
            Some(slot) => {
                let _ = slot.set(event);
            }
            None => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Events emitted so far (capped at capacity).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Whether nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.next.load(Ordering::Relaxed) == 0
    }

    /// Events dropped past capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copies out all recorded events sorted by provenance, plus the
    /// dropped count. An emitter that claimed a slot but has not yet
    /// published into it is skipped (drain is meant for after the
    /// writers quiesce).
    pub fn drain_sorted(&self) -> (Vec<Event>, u64) {
        let mut events: Vec<Event> =
            self.slots[..self.len()].iter().filter_map(|s| s.get().cloned()).collect();
        events.sort();
        (events, self.dropped())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_sorts_by_provenance_not_arrival() {
        let j = Journal::with_capacity(16);
        j.emit(Event::new(EventKind::Quarantine).shard(2).offset(9));
        j.emit(Event::new(EventKind::Retry).shard(3).attempt(1));
        j.emit(Event::new(EventKind::Retry).shard(0).attempt(2));
        let (events, dropped) = j.drain_sorted();
        assert_eq!(dropped, 0);
        let kinds: Vec<(EventKind, Option<u32>)> =
            events.iter().map(|e| (e.kind, e.shard)).collect();
        assert_eq!(
            kinds,
            vec![
                (EventKind::Retry, Some(0)),
                (EventKind::Retry, Some(3)),
                (EventKind::Quarantine, Some(2)),
            ]
        );
    }

    #[test]
    fn bounded_journal_counts_drops() {
        let j = Journal::with_capacity(2);
        for i in 0..5 {
            j.emit(Event::new(EventKind::Resync).offset(i));
        }
        assert_eq!(j.len(), 2);
        assert_eq!(j.dropped(), 3);
        let (events, dropped) = j.drain_sorted();
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn concurrent_emission_loses_nothing_under_capacity() {
        let j = Journal::with_capacity(1024);
        std::thread::scope(|scope| {
            for t in 0..8u32 {
                let j = &j;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        j.emit(Event::new(EventKind::Retry).shard(t).offset(i));
                    }
                });
            }
        });
        let (events, dropped) = j.drain_sorted();
        assert_eq!(events.len(), 800);
        assert_eq!(dropped, 0);
        // Sorted drain is deterministic regardless of interleaving.
        let mut expect = Vec::new();
        for t in 0..8u32 {
            for i in 0..100u64 {
                expect.push(Event::new(EventKind::Retry).shard(t).offset(i));
            }
        }
        expect.sort();
        assert_eq!(events, expect);
    }
}
