//! Metric primitives: sharded-atomic counters, gauges, fixed-bucket
//! histograms.
//!
//! All three are cheap-clone handles over shared atomics, safe to
//! pre-fetch from a [`Registry`](crate::Registry) and increment from
//! any thread. Counters stripe across cache-line-padded atomics so
//! concurrent writers on different cores do not bounce one line.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

const STRIPES: usize = 8;

/// One cache line per stripe so concurrent increments from different
/// cores never contend on the same line.
#[repr(align(64))]
#[derive(Default)]
struct Stripe(AtomicU64);

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

fn stripe_index() -> usize {
    thread_local! {
        static IDX: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed);
    }
    IDX.with(|i| *i) % STRIPES
}

/// A monotonically increasing sharded-atomic counter.
///
/// Each thread increments its own cache-padded stripe; `get()` sums
/// the stripes. Reads are therefore not a single linearization point,
/// but counters are only read at snapshot time, after the writers
/// have quiesced.
#[derive(Clone, Default)]
pub struct Counter {
    stripes: Arc<[Stripe; STRIPES]>,
}

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// The sum across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A last-write-wins signed gauge (dataset sizes, generation numbers,
/// queue depths).
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets are inclusive upper bounds in ascending order, with an
/// implicit overflow bucket past the last bound. Bounds are fixed at
/// registration, which keeps `observe` a bounded scan plus one atomic
/// add — no allocation, no locking.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

struct HistogramInner {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>,
    exemplars: Vec<Mutex<ExemplarRing>>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// Recent trace ids per bucket, kept by [`Histogram::observe_traced`].
pub const EXEMPLARS_PER_BUCKET: usize = 4;

/// A bounded ring of the most recent trace ids observed into one
/// bucket: the link from a tail-latency bucket back to the trace that
/// explains it. Exemplars carry wall-time provenance (they name which
/// *run* of a request landed where) and therefore render only in
/// timed snapshots.
#[derive(Default)]
struct ExemplarRing {
    ids: Vec<u64>,
    next: usize,
}

impl ExemplarRing {
    fn push(&mut self, id: u64) {
        if self.ids.len() < EXEMPLARS_PER_BUCKET {
            self.ids.push(id);
        } else {
            self.ids[self.next] = id;
        }
        self.next = (self.next + 1) % EXEMPLARS_PER_BUCKET;
    }

    /// Oldest-to-newest copy of the ring.
    fn snapshot(&self) -> Vec<u64> {
        if self.ids.len() < EXEMPLARS_PER_BUCKET {
            self.ids.clone()
        } else {
            (0..EXEMPLARS_PER_BUCKET)
                .map(|i| self.ids[(self.next + i) % EXEMPLARS_PER_BUCKET])
                .collect()
        }
    }
}

/// Doubling bounds from 1 to ~1M, a serviceable default for counts
/// and sizes spanning a few orders of magnitude.
pub const DECADE_BOUNDS: &[u64] =
    &[1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096, 16384, 65536, 262144, 1048576];

impl Histogram {
    /// A histogram with the given inclusive upper bounds. Unsorted or
    /// duplicate bounds are normalized.
    pub fn new(bounds: &[u64]) -> Histogram {
        let mut bounds = bounds.to_vec();
        bounds.sort_unstable();
        bounds.dedup();
        let buckets: Vec<AtomicU64> = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        let exemplars = (0..buckets.len()).map(|_| Mutex::new(ExemplarRing::default())).collect();
        Histogram {
            inner: Arc::new(HistogramInner {
                bounds,
                buckets,
                exemplars,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let i = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records one observation and remembers `trace` in the landing
    /// bucket's exemplar ring, so the bucket can name a recent trace
    /// that landed in it. An absent trace id observes like
    /// [`observe`](Histogram::observe).
    pub fn observe_traced(&self, v: u64, trace: crate::TraceId) {
        let i = self.inner.bounds.partition_point(|&b| b < v);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
        if !trace.is_none() {
            self.inner.exemplars[i].lock().unwrap().push(trace.0);
        }
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// Bucket-interpolated quantile estimate (`q` in `0.0..=1.0`).
    ///
    /// Walks the cumulative bucket counts to the bucket holding the
    /// rank `⌈q·count⌉` observation and interpolates linearly inside
    /// its `(lower, upper]` value range, so the estimate's error is
    /// bounded by the bucket width. Observations past the last bound
    /// live in the open overflow bucket, whose upper edge is unknown —
    /// a quantile landing there saturates to the last bound. Returns
    /// 0.0 on an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }

    /// A frozen copy of the histogram's state, exemplar rings
    /// included (oldest-to-newest per bucket).
    pub fn snapshot(&self) -> crate::snapshot::HistogramSnapshot {
        crate::snapshot::HistogramSnapshot {
            bounds: self.inner.bounds.clone(),
            buckets: self.inner.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            exemplars: self.inner.exemplars.iter().map(|e| e.lock().unwrap().snapshot()).collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = Counter::default();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = c.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    c.add(500);
                });
            }
        });
        assert_eq!(c.get(), 8 * 1500);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        assert_eq!(g.get(), 0);
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_routes_to_inclusive_upper_bounds() {
        let h = Histogram::new(&[10, 100, 1000]);
        for v in [0, 10, 11, 100, 500, 1000, 1001, 9999] {
            h.observe(v);
        }
        let snap = h.snapshot();
        // <=10: {0, 10}; <=100: {11, 100}; <=1000: {500, 1000};
        // overflow: {1001, 9999}.
        assert_eq!(snap.buckets, vec![2, 2, 2, 2]);
        assert_eq!(snap.count, 8);
        assert_eq!(snap.sum, 10 + 11 + 100 + 500 + 1000 + 1001 + 9999);
    }

    #[test]
    fn histogram_normalizes_bounds() {
        let h = Histogram::new(&[100, 10, 100, 1]);
        h.observe(5);
        let snap = h.snapshot();
        assert_eq!(snap.bounds, vec![1, 10, 100]);
        assert_eq!(snap.buckets, vec![0, 1, 0, 0]);
    }

    #[test]
    fn exemplar_rings_keep_the_most_recent_trace_ids() {
        use crate::TraceId;
        let h = Histogram::new(&[10, 100]);
        h.observe_traced(5, TraceId::NONE); // untraced: counted, no exemplar
        for id in 1..=6u64 {
            h.observe_traced(50, TraceId(id));
        }
        h.observe_traced(5000, TraceId(99));
        let snap = h.snapshot();
        assert_eq!(snap.exemplars[0], Vec::<u64>::new());
        assert_eq!(snap.exemplars[1], vec![3, 4, 5, 6], "ring keeps the newest, oldest first");
        assert_eq!(snap.exemplars[2], vec![99], "overflow bucket has its own ring");
        assert_eq!(snap.count, 8, "traced and untraced observations count alike");
    }

    #[test]
    fn quantile_is_zero_on_empty() {
        let h = Histogram::new(DECADE_BOUNDS);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.quantile(0.99), 0.0);
    }

    #[test]
    fn quantile_interpolates_within_buckets() {
        // 100 observations uniform over 1..=100 against bounds
        // {10, 100}: p50 lands mid-way through the (10, 100] bucket.
        let h = Histogram::new(&[10, 100]);
        for v in 1..=100 {
            h.observe(v);
        }
        let p50 = h.quantile(0.5);
        // Rank 50 is the 40th of 90 observations in (10, 100]:
        // 10 + (40/90)·90 = 50.
        assert!((p50 - 50.0).abs() < 1.0, "p50 {p50}");
        let p05 = h.quantile(0.05);
        // Rank 5 of 10 in (0, 10]: 0 + (5/10)·10 = 5.
        assert!((p05 - 5.0).abs() < 1.0, "p05 {p05}");
        // q = 1.0 reaches the top of the last populated bucket.
        assert!((h.quantile(1.0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantile_saturates_in_the_overflow_bucket() {
        let h = Histogram::new(&[10]);
        h.observe(5);
        h.observe(1_000_000); // overflow: upper edge unknown
        assert_eq!(h.quantile(0.99), 10.0, "overflow quantiles clamp to the last bound");
        // Bucket resolution: all we know of the low observation is
        // "in (0, 10]", so the estimate lands at the bucket edge.
        assert!((h.quantile(0.25) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn single_bucket_p50_p99_ordering() {
        let h = Histogram::new(DECADE_BOUNDS);
        for _ in 0..99 {
            h.observe(3);
        }
        h.observe(700_000);
        let (p50, p99) = (h.quantile(0.5), h.quantile(0.99));
        assert!(p50 <= 4.0, "p50 {p50} must sit in the low bucket");
        assert!(p99 <= p50.max(p99), "quantiles are monotone");
        assert!(h.quantile(0.995) > 262_144.0, "tail observation pulls the extreme quantile up");
    }
}
