//! A minimal JSON parser and structural schema checker.
//!
//! The workspace bans external dependencies, but the observability
//! plane needs two JSON consumers: golden tests that want to assert
//! on parsed snapshot structure rather than raw bytes, and the CI
//! `metrics-golden` job that validates a snapshot against a
//! checked-in schema (`inspect metrics-check`). This module is the
//! smallest implementation that serves both — a recursive-descent
//! parser over the full JSON grammar and a checker for the JSON
//! Schema subset the snapshot schema uses (`type`, `properties`,
//! `required`, `items`, `additionalProperties`, `enum`).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Object member order is preserved (snapshot
/// key order is part of the format).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; snapshot values are integers well
    /// within `f64`'s exact range).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// The object members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Member `key` of this object, if present.
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The JSON type name used in schema errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A parse failure with byte offset context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage rejected).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after document"));
    }
    Ok(value)
}

fn err(offset: usize, message: impl Into<String>) -> ParseError {
    ParseError { offset, message: message.into() }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_lit(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, ParseError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(err(*pos, format!("expected `{lit}`")))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii slice");
    text.parse::<f64>().map(Json::Num).map_err(|_| err(start, format!("bad number `{text}`")))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, ParseError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "non-ascii \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "bad \\u escape"))?;
                        // Snapshot strings never contain surrogate
                        // pairs; map unpaired surrogates to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) if b < 0x80 => {
                out.push(b as char);
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8: copy the whole scalar.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]`")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, ParseError> {
    *pos += 1; // '{'
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected member name"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:`"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}`")),
        }
    }
}

/// Checks `value` against a JSON-Schema-subset `schema`.
///
/// Supported keywords: `type` (including `"integer"`), `properties`,
/// `required`, `items`, `additionalProperties` (boolean or schema),
/// `enum` (strings). Errors carry a `$`-rooted path to the offending
/// node. Unknown keywords are ignored, as JSON Schema specifies.
pub fn check_schema(value: &Json, schema: &Json) -> Result<(), String> {
    check_at(value, schema, "$")
}

fn check_at(value: &Json, schema: &Json, path: &str) -> Result<(), String> {
    if let Some(ty) = schema.get("type").and_then(Json::as_str) {
        let ok = match ty {
            "integer" => {
                matches!(value, Json::Num(n) if n.fract() == 0.0)
            }
            other => value.type_name() == other,
        };
        if !ok {
            return Err(format!("{path}: expected {ty}, found {}", value.type_name()));
        }
    }
    if let Some(allowed) = schema.get("enum").and_then(Json::as_array) {
        if !allowed.iter().any(|a| a == value) {
            return Err(format!("{path}: value not in enum"));
        }
    }
    if let Some(required) = schema.get("required").and_then(Json::as_array) {
        for name in required.iter().filter_map(Json::as_str) {
            if value.get(name).is_none() {
                return Err(format!("{path}: missing required member `{name}`"));
            }
        }
    }
    let properties: BTreeMap<&str, &Json> = schema
        .get("properties")
        .and_then(Json::as_object)
        .map(|members| members.iter().map(|(k, v)| (k.as_str(), v)).collect())
        .unwrap_or_default();
    if let Some(members) = value.as_object() {
        for (key, member) in members {
            let child_path = format!("{path}.{key}");
            match properties.get(key.as_str()) {
                Some(sub) => check_at(member, sub, &child_path)?,
                None => match schema.get("additionalProperties") {
                    Some(Json::Bool(false)) => {
                        return Err(format!("{path}: unexpected member `{key}`"));
                    }
                    Some(sub @ Json::Obj(_)) => check_at(member, sub, &child_path)?,
                    _ => {}
                },
            }
        }
    }
    if let (Some(items), Some(sub)) = (value.as_array(), schema.get("items")) {
        for (i, item) in items.iter().enumerate() {
            check_at(item, sub, &format!("{path}[{i}]"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3], "b": {"c": null, "d": "x\ny"}, "e": true}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("e"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[2].as_f64(), Some(-3.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn object_order_is_preserved() {
        let v = parse(r#"{"z": 1, "a": 2}"#).unwrap();
        let keys: Vec<&str> = v.as_object().unwrap().iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, vec!["z", "a"]);
    }

    #[test]
    fn schema_checks_types_required_and_items() {
        let schema = parse(
            r#"{
                "type": "object",
                "required": ["mode", "counters"],
                "properties": {
                    "mode": {"type": "string", "enum": ["deterministic", "timed"]},
                    "counters": {"type": "object", "additionalProperties": {"type": "integer"}},
                    "events": {"type": "array", "items": {"type": "object", "required": ["kind"]}}
                },
                "additionalProperties": false
            }"#,
        )
        .unwrap();
        let good = parse(
            r#"{"mode": "deterministic", "counters": {"a.b": 3}, "events": [{"kind": "retry"}]}"#,
        )
        .unwrap();
        check_schema(&good, &schema).unwrap();

        let bad_mode = parse(r#"{"mode": "wrong", "counters": {}}"#).unwrap();
        assert!(check_schema(&bad_mode, &schema).unwrap_err().contains("enum"));

        let missing = parse(r#"{"mode": "timed"}"#).unwrap();
        assert!(check_schema(&missing, &schema).unwrap_err().contains("counters"));

        let fractional = parse(r#"{"mode": "timed", "counters": {"x": 1.5}}"#).unwrap();
        assert!(check_schema(&fractional, &schema).unwrap_err().contains("integer"));

        let extra = parse(r#"{"mode": "timed", "counters": {}, "zzz": 1}"#).unwrap();
        assert!(check_schema(&extra, &schema).unwrap_err().contains("zzz"));

        let bad_item = parse(r#"{"mode": "timed", "counters": {}, "events": [{}]}"#).unwrap();
        assert!(check_schema(&bad_item, &schema).unwrap_err().contains("kind"));
    }
}
