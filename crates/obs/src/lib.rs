//! Unified observability plane for the ipactive workspace.
//!
//! Every subsystem of the reproduction — the sharded pipeline, the
//! self-healing supervisor, the crash-consistent log store, and the
//! memoized analysis engine — answers the same three operator
//! questions through this crate:
//!
//! 1. **What did the run do?** — the [`Registry`] holds sharded-atomic
//!    [`Counter`]s, [`Gauge`]s, and fixed-bucket [`Histogram`]s under
//!    hierarchical dotted names (`pipeline.shard.3.records`,
//!    `store.fsync`, `engine.cache.hit`).
//! 2. **Where did the time go?** — RAII scoped spans
//!    ([`Registry::span`], or the [`span!`] macro) aggregate wall time
//!    per stage into a parent/child tree with call counts and
//!    min/max/total, rendered as an indented profile.
//! 3. **What got dropped?** — a bounded lock-free [`Journal`] of
//!    structured [`Event`]s (retry, quarantine, resync,
//!    crash-recovery, cache-bypass, fsck verdicts) with
//!    shard/day/offset provenance.
//!
//! All three drain into one [`Snapshot`], renderable as a sorted JSON
//! document. The **determinism contract**: a
//! [`SnapshotMode::Deterministic`] snapshot contains only quantities
//! that are functions of the input data and seeds — never of thread
//! scheduling or wall time — so its JSON is byte-identical run-to-run
//! and across worker counts. Wall time lives exclusively in the span
//! tree, which a deterministic snapshot strips.
//!
//! The crate is dependency-free so even `logfmt` at the bottom of the
//! workspace stack can instrument itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod metrics;
pub mod snapshot;
pub mod span;
pub mod trace;

pub use journal::{Event, EventKind, Journal};
pub use metrics::{Counter, Gauge, Histogram};
pub use snapshot::{HistogramSnapshot, Snapshot, SnapshotMode, SpanSnapshot};
pub use span::{Span, SpanStat};
pub use trace::{SpanRecord, TraceContext, TraceId};

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Records per second, guarding the zero-elapsed case.
///
/// The single shared rate helper for every renderer in the workspace
/// (pipeline reports, supervised summaries, snapshot rendering): a
/// zero or sub-resolution elapsed time yields `0.0`, never `inf` or
/// `NaN`.
pub fn rate(count: u64, elapsed: std::time::Duration) -> f64 {
    let secs = elapsed.as_secs_f64();
    if secs > 0.0 {
        count as f64 / secs
    } else {
        0.0
    }
}

/// One observability domain: a namespace of metrics, a span tree, and
/// an event journal that snapshot together.
///
/// Cloning is cheap (an `Arc` bump) and clones share state, so a
/// registry can be handed across threads and layers freely. Handles
/// returned by [`counter`](Registry::counter) /
/// [`gauge`](Registry::gauge) / [`histogram`](Registry::histogram)
/// are themselves cheap clones that bypass the name lookup — fetch
/// them once outside a hot loop.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<Inner>,
}

struct Inner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    traces: Mutex<trace::TraceStore>,
    journal: Journal,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("counters", &self.inner.counters.lock().unwrap().len())
            .field("events", &self.inner.journal.len())
            .finish_non_exhaustive()
    }
}

impl Registry {
    /// A fresh registry with the default journal capacity (65 536
    /// events).
    pub fn new() -> Registry {
        Registry::with_journal_capacity(1 << 16)
    }

    /// A fresh registry whose journal holds at most `capacity` events;
    /// later events are counted as dropped, never reallocated.
    pub fn with_journal_capacity(capacity: usize) -> Registry {
        Registry {
            inner: Arc::new(Inner {
                counters: Mutex::new(BTreeMap::new()),
                gauges: Mutex::new(BTreeMap::new()),
                histograms: Mutex::new(BTreeMap::new()),
                spans: Mutex::new(BTreeMap::new()),
                traces: Mutex::new(trace::TraceStore::default()),
                journal: Journal::with_capacity(capacity),
            }),
        }
    }

    /// The counter registered under `name`, creating it on first use.
    pub fn counter(&self, name: impl Into<String>) -> Counter {
        let mut map = self.inner.counters.lock().unwrap();
        map.entry(name.into()).or_default().clone()
    }

    /// The gauge registered under `name`, creating it on first use.
    pub fn gauge(&self, name: impl Into<String>) -> Gauge {
        let mut map = self.inner.gauges.lock().unwrap();
        map.entry(name.into()).or_default().clone()
    }

    /// The histogram registered under `name`, creating it with the
    /// given inclusive upper bucket bounds on first use (an implicit
    /// overflow bucket catches everything beyond the last bound).
    /// Bounds passed for an already-registered name are ignored.
    pub fn histogram(&self, name: impl Into<String>, bounds: &[u64]) -> Histogram {
        let mut map = self.inner.histograms.lock().unwrap();
        map.entry(name.into()).or_insert_with(|| Histogram::new(bounds)).clone()
    }

    /// Appends `event` to the run journal (drop-counted past
    /// capacity).
    pub fn emit(&self, event: Event) {
        self.inner.journal.emit(event);
    }

    /// The registry's event journal.
    pub fn journal(&self) -> &Journal {
        &self.inner.journal
    }

    /// Opens an RAII timing span named `name`, nested under any span
    /// already open on this thread. Dropping the guard records one
    /// observation into the span tree.
    pub fn span(&self, name: impl Into<String>) -> Span {
        Span::open(self.clone(), name.into())
    }

    pub(crate) fn record_span(&self, path: &str, elapsed_ns: u64) {
        let mut truncated = false;
        {
            let mut spans = self.inner.spans.lock().unwrap();
            // A *new* path whose parent already carries MAX_CHILDREN
            // direct children folds into the parent's `...` bucket;
            // existing paths keep aggregating normally, so the scan
            // only runs on first sight of a path.
            let key = if spans.contains_key(path) {
                path.to_string()
            } else if let Some((parent, leaf)) = path.rsplit_once('/') {
                let prefix = format!("{parent}/");
                let children = spans
                    .range(prefix.clone()..)
                    .take_while(|(k, _)| k.starts_with(&prefix))
                    .filter(|(k, _)| !k[prefix.len()..].contains('/'))
                    .count();
                if leaf != span::FOLD && children >= span::MAX_CHILDREN {
                    truncated = true;
                    format!("{parent}/{}", span::FOLD)
                } else {
                    path.to_string()
                }
            } else {
                path.to_string()
            };
            spans.entry(key).or_default().record(elapsed_ns);
        }
        if truncated {
            self.counter("span.truncated").inc();
        }
    }

    /// Records one structural [`SpanRecord`] under `ctx` in the trace
    /// store and returns the child context (the new span's position),
    /// for handing to deeper stages or across a process boundary.
    ///
    /// An absent context passes through untouched; a capped record
    /// bumps `trace.truncated` / `trace.dropped` and returns `ctx`
    /// unchanged — tracing degrades to counters, never to unbounded
    /// memory.
    pub fn trace_span(
        &self,
        ctx: TraceContext,
        name: impl Into<String>,
        detail: impl Into<String>,
    ) -> TraceContext {
        if ctx.is_none() {
            return ctx;
        }
        let outcome = self.inner.traces.lock().unwrap().record(ctx, name, detail);
        match outcome {
            trace::RecordOutcome::Recorded(seq) => TraceContext { trace: ctx.trace, span: seq },
            trace::RecordOutcome::SpanCapped => {
                self.counter("trace.truncated").inc();
                ctx
            }
            trace::RecordOutcome::TraceCapped => {
                self.counter("trace.dropped").inc();
                ctx
            }
        }
    }

    /// Merges externally exported spans (e.g. a worker process's trace
    /// file) into trace `trace`; idempotent by sequence number.
    /// Returns how many spans were added.
    pub fn import_trace(&self, trace: u64, spans: Vec<SpanRecord>) -> usize {
        self.inner.traces.lock().unwrap().import(trace, spans)
    }

    /// The spans recorded under `trace`, in sequence order.
    pub fn trace_spans(&self, trace: u64) -> Option<Vec<SpanRecord>> {
        self.inner.traces.lock().unwrap().spans(trace).map(<[SpanRecord]>::to_vec)
    }

    /// All recorded trace ids, ascending.
    pub fn trace_ids(&self) -> Vec<u64> {
        self.inner.traces.lock().unwrap().ids()
    }

    /// One trace as a deterministic JSON document, if recorded.
    pub fn trace_json(&self, trace: u64) -> Option<String> {
        self.inner.traces.lock().unwrap().trace_json(trace)
    }

    /// Every recorded trace as one deterministic JSON document.
    pub fn traces_json(&self) -> String {
        self.inner.traces.lock().unwrap().traces_json()
    }

    /// Drains the registry into an immutable [`Snapshot`].
    ///
    /// [`SnapshotMode::Deterministic`] strips the span tree (the only
    /// wall-time-bearing section) so the rendered JSON is byte-stable
    /// across runs and worker counts; [`SnapshotMode::Timed`] keeps
    /// it. Snapshotting does not reset anything — it is a read.
    pub fn snapshot(&self, mode: SnapshotMode) -> Snapshot {
        let counters = self
            .inner
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .inner
            .gauges
            .lock()
            .unwrap()
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .inner
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        let spans = match mode {
            SnapshotMode::Deterministic => Vec::new(),
            SnapshotMode::Timed => self
                .inner
                .spans
                .lock()
                .unwrap()
                .iter()
                .map(|(path, stat)| SpanSnapshot {
                    path: path.clone(),
                    count: stat.count,
                    total_ns: stat.total_ns,
                    min_ns: stat.min_ns,
                    max_ns: stat.max_ns,
                })
                .collect(),
        };
        let (events, events_dropped) = self.inner.journal.drain_sorted();
        Snapshot { mode, counters, gauges, histograms, events, events_dropped, spans }
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide default registry, for call sites with no handle
/// of their own (and the one-argument form of [`span!`]). Layers that
/// need isolation — differential tests, one-registry-per-run CLIs —
/// should carry an explicit [`Registry`] instead.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Opens an RAII timing span: `span!("decode_shard")` on the global
/// registry, `span!(reg, "decode_shard")` on an explicit one. Bind
/// the guard (`let _span = ...`) so it lives to the end of the scope.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($reg:expr, $name:expr) => {
        ($reg).span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn rate_guards_zero_elapsed() {
        assert_eq!(rate(1000, Duration::ZERO), 0.0);
        assert!(rate(0, Duration::ZERO) == 0.0);
        let r = rate(100, Duration::from_secs(2));
        assert!((r - 50.0).abs() < 1e-9);
        assert!(rate(u64::MAX, Duration::from_nanos(1)).is_finite());
    }

    #[test]
    fn handles_share_state_with_the_registry() {
        let reg = Registry::new();
        let c = reg.counter("pipeline.shard.0.records");
        c.add(41);
        reg.counter("pipeline.shard.0.records").inc();
        assert_eq!(c.get(), 42);
        let g = reg.gauge("engine.days");
        g.set(28);
        assert_eq!(reg.gauge("engine.days").get(), 28);
    }

    #[test]
    fn snapshot_orders_names_lexicographically() {
        let reg = Registry::new();
        reg.counter("z.last").inc();
        reg.counter("a.first").inc();
        reg.counter("m.middle").inc();
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        let names: Vec<&str> = snap.counters.keys().map(String::as_str).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn deterministic_snapshot_is_byte_identical_across_thread_counts() {
        let run = |threads: usize| -> String {
            let reg = Registry::new();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let reg = reg.clone();
                    scope.spawn(move || {
                        let c = reg.counter("work.items");
                        // Each thread count splits the same 1200 total
                        // increments differently.
                        for _ in 0..(1200 / threads) {
                            c.inc();
                        }
                        let _guard = reg.span("work");
                        reg.emit(
                            Event::new(EventKind::Retry).shard(t as u32).detail("transient"),
                        );
                    });
                }
            });
            // Same four events regardless of which threads existed.
            for t in threads..4 {
                reg.emit(Event::new(EventKind::Retry).shard(t as u32).detail("transient"));
            }
            reg.snapshot(SnapshotMode::Deterministic).to_json()
        };
        let one = run(1);
        assert_eq!(one, run(2));
        assert_eq!(one, run(4));
        assert!(!one.contains("\"spans\": ["), "deterministic mode must strip spans");
    }

    #[test]
    fn trace_spans_thread_contexts_through_the_registry() {
        let reg = Registry::new();
        let trace = TraceId::mint(7, 0);
        let root = reg.trace_span(TraceContext::root(trace), "client.request", "id 0");
        assert_eq!(root.span, 1);
        let child = reg.trace_span(root, "serve.admission", "day_window");
        assert_eq!(child.span, 2);
        assert_eq!(
            reg.trace_span(TraceContext::NONE, "ignored", ""),
            TraceContext::NONE,
            "untraced requests pass through"
        );
        let doc = reg.trace_json(trace.0).unwrap();
        assert!(doc.contains("serve.admission"));
        assert_eq!(reg.trace_ids(), vec![trace.0]);
        // Trace records live outside snapshots: the deterministic
        // metrics document is unchanged by recording them.
        let json = reg.snapshot(SnapshotMode::Deterministic).to_json();
        assert!(!json.contains("client.request"));
    }

    #[test]
    fn global_registry_and_macro_forms_agree() {
        {
            let _a = span!("macro_global");
        }
        let reg = Registry::new();
        {
            let _b = span!(&reg, "macro_explicit");
        }
        let snap = reg.snapshot(SnapshotMode::Timed);
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].path, "macro_explicit");
        let gsnap = global().snapshot(SnapshotMode::Timed);
        assert!(gsnap.spans.iter().any(|s| s.path == "macro_global"));
    }
}
