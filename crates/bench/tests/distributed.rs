//! Process-level crash harness: real workers, real `kill -9`.
//!
//! These tests drive [`ipactive_coord::run_processes`] against the
//! actual `inspect` binary's `worker` mode — separate OS processes
//! committing leased store pairs on the real filesystem — and murder
//! scheduled victims with genuine SIGKILL. The contract under test is
//! the repo's distributed-collection headline:
//!
//! > For any seeded kill schedule, the merged dataset is either
//! > bit-identical to the undisturbed (in-process) build, or
//! > coverage-honest about exactly the shards that were lost —
//! > deterministically.
//!
//! No wall-clock assertion anywhere: kills trigger on worker-written
//! marker files, stalls on heartbeat *stagnation* (poll counts, not
//! deadlines), so the suite cannot flake on a slow machine.

use ipactive_cdnsim::{shard_of, RetryPolicy, Universe, UniverseConfig};
use ipactive_coord::{
    run_processes, shard_dir, CoordConfig, DistributedOutcome, InjectionPoint, KillMode, KillPlan,
    KillSpec,
};
use ipactive_obs::{EventKind, Registry, SnapshotMode};
use std::path::PathBuf;

const SEED: u64 = 2015;

fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_inspect").to_string(), "worker".to_string()]
}

fn extra_args() -> Vec<String> {
    vec!["--seed".into(), SEED.to_string(), "--scale".into(), "tiny".into()]
}

fn fixture_root(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ipactive-dist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn cfg(root: PathBuf, shards: usize, jobs: usize) -> CoordConfig {
    let mut cfg = CoordConfig::new(UniverseConfig::tiny(SEED), root, shards, 2);
    cfg.jobs = jobs;
    cfg
}

fn run(tag: &str, shards: usize, jobs: usize, plan: &KillPlan) -> (DistributedOutcome, Registry) {
    let root = fixture_root(tag);
    let registry = Registry::new();
    let out = run_processes(&cfg(root.clone(), shards, jobs), plan, &worker_cmd(), &extra_args(), &registry)
        .expect("distributed run failed");
    let _ = std::fs::remove_dir_all(&root);
    (out, registry)
}

fn event_counts(registry: &Registry) -> Vec<(String, usize)> {
    let snap = registry.snapshot(SnapshotMode::Deterministic);
    [
        EventKind::WorkerSpawn,
        EventKind::WorkerHeartbeat,
        EventKind::LeaseSteal,
        EventKind::FsckVerdict,
        EventKind::ShardLost,
    ]
    .into_iter()
    .map(|k| (k.as_str().to_string(), snap.events_of(k).count()))
    .collect()
}

/// The CI kill matrix, in-tree: {crash-early, crash-mid-commit,
/// stall} victims are SIGKILLed at their announced pause points (or
/// wedge-killed on beat stagnation), healed by regrant, and the
/// merged result must be bit-identical to the direct in-process
/// build — same blocks, same counts, full coverage.
#[test]
fn kill_matrix_heals_to_the_in_process_datasets() {
    let universe = Universe::generate(UniverseConfig::tiny(SEED));
    let ref_daily = universe.build_daily();
    let ref_weekly = universe.build_weekly();

    let matrix: [(&str, KillSpec); 3] = [
        ("early", KillSpec {
            shard: 1,
            attempt: 0,
            point: InjectionPoint::Early,
            mode: KillMode::Kill,
        }),
        ("midcommit", KillSpec {
            shard: 1,
            attempt: 0,
            point: InjectionPoint::MidCommit,
            mode: KillMode::Kill,
        }),
        ("stall", KillSpec {
            shard: 1,
            attempt: 0,
            point: InjectionPoint::PreCommit,
            mode: KillMode::Stall,
        }),
    ];
    for (tag, spec) in matrix {
        let plan = KillPlan::none().with(spec);
        let (out, reg) = run(&format!("matrix-{tag}"), 2, 2, &plan);
        assert!(out.lost_shards.is_empty(), "{tag}: shard lost");
        assert_eq!(out.daily, ref_daily, "{tag}: daily diverged from in-process build");
        assert_eq!(out.weekly, ref_weekly, "{tag}: weekly diverged from in-process build");
        assert!(out.daily.coverage.as_ref().unwrap().is_complete(), "{tag}");
        assert!(out.weekly.coverage.as_ref().unwrap().is_complete(), "{tag}");
        assert_eq!(out.shard_reports[1].grants, 2, "{tag}: expected exactly one regrant");
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        let steals: Vec<_> = snap.events_of(EventKind::LeaseSteal).collect();
        assert_eq!(steals.len(), 1, "{tag}");
        let want = match spec.mode {
            KillMode::Kill => "holder exited",
            KillMode::Stall => "heartbeat stalled",
        };
        assert_eq!(steals[0].detail, want, "{tag}");
        assert_eq!(snap.events_of(EventKind::FsckVerdict).count(), 2, "{tag}");
    }
}

/// Retry exhaustion in real processes: a shard whose every grant is
/// SIGKILLed ends as honest, first-class loss — zeroed coverage rows
/// for exactly that shard, a `lost.why` sidecar, a `shard_lost`
/// journal event — while the surviving shard's blocks are complete
/// and correct.
#[test]
fn permanently_killed_shard_becomes_honest_coverage_loss() {
    let root = fixture_root("permanent");
    let registry = Registry::new();
    let mut cfg = cfg(root.clone(), 2, 2);
    cfg.retry = RetryPolicy {
        max_retries: 1,
        ..RetryPolicy::instant(1)
    };
    let plan = KillPlan::none().permanent(0, InjectionPoint::PreCommit);
    let out = run_processes(&cfg, &plan, &worker_cmd(), &extra_args(), &registry)
        .expect("distributed run failed");

    assert_eq!(out.lost_shards, vec![0]);
    assert_eq!(out.shard_reports[0].grants, 2, "initial grant + one retry");
    assert!(out.shard_reports[0].lost);
    let cov = out.daily.coverage.as_ref().unwrap();
    assert_eq!(cov.degraded_shards(), vec![0], "exactly the killed shard is degraded");
    assert_eq!(out.weekly.coverage.as_ref().unwrap().degraded_shards(), vec![0]);
    // Every surviving block belongs to the surviving shard: the loss
    // removed shard 0's partition wholesale, nothing else.
    let universe = Universe::generate(UniverseConfig::tiny(SEED));
    let ref_daily = universe.build_daily();
    assert!(!out.daily.blocks.is_empty(), "surviving shard contributed data");
    for rec in &out.daily.blocks {
        assert_eq!(shard_of(rec.block, 2), 1, "block {} from the lost shard leaked", rec.block);
    }
    let expect_survivors =
        ref_daily.blocks.iter().filter(|r| shard_of(r.block, 2) == 1).count();
    assert_eq!(out.daily.blocks.len(), expect_survivors, "survivor partition incomplete");

    let why = std::fs::read_to_string(shard_dir(&root, 0).join("quarantine/lost.why"))
        .expect("lost.why sidecar");
    assert_eq!(why, "shard 0000 abandoned after 2 grants: retries exhausted\n");
    let snap = registry.snapshot(SnapshotMode::Deterministic);
    assert_eq!(snap.events_of(EventKind::ShardLost).count(), 1);
    let _ = std::fs::remove_dir_all(&root);
}

/// Coordinator determinism (the flake-proofing contract): the same
/// seed and kill schedule produce identical merged datasets, coverage
/// grids, per-shard ledgers, and journal event counts — across
/// reruns AND across `jobs = 1` vs `jobs = 4`.
#[test]
fn same_seed_and_kill_schedule_is_deterministic_across_reruns_and_jobs() {
    let plan = KillPlan::none()
        .with(KillSpec {
            shard: 1,
            attempt: 0,
            point: InjectionPoint::MidCommit,
            mode: KillMode::Kill,
        })
        .with(KillSpec {
            shard: 2,
            attempt: 0,
            point: InjectionPoint::Early,
            mode: KillMode::Stall,
        });
    let runs: Vec<(DistributedOutcome, Registry)> = [("det-a", 1), ("det-b", 1), ("det-c", 4)]
        .into_iter()
        .map(|(tag, jobs)| run(tag, 4, jobs, &plan))
        .collect();
    let (base, base_reg) = &runs[0];
    assert!(base.lost_shards.is_empty());
    assert_eq!(base.shard_reports[1].grants, 2);
    assert_eq!(base.shard_reports[2].grants, 2);
    for (out, reg) in &runs[1..] {
        assert_eq!(out.daily, base.daily, "merged daily dataset diverged");
        assert_eq!(out.weekly, base.weekly, "merged weekly dataset diverged");
        assert_eq!(out.daily.coverage, base.daily.coverage, "daily coverage grid diverged");
        assert_eq!(out.weekly.coverage, base.weekly.coverage, "weekly coverage grid diverged");
        assert_eq!(out.shard_reports, base.shard_reports, "per-shard ledger diverged");
        assert_eq!(out.render(), base.render(), "outcome render diverged");
        assert_eq!(event_counts(reg), event_counts(base_reg), "journal event counts diverged");
    }
}
