//! Golden-file test for the observability plane's metrics snapshot.
//!
//! Drives the real `repro` binary with a pinned seed, topology, and
//! fault count, then diffs the deterministic metrics snapshot
//! byte-for-byte against the committed golden file and validates it
//! against the checked-in schema — the same contract the CI
//! `metrics-golden` job enforces.
//!
//! If an intentional change to the metric namespace or the snapshot
//! format moves the output, regenerate the golden with:
//!
//! ```text
//! target/debug/repro fig2a --scale tiny --seed 2015 --workers 2 --collectors 2 \
//!     --faults 3 --metrics-deterministic \
//!     --metrics-out crates/bench/tests/golden/metrics_snapshot.json
//! ```

use std::path::PathBuf;
use std::process::Command;

const GOLDEN: &str = include_str!("golden/metrics_snapshot.json");
const SCHEMA: &str = include_str!("golden/metrics_schema.json");

/// The pinned run the golden file was generated from.
const PINNED: &[&str] = &[
    "fig2a", "--scale", "tiny", "--seed", "2015", "--workers", "2", "--collectors", "2",
    "--faults", "3",
];

fn snapshot_path(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ipactive-metrics-{tag}-{}.json", std::process::id()))
}

fn run_repro(extra: &[&str]) -> String {
    let path = snapshot_path(extra.first().unwrap_or(&"t"));
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(PINNED)
        .args(extra)
        .args(["--metrics-out", path.to_str().unwrap()])
        .output()
        .expect("run repro");
    assert!(out.status.success(), "repro failed: {}", String::from_utf8_lossy(&out.stderr));
    let snapshot = std::fs::read_to_string(&path).expect("snapshot file written");
    let _ = std::fs::remove_file(&path);
    snapshot
}

#[test]
fn deterministic_snapshot_matches_golden_and_schema() {
    let snapshot = run_repro(&["--metrics-deterministic"]);
    assert_eq!(
        snapshot, GOLDEN,
        "deterministic metrics snapshot drifted from the committed golden \
         (see the module docs for how to regenerate it)"
    );
    let value = ipactive_obs::json::parse(&snapshot).expect("snapshot parses");
    let schema = ipactive_obs::json::parse(SCHEMA).expect("schema parses");
    ipactive_obs::json::check_schema(&value, &schema).expect("snapshot validates against schema");
}

#[test]
fn timed_snapshot_validates_against_the_same_schema() {
    let snapshot = run_repro(&[]);
    let value = ipactive_obs::json::parse(&snapshot).expect("snapshot parses");
    let schema = ipactive_obs::json::parse(SCHEMA).expect("schema parses");
    ipactive_obs::json::check_schema(&value, &schema).expect("timed snapshot validates");
    assert_eq!(value.get("mode").and_then(|m| m.as_str()), Some("timed"));
    let spans = value.get("spans").and_then(|s| s.as_array()).expect("timed snapshot has spans");
    assert!(
        spans.iter().any(|s| {
            s.get("path").and_then(|p| p.as_str()) == Some("repro.supervised.daily")
        }),
        "span profile lacks the supervised build stage"
    );
}
