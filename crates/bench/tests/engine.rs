//! Differential suite for the analysis engine: the memoized cache and
//! the parallel `run_all` must be invisible in the output — every
//! figure byte-identical to a serial run with the cache bypassed.

use ipactive_bench::{Repro, Scale, EXPERIMENTS};
use std::sync::Arc;

#[test]
fn run_all_parallel_is_byte_identical_to_serial_uncached() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let baseline = repro.run_serial_uncached();
    let cached = repro.run_all(4);

    assert_eq!(baseline.figures.len(), EXPERIMENTS.len());
    assert_eq!(cached.figures.len(), EXPERIMENTS.len());
    for (b, c) in baseline.figures.iter().zip(&cached.figures) {
        assert_eq!(b.name, c.name, "report order must follow EXPERIMENTS");
        assert_eq!(b.output, c.output, "{} output diverged under the cache", b.name);
    }
    assert_eq!(baseline.combined_output(), cached.combined_output());
    assert!(
        cached.cache.hits > 0,
        "the figure suite shares window queries, so a full run must hit the cache"
    );
}

#[test]
fn run_all_output_follows_experiments_order_regardless_of_jobs() {
    let repro = Repro::new(0xBEEF, Scale::Tiny);
    let one = repro.run_all(1);
    let many = repro.run_all(7);
    for ((f1, f7), name) in one.figures.iter().zip(&many.figures).zip(EXPERIMENTS) {
        assert_eq!(f1.name, name);
        assert_eq!(f7.name, name);
        assert_eq!(f1.output, f7.output);
    }
    // The second pass answers every query from the first pass's cache.
    assert_eq!(many.cache.misses, 0, "warm run must not miss");
}

#[test]
fn run_all_matches_the_per_figure_run_api() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let report = repro.run_all(3);
    for f in &report.figures {
        assert_eq!(f.output, repro.run(f.name).unwrap(), "{} diverged from run()", f.name);
    }
}

#[test]
fn engine_queries_match_fresh_dataset_computation() {
    use ipactive_net::{ActiveSet, TieredSet};
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let days = repro.daily.num_days;
    let weeks = repro.weekly.num_weeks;
    assert_eq!(*repro.engine.all_active(), repro.daily.all_active_as::<TieredSet>());
    for d in [0, days / 2, days - 1] {
        assert_eq!(*repro.engine.day_set(d), repro.daily.day_set_as::<TieredSet>(d));
        // The tiered set must hold exactly the addresses of the Vec oracle.
        assert!(repro.engine.day_set(d).iter().eq(repro.daily.day_set(d).iter()));
    }
    assert_eq!(
        *repro.engine.day_window(0..days / 2),
        repro.daily.window_union_as::<TieredSet>(0..days / 2)
    );
    assert!(repro
        .engine
        .day_window(0..days / 2)
        .iter()
        .eq(repro.daily.window_union(0..days / 2).iter()));
    for w in [0, weeks - 1] {
        assert_eq!(*repro.engine.week_set(w), repro.weekly.week_set_as::<TieredSet>(w));
        assert!(repro.engine.week_set(w).iter().eq(repro.weekly.week_set(w).iter()));
    }
    assert_eq!(
        *repro.engine.week_window(0..weeks),
        repro.weekly.window_union_as::<TieredSet>(0..weeks)
    );
    assert!(repro.engine.week_window(0..weeks).iter().eq(repro.weekly.window_union(0..weeks).iter()));
    // Memoization is by identity: repeated queries share one set.
    assert!(Arc::ptr_eq(&repro.engine.all_active(), &repro.engine.all_active()));
}

#[test]
fn validate_still_passes_through_the_engine() {
    use ipactive_bench::CheckOutcome;
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    // Warm the cache with a full figure pass first, so validate()
    // exercises cached sets rather than computing fresh ones.
    let _ = repro.run_all(2);
    let failures: Vec<_> = repro
        .validate()
        .into_iter()
        .filter(|c| matches!(c.outcome, CheckOutcome::Fail(_)))
        .collect();
    assert!(failures.is_empty(), "failed checks: {failures:#?}");
}

#[test]
fn tiered_and_reference_backends_are_byte_identical() {
    use ipactive_net::{RefSet, TieredSet};
    // The set representation must be invisible end-to-end: a full
    // figure pass on the tiered backend and on the sorted-Vec oracle
    // must render byte-identical output AND take the same cache path
    // (identical hit/miss counts — same queries, same memoization).
    let tiered = Repro::<TieredSet>::with_backend(0xCAFE, Scale::Tiny);
    let reference = Repro::<RefSet>::with_backend(0xCAFE, Scale::Tiny);
    let rt = tiered.run_all(2);
    let rr = reference.run_all(2);
    assert_eq!(rt.figures.len(), rr.figures.len());
    for (t, r) in rt.figures.iter().zip(&rr.figures) {
        assert_eq!(t.name, r.name, "figure order diverged across backends");
        assert_eq!(t.output, r.output, "{} diverged across backends", t.name);
    }
    assert_eq!(rt.combined_output(), rr.combined_output());
    assert_eq!(rt.cache, rr.cache, "cache hit/miss counters diverged across backends");
    assert_eq!(tiered.engine.stats(), reference.engine.stats());
}

#[test]
fn bench_json_reports_both_runs() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    repro.prewarm_probes();
    let baseline = repro.run_serial_uncached();
    let cached = repro.run_all(2);
    let json = cached.bench_json(&baseline, 0xCAFE, Scale::Tiny);
    for needle in [
        "\"bench\": \"repro_run_all\"",
        "\"scale\": \"tiny\"",
        "\"jobs\": 2",
        "\"serial_uncached_total_ms\"",
        "\"speedup\"",
        "\"cache_hits\"",
        "\"name\": \"fig1\"",
        "\"name\": \"fig12\"",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
}
