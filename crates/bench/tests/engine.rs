//! Differential suite for the analysis engine: the memoized cache and
//! the parallel `run_all` must be invisible in the output — every
//! figure byte-identical to a serial run with the cache bypassed.

use ipactive_bench::{AnalysisCtx, Repro, Scale, EXPERIMENTS};
use std::sync::Arc;

#[test]
fn run_all_parallel_is_byte_identical_to_serial_uncached() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let baseline = repro.run_serial_uncached();
    let cached = repro.run_all(4);

    assert_eq!(baseline.figures.len(), EXPERIMENTS.len());
    assert_eq!(cached.figures.len(), EXPERIMENTS.len());
    for (b, c) in baseline.figures.iter().zip(&cached.figures) {
        assert_eq!(b.name, c.name, "report order must follow EXPERIMENTS");
        assert_eq!(b.output, c.output, "{} output diverged under the cache", b.name);
    }
    assert_eq!(baseline.combined_output(), cached.combined_output());
    assert!(
        cached.cache.hits > 0,
        "the figure suite shares window queries, so a full run must hit the cache"
    );
}

#[test]
fn run_all_output_follows_experiments_order_regardless_of_jobs() {
    let repro = Repro::new(0xBEEF, Scale::Tiny);
    let one = repro.run_all(1);
    let many = repro.run_all(7);
    for ((f1, f7), name) in one.figures.iter().zip(&many.figures).zip(EXPERIMENTS) {
        assert_eq!(f1.name, name);
        assert_eq!(f7.name, name);
        assert_eq!(f1.output, f7.output);
    }
    // The second pass answers every query from the first pass's cache.
    assert_eq!(many.cache.misses, 0, "warm run must not miss");
}

#[test]
fn run_all_matches_the_per_figure_run_api() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let report = repro.run_all(3);
    for f in &report.figures {
        assert_eq!(f.output, repro.run(f.name).unwrap(), "{} diverged from run()", f.name);
    }
}

#[test]
fn engine_queries_match_fresh_dataset_computation() {
    use ipactive_net::{ActiveSet, TieredSet};
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    let days = repro.daily.num_days;
    let weeks = repro.weekly.num_weeks;
    assert_eq!(*repro.engine.all_active(), repro.daily.all_active_as::<TieredSet>());
    for d in [0, days / 2, days - 1] {
        assert_eq!(*repro.engine.day_set(d), repro.daily.day_set_as::<TieredSet>(d));
        // The tiered set must hold exactly the addresses of the Vec oracle.
        assert!(repro.engine.day_set(d).iter().eq(repro.daily.day_set(d).iter()));
    }
    assert_eq!(
        *repro.engine.day_window(0..days / 2),
        repro.daily.window_union_as::<TieredSet>(0..days / 2)
    );
    assert!(repro
        .engine
        .day_window(0..days / 2)
        .iter()
        .eq(repro.daily.window_union(0..days / 2).iter()));
    for w in [0, weeks - 1] {
        assert_eq!(*repro.engine.week_set(w), repro.weekly.week_set_as::<TieredSet>(w));
        assert!(repro.engine.week_set(w).iter().eq(repro.weekly.week_set(w).iter()));
    }
    assert_eq!(
        *repro.engine.week_window(0..weeks),
        repro.weekly.window_union_as::<TieredSet>(0..weeks)
    );
    assert!(repro.engine.week_window(0..weeks).iter().eq(repro.weekly.window_union(0..weeks).iter()));
    // Memoization is by identity: repeated queries share one set.
    assert!(Arc::ptr_eq(&repro.engine.all_active(), &repro.engine.all_active()));
}

#[test]
fn validate_still_passes_through_the_engine() {
    use ipactive_bench::CheckOutcome;
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    // Warm the cache with a full figure pass first, so validate()
    // exercises cached sets rather than computing fresh ones.
    let _ = repro.run_all(2);
    let failures: Vec<_> = repro
        .validate()
        .into_iter()
        .filter(|c| matches!(c.outcome, CheckOutcome::Fail(_)))
        .collect();
    assert!(failures.is_empty(), "failed checks: {failures:#?}");
}

#[test]
fn tiered_and_reference_backends_are_byte_identical() {
    use ipactive_net::{RefSet, TieredSet};
    // The set representation must be invisible end-to-end: a full
    // figure pass on the tiered backend and on the sorted-Vec oracle
    // must render byte-identical output AND take the same cache path
    // (identical hit/miss counts — same queries, same memoization).
    let tiered = Repro::<TieredSet>::with_backend(0xCAFE, Scale::Tiny);
    let reference = Repro::<RefSet>::with_backend(0xCAFE, Scale::Tiny);
    let rt = tiered.run_all(2);
    let rr = reference.run_all(2);
    assert_eq!(rt.figures.len(), rr.figures.len());
    for (t, r) in rt.figures.iter().zip(&rr.figures) {
        assert_eq!(t.name, r.name, "figure order diverged across backends");
        assert_eq!(t.output, r.output, "{} diverged across backends", t.name);
    }
    assert_eq!(rt.combined_output(), rr.combined_output());
    assert_eq!(rt.cache, rr.cache, "cache hit/miss counters diverged across backends");
    assert_eq!(tiered.engine.stats(), reference.engine.stats());
}

#[test]
fn bench_json_reports_both_runs() {
    let repro = Repro::new(0xCAFE, Scale::Tiny);
    repro.prewarm_probes();
    let baseline = repro.run_serial_uncached();
    let cached = repro.run_all(2);
    let json = cached.bench_json(&baseline, 0xCAFE, Scale::Tiny, &[(1, 12.5), (8, 4.25)]);
    for needle in [
        "\"bench\": \"repro_run_all\"",
        "\"scale\": \"tiny\"",
        "\"jobs\": 2",
        "\"serial_uncached_total_ms\"",
        "\"speedup\"",
        "\"cache_hits\"",
        "\"name\": \"fig1\"",
        "\"name\": \"fig12\"",
        "\"subtasks\":",
        "\"jobs_sweep\": [",
        "{\"jobs\": 1, \"total_ms\": 12.500}",
        "{\"jobs\": 8, \"total_ms\": 4.250}",
    ] {
        assert!(json.contains(needle), "missing {needle} in:\n{json}");
    }
    // Every chunked kernel's partition is recorded; at least the
    // block-scan figures split on the tiny universe too.
    assert!(cached.figures.iter().any(|f| f.subtasks > 1), "no figure reported subtasks");
}

#[test]
fn jobs_sweep_is_deterministic_across_thread_counts_and_reruns() {
    // One fresh session per point, so every run starts cache-cold:
    // figure bytes AND cache hit/miss totals must be a pure function
    // of the query set — independent of the thread count, and stable
    // across reruns of the same thread count.
    let runs: Vec<_> = [1usize, 2, 8, 2]
        .iter()
        .map(|&jobs| {
            let repro = Repro::new(0xD15C, Scale::Tiny);
            let report = repro.run_all(jobs);
            (jobs, report.combined_output(), report.cache)
        })
        .collect();
    let (_, first_out, first_cache) = &runs[0];
    for (jobs, out, cache) in &runs[1..] {
        assert_eq!(out, first_out, "output bytes diverged at jobs {jobs}");
        assert_eq!(cache, first_cache, "cache totals diverged at jobs {jobs}");
    }
}

mod counting_backend {
    //! A [`RefSet`] wrapper that counts *expensive computations* — a
    //! streaming build (one `SetBuilder::finish`) or a k-way
    //! `union_many` — so tests can assert how many times the engine
    //! really computed, independent of its hit/miss bookkeeping.
    use ipactive_net::{ActiveSet, Addr, AddrBits256, Block24, Prefix, RefSet, SetBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};

    pub static COMPUTES: AtomicUsize = AtomicUsize::new(0);

    #[derive(Clone, Default, Debug, PartialEq, Eq)]
    pub struct CountingSet(RefSet);

    impl FromIterator<Addr> for CountingSet {
        fn from_iter<I: IntoIterator<Item = Addr>>(iter: I) -> Self {
            CountingSet(RefSet::from_iter(iter))
        }
    }

    pub struct CountingBuilder(<RefSet as ActiveSet>::Builder);

    impl SetBuilder for CountingBuilder {
        type Set = CountingSet;
        fn new() -> Self {
            CountingBuilder(<RefSet as ActiveSet>::Builder::new())
        }
        fn push_block(&mut self, block: Block24, bits: &AddrBits256) {
            self.0.push_block(block, bits);
        }
        fn finish(self) -> CountingSet {
            COMPUTES.fetch_add(1, Ordering::SeqCst);
            CountingSet(self.0.finish())
        }
    }

    impl ActiveSet for CountingSet {
        type Iter<'a> = <RefSet as ActiveSet>::Iter<'a>;
        type Builder = CountingBuilder;
        fn backend_name() -> &'static str {
            "counting"
        }
        fn empty() -> Self {
            CountingSet(RefSet::empty())
        }
        fn from_sorted_vec(addrs: Vec<Addr>) -> Self {
            CountingSet(RefSet::from_sorted_vec(addrs))
        }
        fn len(&self) -> usize {
            self.0.len()
        }
        fn contains(&self, addr: Addr) -> bool {
            self.0.contains(addr)
        }
        fn count_in(&self, prefix: Prefix) -> usize {
            self.0.count_in(prefix)
        }
        fn iter(&self) -> Self::Iter<'_> {
            <RefSet as ActiveSet>::iter(&self.0)
        }
        fn insert(&mut self, addr: Addr) -> bool {
            self.0.insert(addr)
        }
        fn union(&self, other: &Self) -> Self {
            CountingSet(self.0.union(&other.0))
        }
        fn union_many(sets: &[&Self]) -> Self {
            COMPUTES.fetch_add(1, Ordering::SeqCst);
            let inner: Vec<&RefSet> = sets.iter().map(|s| &s.0).collect();
            CountingSet(RefSet::union_many(&inner))
        }
        fn intersect(&self, other: &Self) -> Self {
            CountingSet(self.0.intersect(&other.0))
        }
        fn difference(&self, other: &Self) -> Self {
            CountingSet(self.0.difference(&other.0))
        }
        fn intersect_len(&self, other: &Self) -> usize {
            self.0.intersect_len(&other.0)
        }
        fn memory_bytes(&self) -> usize {
            self.0.memory_bytes()
        }
    }
}

#[test]
fn racing_queries_compute_each_key_exactly_once() {
    // Regression for the old mutex-map miss path, which computed the
    // window union BEFORE re-checking the map: every racing loser
    // burned a full computation and then threw it away (counted as a
    // "hit", so the stats never showed the waste). With per-key slots,
    // losers block on the winner — the computation count equals the
    // distinct-key count no matter how many threads collide.
    use counting_backend::{CountingSet, COMPUTES};
    use ipactive_bench::CacheStats;
    use ipactive_core::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use std::sync::atomic::Ordering;
    use std::sync::Barrier;

    let mut d = DailyDatasetBuilder::new(5);
    let mut w = WeeklyDatasetBuilder::new(2);
    for day in 0..5 {
        d.record_hits(day, format!("10.{day}.0.1").parse().unwrap(), 1 + day as u64);
    }
    w.record_week(0, "10.0.0.1".parse().unwrap(), 1);
    let ctx: AnalysisCtx<CountingSet> =
        AnalysisCtx::new(Arc::new(d.finish()), Arc::new(w.finish()));

    const THREADS: usize = 16;
    let barrier = Barrier::new(THREADS);

    // Phase 1: every thread storms the same cold key.
    let before = COMPUTES.load(Ordering::SeqCst);
    let sets = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    ctx.day_window(0..5)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect::<Vec<_>>()
    });
    assert_eq!(
        COMPUTES.load(Ordering::SeqCst) - before,
        6,
        "one build per day set plus one union_many — racing losers must not recompute"
    );
    for s in &sets[1..] {
        assert!(Arc::ptr_eq(s, &sets[0]), "all racers must share the winner's set");
    }
    assert_eq!(ctx.stats(), CacheStats { hits: (THREADS - 1) as u64, misses: 1 });

    // Phase 2: four cold window keys over already-warm day sets, four
    // threads colliding on each.
    ctx.reset_stats();
    let before = COMPUTES.load(Ordering::SeqCst);
    std::thread::scope(|scope| {
        let (barrier, ctx) = (&barrier, &ctx);
        for t in 0..THREADS {
            scope.spawn(move || {
                barrier.wait();
                let s = t % 4;
                ctx.day_window(s..s + 2)
            });
        }
    });
    assert_eq!(
        COMPUTES.load(Ordering::SeqCst) - before,
        4,
        "one union_many per distinct key; member day sets were already cached"
    );
    // Per key: 1 miss + 3 loser hits; composition reads the warm day
    // slots uncounted, so the ledger is exactly 4·3 hits, 4 misses.
    assert_eq!(ctx.stats(), CacheStats { hits: 12, misses: 4 });
}
