//! Golden-file test for the `inspect fsck` pipeline.
//!
//! Drives the real binary end to end: build a deterministic corrupted
//! store fixture (`inspect mkstore --corrupt`), repair it
//! (`inspect fsck --repair`), and diff the repair report byte-for-byte
//! against the committed golden file. A final verify pass must come
//! back healthy — repair converges in one step.
//!
//! If an intentional change to the store format or the report layout
//! moves the output, regenerate the golden with:
//!
//! ```text
//! rm -rf /tmp/fsck-smoke
//! target/debug/inspect mkstore /tmp/fsck-smoke --seed 7 --scale tiny --atomic --corrupt
//! target/debug/inspect fsck /tmp/fsck-smoke --repair \
//!     > crates/bench/tests/golden/fsck_repair_report.txt
//! ```

use std::path::PathBuf;
use std::process::Command;

const GOLDEN: &str = include_str!("golden/fsck_repair_report.txt");

fn inspect() -> Command {
    Command::new(env!("CARGO_BIN_EXE_inspect"))
}

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipactive-fsck-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fsck_repair_report_matches_golden() {
    let dir = fixture_dir("repair");
    let built = inspect()
        .args(["mkstore", dir.to_str().unwrap(), "--seed", "7", "--scale", "tiny", "--atomic", "--corrupt"])
        .output()
        .expect("run inspect mkstore");
    assert!(built.status.success(), "mkstore failed: {}", String::from_utf8_lossy(&built.stderr));

    let repair = inspect()
        .args(["fsck", dir.to_str().unwrap(), "--repair"])
        .output()
        .expect("run inspect fsck --repair");
    let report = String::from_utf8(repair.stdout).expect("report is utf-8");
    assert_eq!(
        repair.status.code(),
        Some(1),
        "repair of a damaged store must exit 1; stderr: {}",
        String::from_utf8_lossy(&repair.stderr)
    );
    assert_eq!(
        report, GOLDEN,
        "fsck repair report drifted from the committed golden \
         (see the module docs for how to regenerate it)"
    );

    // The repaired store verifies healthy, with full coverage.
    let verify = inspect()
        .args(["fsck", dir.to_str().unwrap()])
        .output()
        .expect("run inspect fsck");
    assert_eq!(verify.status.code(), Some(0), "repair did not converge");
    let verified = String::from_utf8(verify.stdout).unwrap();
    assert!(
        verified.ends_with("coverage 1.0000\n"),
        "repaired store is not fully covered:\n{verified}"
    );

    // Quarantine provenance sidecars exist for both damaged days.
    for name in ["day-0000.g000001.iplog", "day-0001.g000001.iplog"] {
        let quarantined = dir.join("quarantine").join(name);
        assert!(quarantined.exists(), "missing quarantined file {name}");
        let why = std::fs::read_to_string(dir.join("quarantine").join(format!("{name}.why")))
            .expect("provenance sidecar");
        assert!(why.contains("salvaged"), "sidecar lacks provenance: {why}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_on_a_healthy_store_exits_zero() {
    let dir = fixture_dir("healthy");
    let built = inspect()
        .args(["mkstore", dir.to_str().unwrap(), "--seed", "7", "--scale", "tiny", "--atomic"])
        .output()
        .expect("run inspect mkstore");
    assert!(built.status.success(), "mkstore failed: {}", String::from_utf8_lossy(&built.stderr));
    let verify = inspect()
        .args(["fsck", dir.to_str().unwrap()])
        .output()
        .expect("run inspect fsck");
    assert_eq!(verify.status.code(), Some(0));
    let report = String::from_utf8(verify.stdout).unwrap();
    assert!(report.contains("28 clean"), "unexpected report:\n{report}");
    let _ = std::fs::remove_dir_all(&dir);
}
