//! Golden-file test for the `inspect fsck` pipeline.
//!
//! Drives the real binary end to end: build a deterministic corrupted
//! store fixture (`inspect mkstore --corrupt`), repair it
//! (`inspect fsck --repair`), and diff the repair report byte-for-byte
//! against the committed golden file. A final verify pass must come
//! back healthy — repair converges in one step.
//!
//! If an intentional change to the store format or the report layout
//! moves the output, regenerate the golden with:
//!
//! ```text
//! rm -rf /tmp/fsck-smoke
//! target/debug/inspect mkstore /tmp/fsck-smoke --seed 7 --scale tiny --atomic --corrupt
//! target/debug/inspect fsck /tmp/fsck-smoke --repair \
//!     > crates/bench/tests/golden/fsck_repair_report.txt
//! ```

use std::path::PathBuf;
use std::process::Command;

const GOLDEN: &str = include_str!("golden/fsck_repair_report.txt");

fn inspect() -> Command {
    Command::new(env!("CARGO_BIN_EXE_inspect"))
}

fn fixture_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ipactive-fsck-golden-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn fsck_repair_report_matches_golden() {
    let dir = fixture_dir("repair");
    let built = inspect()
        .args(["mkstore", dir.to_str().unwrap(), "--seed", "7", "--scale", "tiny", "--atomic", "--corrupt"])
        .output()
        .expect("run inspect mkstore");
    assert!(built.status.success(), "mkstore failed: {}", String::from_utf8_lossy(&built.stderr));

    let repair = inspect()
        .args(["fsck", dir.to_str().unwrap(), "--repair"])
        .output()
        .expect("run inspect fsck --repair");
    let report = String::from_utf8(repair.stdout).expect("report is utf-8");
    assert_eq!(
        repair.status.code(),
        Some(1),
        "repair of a damaged store must exit 1; stderr: {}",
        String::from_utf8_lossy(&repair.stderr)
    );
    assert_eq!(
        report, GOLDEN,
        "fsck repair report drifted from the committed golden \
         (see the module docs for how to regenerate it)"
    );

    // The repaired store verifies healthy, with full coverage.
    let verify = inspect()
        .args(["fsck", dir.to_str().unwrap()])
        .output()
        .expect("run inspect fsck");
    assert_eq!(verify.status.code(), Some(0), "repair did not converge");
    let verified = String::from_utf8(verify.stdout).unwrap();
    assert!(
        verified.ends_with("coverage 1.0000\n"),
        "repaired store is not fully covered:\n{verified}"
    );

    // Quarantine provenance sidecars exist for both damaged days.
    for name in ["day-0000.g000001.iplog", "day-0001.g000001.iplog"] {
        let quarantined = dir.join("quarantine").join(name);
        assert!(quarantined.exists(), "missing quarantined file {name}");
        let why = std::fs::read_to_string(dir.join("quarantine").join(format!("{name}.why")))
            .expect("provenance sidecar");
        assert!(why.contains("salvaged"), "sidecar lacks provenance: {why}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `inspect metrics` and `inspect fsck` must agree on every verdict
/// count: both derive from the same [`ipactive_logfmt::FsckReport`],
/// and the snapshot's journal carries one `fsck_quarantine` event per
/// quarantine line in the rendered report.
#[test]
fn inspect_metrics_agrees_with_inspect_fsck() {
    let dir = fixture_dir("metrics");
    let built = inspect()
        .args(["mkstore", dir.to_str().unwrap(), "--seed", "7", "--scale", "tiny", "--atomic", "--corrupt"])
        .output()
        .expect("run inspect mkstore");
    assert!(built.status.success(), "mkstore failed: {}", String::from_utf8_lossy(&built.stderr));

    let fsck = inspect()
        .args(["fsck", dir.to_str().unwrap()])
        .output()
        .expect("run inspect fsck");
    assert_eq!(fsck.status.code(), Some(1), "dry fsck of a damaged store must exit 1");
    let report = String::from_utf8(fsck.stdout).expect("report is utf-8");

    let metrics = inspect()
        .args(["metrics", dir.to_str().unwrap()])
        .output()
        .expect("run inspect metrics");
    assert_eq!(
        metrics.status.code(),
        Some(1),
        "inspect metrics of a damaged store must exit 1; stderr: {}",
        String::from_utf8_lossy(&metrics.stderr)
    );
    let snapshot = ipactive_obs::json::parse(
        std::str::from_utf8(&metrics.stdout).expect("snapshot is utf-8"),
    )
    .expect("snapshot parses as JSON");
    let counter = |name: &str| -> u64 {
        snapshot
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(|v| v.as_f64())
            .unwrap_or_else(|| panic!("snapshot lacks counter {name}")) as u64
    };

    let quarantine_lines =
        report.lines().filter(|l| l.starts_with("quarantine")).count() as u64;
    assert!(quarantine_lines > 0, "fixture damage produced no quarantine verdicts:\n{report}");
    assert_eq!(counter("fsck.quarantined"), quarantine_lines);

    let damaged_days = report.lines().filter(|l| l.contains(": damaged ")).count() as u64;
    assert_eq!(counter("fsck.days_damaged"), damaged_days);

    let summary = report.lines().find(|l| l.starts_with("summary: ")).expect("summary line");
    // "summary: 28 days, 26 clean; coverage 0.9..."
    let clean: u64 = summary
        .split(", ")
        .nth(1)
        .and_then(|s| s.split(' ').next())
        .and_then(|n| n.parse().ok())
        .expect("clean count in summary");
    assert_eq!(counter("fsck.days_clean"), clean);

    let quarantine_events = snapshot
        .get("events")
        .and_then(|e| e.as_array())
        .expect("events array")
        .iter()
        .filter(|e| e.get("kind").and_then(|k| k.as_str()) == Some("fsck_quarantine"))
        .count() as u64;
    assert_eq!(
        quarantine_events, quarantine_lines,
        "journal events disagree with the rendered report"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fsck_on_a_healthy_store_exits_zero() {
    let dir = fixture_dir("healthy");
    let built = inspect()
        .args(["mkstore", dir.to_str().unwrap(), "--seed", "7", "--scale", "tiny", "--atomic"])
        .output()
        .expect("run inspect mkstore");
    assert!(built.status.success(), "mkstore failed: {}", String::from_utf8_lossy(&built.stderr));
    let verify = inspect()
        .args(["fsck", dir.to_str().unwrap()])
        .output()
        .expect("run inspect fsck");
    assert_eq!(verify.status.code(), Some(0));
    let report = String::from_utf8(verify.stdout).unwrap();
    assert!(report.contains("28 clean"), "unexpected report:\n{report}");
    let _ = std::fs::remove_dir_all(&dir);
}
