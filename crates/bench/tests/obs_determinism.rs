//! Differential tests for the observability plane's determinism
//! contract: a [`SnapshotMode::Deterministic`] snapshot is a pure
//! function of (input data, seeds, topology). It must not change
//! run-to-run, must not depend on how many worker threads regenerate
//! the figure suite, and under fault injection the journal must carry
//! exactly the retries and quarantines the supervised report accounts
//! for.

use ipactive_bench::{Repro, Scale};
use ipactive_obs::{EventKind, SnapshotMode};

fn det_json(repro: &Repro) -> String {
    repro.registry().snapshot(SnapshotMode::Deterministic).to_json()
}

/// `--jobs 1` vs `--jobs 4`: the full figure suite regenerated across
/// different thread counts (and, per cell, a fresh session each time)
/// must produce byte-identical deterministic snapshots — counters,
/// gauges, journal, all of it. This is what makes the snapshot
/// golden-testable in CI.
#[test]
fn deterministic_snapshot_is_byte_identical_across_job_counts() {
    for collectors in [1usize, 4] {
        let mut snaps = Vec::new();
        for jobs in [1usize, 4] {
            let (repro, _) = Repro::new_via_pipeline(11, Scale::Tiny, 2, collectors);
            let report = repro.run_all(jobs);
            assert_eq!(report.jobs, jobs);
            snaps.push(det_json(&repro));
        }
        assert_eq!(
            snaps[0], snaps[1],
            "collectors={collectors}: deterministic snapshot depends on the job count"
        );
    }
}

/// Different collector topologies lay the same records out over
/// different shard counters, so the documents differ — but the
/// aggregate totals must be invariant: the records written and the
/// sum over per-shard record counters do not depend on the topology.
#[test]
fn aggregate_counters_are_invariant_across_collector_topologies() {
    let snapshots: Vec<_> = [1usize, 4]
        .iter()
        .map(|&collectors| {
            let (repro, _) = Repro::new_via_pipeline(11, Scale::Tiny, 2, collectors);
            repro.registry().snapshot(SnapshotMode::Deterministic)
        })
        .collect();
    for key in ["pipeline.daily.records_written", "pipeline.weekly.records_written"] {
        assert_eq!(
            snapshots[0].counter(key),
            snapshots[1].counter(key),
            "{key} changed with the collector count"
        );
        assert!(snapshots[0].counter(key) > 0, "{key} was never incremented");
    }
    // Per-shard record counters sum to the same grand total.
    let shard_records = |snap: &ipactive_obs::Snapshot, prefix: &str| -> u64 {
        snap.counters
            .iter()
            .filter(|(name, _)| name.starts_with(prefix) && name.ends_with(".records"))
            .map(|(_, v)| *v)
            .sum()
    };
    for prefix in ["pipeline.daily.shard.", "pipeline.weekly.shard."] {
        assert_eq!(
            shard_records(&snapshots[0], prefix),
            shard_records(&snapshots[1], prefix),
            "per-shard {prefix}*.records totals changed with the collector count"
        );
    }
}

/// The per-figure traces minted by `run_all` are structural — names
/// and config-derived details only, never timings — so the full trace
/// document must be byte-identical across `--jobs 1` and `--jobs 4`
/// and across independent reruns, and every figure must appear as its
/// own trace with a `figure` root span.
#[test]
fn figure_traces_are_byte_identical_across_job_counts_and_reruns() {
    let mut docs = Vec::new();
    for jobs in [1usize, 4, 1] {
        let repro = Repro::new(11, Scale::Tiny);
        repro.run_all(jobs);
        docs.push(repro.registry().traces_json());
    }
    assert_eq!(docs[0], docs[1], "figure traces depend on the job count");
    assert_eq!(docs[0], docs[2], "figure traces differ between reruns");
    let trace_count = docs[0].matches("\"trace_id\"").count();
    assert_eq!(
        trace_count,
        ipactive_bench::EXPERIMENTS.len(),
        "expected one trace per figure"
    );
    assert_eq!(
        docs[0].matches("\"name\": \"figure\"").count(),
        ipactive_bench::EXPERIMENTS.len(),
        "every figure trace roots at a `figure` span"
    );
    for name in ipactive_bench::EXPERIMENTS {
        assert!(
            docs[0].contains(&format!("\"detail\": \"{name}\"")),
            "figure {name} has no root span"
        );
    }
}

/// The supervised collector's per-shard traces are a pure function of
/// (seed, topology, fault plan): pinned inputs reproduce the trace
/// document byte for byte, and every injected fault surfaces in some
/// buffer span's detail.
#[test]
fn supervised_traces_reproduce_byte_for_byte_under_a_pinned_fault_plan() {
    let run = || {
        let (repro, summary) =
            Repro::new_supervised(2015, Scale::Tiny, 2, 2, 3).expect("supervised run");
        (repro.registry().traces_json(), summary)
    };
    let (first, summary) = run();
    let (second, _) = run();
    assert_eq!(first, second, "supervised traces differ between pinned reruns");
    assert!(
        first.contains("\"name\": \"collect.shard\""),
        "per-shard collection trace missing"
    );
    assert!(
        first.contains("\"name\": \"collect.buffer\""),
        "per-buffer child spans missing"
    );
    // Ground truth from the outcomes (the plan may schedule faults
    // that shadow each other or miss the real buffer grid): every
    // fault that actually struck a buffer surfaces in that buffer
    // span's detail.
    let mut struck = 0;
    for outcome in summary.daily.outcomes.iter().chain(&summary.weekly.outcomes) {
        for b in &outcome.buffers {
            if let Some(kind) = b.fault {
                struck += 1;
                let kind = format!("{kind:?}").to_lowercase();
                assert!(
                    first.contains(&format!("buffer {} bytes", b.buffer))
                        && first.contains(&format!("fault {kind}")),
                    "injected {kind} fault on buffer {} absent from the span details",
                    b.buffer
                );
            }
        }
    }
    assert!(struck > 0, "the pinned plan injected no faults at all");
}

/// Repeating a supervised run with the same pinned [`FaultPlan`]
/// inputs reproduces the snapshot byte for byte, and the journal's
/// retry/quarantine event counts equal the report's accounting — the
/// journal is a view over the same run, not a second source of truth.
#[test]
fn pinned_fault_plan_reproduces_snapshot_and_event_counts() {
    let run = || Repro::new_supervised(2015, Scale::Tiny, 2, 2, 3).expect("supervised run");
    let (first, summary) = run();
    let (second, _) = run();
    assert_eq!(
        det_json(&first),
        det_json(&second),
        "same seed + same fault plan must reproduce the snapshot byte for byte"
    );

    let snap = first.registry().snapshot(SnapshotMode::Deterministic);
    let retries_reported = summary.daily.retries() + summary.weekly.retries();
    assert_eq!(
        snap.counter("supervisor.daily.retries") + snap.counter("supervisor.weekly.retries"),
        retries_reported,
        "retry counters disagree with the supervised reports"
    );
    assert_eq!(
        snap.events_of(EventKind::Retry).count() as u64,
        retries_reported,
        "retry journal events disagree with the supervised reports"
    );
    let quarantined_reported = (summary.daily.quarantine.len() + summary.weekly.quarantine.len()) as u64;
    assert_eq!(
        snap.counter("supervisor.daily.quarantined_frames")
            + snap.counter("supervisor.weekly.quarantined_frames"),
        quarantined_reported,
        "quarantine counters disagree with the supervised reports"
    );
    assert_eq!(
        snap.events_of(EventKind::Quarantine).count() as u64,
        quarantined_reported,
        "quarantine journal events disagree with the supervised reports"
    );
}
