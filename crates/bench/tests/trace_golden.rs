//! The trace golden: a pinned-seed traced pass against a chaos-ridden
//! observatory server must reproduce the committed span-tree document
//! byte for byte — across reruns and across worker counts — and the
//! document must validate against the checked-in trace schema. This is
//! the CI pin for the end-to-end tracing contract: span trees carry
//! structure (names, request-derived details, parent links) and never
//! wall-time, so they are a pure function of (seed, request sequence)
//! even with deterministic worker panics and stalls injected.
//!
//! Regenerate the golden after an intentional span-layout change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test -p ipactive-bench --test trace_golden
//! ```

use ipactive_obs::{json, Registry};
use ipactive_serve::{
    loadgen, synthetic_day_log, ChaosPlan, Observatory, ServeConfig, Server, SloPolicy,
};
use std::sync::Arc;

const SEED: u64 = 0x90_1DE2;
const REQUESTS: u64 = 12;
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_snapshot.json");
const SCHEMA: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/trace_schema.json");

/// One closed-loop traced pass under pinned chaos; returns the
/// registry's full trace document.
fn traced_doc(workers: usize) -> String {
    let registry = Registry::new();
    let obs: Arc<Observatory> = Arc::new(Observatory::new(&registry));
    obs.ingest_days((0..6).map(|d| synthetic_day_log(SEED, d)).collect());
    let server = Server::start(
        obs,
        ServeConfig {
            workers,
            queue_depth: 16,
            chaos: ChaosPlan { seed: SEED, panic_period: 3, stall_period: 2, stall_us: 100 },
            slo: Some(SloPolicy::default()),
        },
    );
    let linked = loadgen::traced_pass(&server, SEED, REQUESTS);
    server.shutdown();
    assert_eq!(linked, REQUESTS, "every response must echo its minted trace id");
    registry.traces_json()
}

#[test]
fn trace_snapshot_matches_the_committed_golden() {
    let doc = traced_doc(2);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &doc).expect("rewrite golden trace snapshot");
    }
    let golden = std::fs::read_to_string(GOLDEN)
        .expect("golden trace snapshot missing; regenerate with UPDATE_GOLDEN=1");
    assert_eq!(
        doc, golden,
        "trace snapshot diverged from the committed golden; if the span \
         layout changed intentionally, regenerate with UPDATE_GOLDEN=1"
    );
}

#[test]
fn trace_snapshot_is_invariant_across_worker_counts_and_validates() {
    let doc = traced_doc(2);
    assert_eq!(doc, traced_doc(4), "trace snapshot depends on the worker count");
    let value = json::parse(&doc).expect("trace document parses");
    let schema_text = std::fs::read_to_string(SCHEMA).expect("trace schema is committed");
    let schema = json::parse(&schema_text).expect("trace schema parses");
    json::check_schema(&value, &schema).expect("trace document validates against the schema");
    // Every traced request produced a full client -> admission ->
    // answer chain (chaos may append panic/retry spans after these).
    let traces = value.get("traces").and_then(json::Json::as_array).expect("traces array");
    assert_eq!(traces.len() as u64, REQUESTS);
    for t in traces {
        let spans = t.get("spans").and_then(json::Json::as_array).expect("spans array");
        for name in ["client.request", "serve.admission", "serve.answer"] {
            assert!(
                spans.iter().any(|s| {
                    s.get("name").and_then(json::Json::as_str) == Some(name)
                }),
                "trace lacks a {name} span"
            );
        }
    }
}
