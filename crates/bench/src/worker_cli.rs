//! The shard-worker command line, shared by the `repro` binary's
//! hidden `worker` mode and the `inspect worker` subcommand, so the
//! coordinator can spawn either binary as its worker process.
//!
//! ```text
//! ... worker --root DIR --shard S --shards N --emitters E
//!            --epoch G --attempt A [--seed N] [--scale tiny|small|full]
//!            [--pause-at POINT] [--stall]
//!            [--trace-id HEX] [--parent-span SEQ]
//! ```
//!
//! `--pause-at` freezes the worker at a named injection point
//! ([`InjectionPoint`] spelling) after writing a pause marker — the
//! harness's cue to `kill -9` it there. With `--stall` the freeze is
//! silent (no marker): the coordinator must catch the wedge through
//! heartbeat stagnation. `--trace-id`/`--parent-span` continue the
//! coordinator's grant trace across the process boundary: the worker
//! records its spans after the handed-down parent sequence and
//! exports them to `shard-SSSS/trace-AA.json` for stitching. Exit
//! status: 0 when both stores committed; 1 on I/O failure; 2 on usage
//! errors.

use crate::Scale;
use ipactive_coord::{run_worker, InjectionPoint, PauseStyle, WorkerConfig, WorkerExit};
use ipactive_logfmt::RealFs;
use ipactive_obs::{Registry, TraceContext, TraceId};
use std::path::PathBuf;

fn usage(err: &str) -> ! {
    eprintln!("error: {err}");
    eprintln!(
        "usage: worker --root DIR --shard S --shards N --emitters E --epoch G --attempt A\n              [--seed N] [--scale tiny|small|full] [--pause-at POINT] [--stall]\n              [--trace-id HEX] [--parent-span SEQ]"
    );
    std::process::exit(2);
}

/// Parses worker argv and runs the grant to completion (or to its
/// scheduled pause). Never returns.
pub fn run(args: &[String]) -> ! {
    let mut seed: u64 = 2015;
    let mut scale = Scale::Tiny;
    let mut root: Option<PathBuf> = None;
    let mut shard: Option<u32> = None;
    let mut shards: Option<usize> = None;
    let mut emitters: Option<usize> = None;
    let mut epoch: Option<u64> = None;
    let mut attempt: Option<u32> = None;
    let mut pause_at: Option<InjectionPoint> = None;
    let mut stall = false;
    let mut trace_id = TraceId::NONE;
    let mut parent_span: u64 = 0;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || it.next().cloned().unwrap_or_else(|| usage("missing value"));
        match arg.as_str() {
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage("--seed needs an integer")),
            "--scale" => {
                scale = match val().as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "full" => Scale::Full,
                    _ => usage("--scale needs tiny|small|full"),
                }
            }
            "--root" => root = Some(PathBuf::from(val())),
            "--shard" => shard = val().parse().ok(),
            "--shards" => shards = val().parse().ok(),
            "--emitters" => emitters = val().parse().ok(),
            "--epoch" => epoch = val().parse().ok(),
            "--attempt" => attempt = val().parse().ok(),
            "--pause-at" => {
                let v = val();
                pause_at = Some(
                    InjectionPoint::parse(&v)
                        .unwrap_or_else(|| usage("--pause-at needs an injection point")),
                )
            }
            "--stall" => stall = true,
            "--trace-id" => {
                trace_id = TraceId::from_hex(&val())
                    .unwrap_or_else(|| usage("--trace-id needs a hex trace id"))
            }
            "--parent-span" => {
                parent_span =
                    val().parse().unwrap_or_else(|_| usage("--parent-span needs an integer"))
            }
            other => usage(&format!("unknown worker flag: {other}")),
        }
    }
    let (Some(root), Some(shard), Some(shards), Some(emitters), Some(epoch), Some(attempt)) =
        (root, shard, shards, emitters, epoch, attempt)
    else {
        usage("--root/--shard/--shards/--emitters/--epoch/--attempt are all required")
    };

    let cfg = WorkerConfig {
        universe: scale.config(seed),
        root,
        shard,
        shards,
        emitters,
        epoch,
        attempt,
        trace: TraceContext { trace: trace_id, span: parent_span },
    };
    // The worker's span records live in a process-local registry; the
    // exported trace file is how they reach the coordinator.
    let registry = Registry::new();
    match run_worker(&RealFs, &cfg, pause_at, PauseStyle::Spin { write_marker: !stall }, &registry)
    {
        Ok(run) => {
            // A Spin pause never returns, so reaching here with a
            // Paused exit is impossible; still, only Completed earns 0.
            std::process::exit(if run.exit == WorkerExit::Completed { 0 } else { 1 })
        }
        Err(e) => {
            eprintln!("error: worker shard {shard} attempt {attempt} failed: {e}");
            std::process::exit(1);
        }
    }
}
