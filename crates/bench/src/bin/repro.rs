//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [EXPERIMENT ...] [--seed N] [--scale tiny|small|full] [--out FILE]
//!       [--workers N] [--collectors M] [--faults K] [--jobs N] [--timings]
//! repro list
//! ```
//!
//! With no experiment arguments, runs all of them in paper order.
//! Use a release build for `--scale full` (the default). `--out`
//! writes the combined report to a file as well as stdout.
//!
//! `--jobs N` regenerates the full suite across up to `N` worker
//! threads (clamped to the machine's cores) sharing the memoized
//! activity-set cache, heavy figures scheduled first and idle cores
//! lent to the running figures' chunked kernels; output is identical
//! to the serial run, just faster. `--timings` additionally times a
//! serial cache-bypassed baseline first, then re-times the warm suite
//! at jobs 1, 2, and `N`, and writes the comparison — per-figure
//! milliseconds and subtask counts, total wall-clock, cache hit
//! counts, speedup, the jobs sweep — to `BENCH_repro.json` (which
//! `inspect perf-check` gates in CI). Both apply to the full suite
//! only.
//!
//! `--workers`/`--collectors` route dataset construction through the
//! sharded log pipeline instead of the direct builders — the datasets
//! are identical (the differential suite proves it), so every
//! experiment is unaffected; the flags exist to exercise and time the
//! collection path at scale.
//!
//! `--distributed N` builds the datasets through *process-level*
//! distributed collection: `N` shard workers run as separate OS
//! processes (this same binary's hidden `worker` mode), each
//! committing its shard into a leased, manifest-journaled store pair
//! under `--dist-root` (a temp directory by default), while the
//! coordinator heartbeat-watches them and heals failures. Up to
//! `--dist-jobs` workers run concurrently. Each `--kill
//! SHARD:POINT[:stall]` schedules a real `kill -9` (or silent stall)
//! for that shard's first grant at a named protocol point — the
//! coordinator fsck-repairs the remains and regrants, and the final
//! report plus `--metrics-out` journal show the whole story.
//!
//! `--faults K` runs the *supervised* pipeline with `K` deterministic
//! injected faults (crashes, corruption, drops, stalls seeded from
//! `--seed`): transient faults heal via checkpointed replay, permanent
//! ones degrade gracefully, and the printed summary reports per-shard
//! coverage, retries, and dead-lettered frames. `--faults 0` runs the
//! supervised path fault-free.
//!
//! Observability: `--metrics-out FILE` writes the session's metrics
//! snapshot (counters, gauges, histograms, event journal, span
//! timings) as JSON when the run finishes; add
//! `--metrics-deterministic` to strip timings so the document is
//! byte-stable run-to-run — the form the CI golden job diffs.
//! `--profile` prints the span timing tree (wall time per stage) to
//! stderr at exit.

use ipactive_bench::{CheckOutcome, Repro, Scale, EXPERIMENTS};
use ipactive_coord::{InjectionPoint, KillMode, KillPlan, KillSpec};
use ipactive_obs::SnapshotMode;

/// `--kill SHARD:POINT[:stall]` — one scheduled death for the
/// distributed run's first grant of `SHARD` at injection point
/// `POINT` (`early`, `after-buffer-K`, `pre-commit`, `mid-commit`,
/// `pre-exit`), `kill -9`ed at the marker by default or wedge-killed
/// after heartbeat stagnation with the `:stall` suffix.
fn parse_kill(spec: &str) -> Option<KillSpec> {
    let mut parts = spec.splitn(3, ':');
    let shard: u32 = parts.next()?.parse().ok()?;
    let point = InjectionPoint::parse(parts.next()?)?;
    let mode = match parts.next() {
        None => KillMode::Kill,
        Some("stall") => KillMode::Stall,
        Some(_) => return None,
    };
    Some(KillSpec { shard, attempt: 0, point, mode })
}

fn main() {
    {
        // Hidden worker mode: the distributed coordinator re-spawns
        // this same binary as `repro worker ...` for each shard grant.
        let args: Vec<String> = std::env::args().skip(1).collect();
        if args.first().map(String::as_str) == Some("worker") {
            ipactive_bench::worker_cli::run(&args[1..]);
        }
        if args.first().map(String::as_str) == Some("serve-bench") {
            serve_bench(&args[1..]);
        }
    }
    let mut seed: u64 = 2015;
    let mut scale = Scale::Full;
    let mut out_path: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut collectors: Option<usize> = None;
    let mut faults: Option<usize> = None;
    let mut distributed: Option<usize> = None;
    let mut dist_jobs: usize = 2;
    let mut dist_root: Option<String> = None;
    let mut kills: Vec<KillSpec> = Vec::new();
    let mut jobs: usize = 1;
    let mut timings = false;
    let mut metrics_out: Option<String> = None;
    let mut metrics_deterministic = false;
    let mut profile = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "list" => {
                for name in EXPERIMENTS {
                    println!("{name}");
                }
                return;
            }
            "validate" => {
                wanted.push("__validate__".to_string());
            }
            "--out" => {
                out_path = Some(args.next().unwrap_or_else(|| usage("--out needs a path")));
            }
            "--seed" => {
                seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs an integer"));
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage("--scale needs tiny|small|full"),
                };
            }
            "--workers" => {
                workers = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("--workers needs a positive integer")),
                );
            }
            "--collectors" => {
                collectors = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("--collectors needs a positive integer")),
                );
            }
            "--faults" => {
                faults = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--faults needs a non-negative integer")),
                );
            }
            "--distributed" => {
                distributed = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .filter(|&n| n >= 1)
                        .unwrap_or_else(|| usage("--distributed needs a positive shard count")),
                );
            }
            "--dist-jobs" => {
                dist_jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--dist-jobs needs a positive integer"));
            }
            "--dist-root" => {
                dist_root =
                    Some(args.next().unwrap_or_else(|| usage("--dist-root needs a path")));
            }
            "--kill" => {
                let spec = args.next().unwrap_or_else(|| usage("--kill needs SHARD:POINT"));
                kills.push(
                    parse_kill(&spec)
                        .unwrap_or_else(|| usage("--kill needs SHARD:POINT[:stall]")),
                );
            }
            "--jobs" => {
                jobs = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--jobs needs a positive integer"));
            }
            "--timings" => timings = true,
            "--metrics-out" => {
                metrics_out =
                    Some(args.next().unwrap_or_else(|| usage("--metrics-out needs a path")));
            }
            "--metrics-deterministic" => metrics_deterministic = true,
            "--profile" => profile = true,
            "--help" | "-h" => {
                usage("");
            }
            name if EXPERIMENTS.contains(&name) => wanted.push(name.to_string()),
            other => usage(&format!("unknown experiment or flag: {other}")),
        }
    }
    let full_suite = wanted.is_empty();
    if (timings || jobs > 1) && !full_suite {
        usage("--jobs/--timings regenerate the full suite; drop the experiment list");
    }
    if wanted.is_empty() {
        wanted = EXPERIMENTS.iter().map(|s| s.to_string()).collect();
    }

    eprintln!("generating universe (seed {seed}, scale {scale:?}) ...");
    let start = std::time::Instant::now();
    let repro = if let Some(shards) = distributed {
        if faults.is_some() {
            usage("--distributed and --faults are separate collection paths; pick one");
        }
        let emitters = workers.unwrap_or(2);
        let exe = std::env::current_exe()
            .unwrap_or_else(|e| {
                eprintln!("error: cannot locate own executable: {e}");
                std::process::exit(1);
            })
            .to_string_lossy()
            .into_owned();
        let worker_cmd = vec![exe, "worker".to_string()];
        let (root, ephemeral) = match &dist_root {
            Some(dir) => (std::path::PathBuf::from(dir), false),
            None => (
                std::env::temp_dir()
                    .join(format!("ipactive-dist-{seed}-{}", std::process::id())),
                true,
            ),
        };
        let mut plan = KillPlan::none();
        for spec in &kills {
            plan = plan.with(*spec);
        }
        eprintln!(
            "building datasets via distributed collection ({shards} worker processes x {emitters} emitters, {} scheduled kills) ...",
            kills.len()
        );
        match Repro::new_distributed(
            seed, scale, shards, emitters, dist_jobs, root.clone(), &worker_cmd, &plan,
        ) {
            Ok((repro, outcome)) => {
                eprint!("{}", outcome.render());
                if ephemeral {
                    let _ = std::fs::remove_dir_all(&root);
                }
                repro
            }
            Err(e) => {
                eprintln!("error: distributed collection failed: {e}");
                std::process::exit(1);
            }
        }
    } else if let Some(k) = faults {
        let w = workers.unwrap_or(1);
        let c = collectors.unwrap_or(2);
        eprintln!(
            "building datasets via supervised pipeline ({w} workers x {c} collectors, {k} injected faults) ..."
        );
        match Repro::new_supervised(seed, scale, w, c, k) {
            Ok((repro, summary)) => {
                eprint!("{}", summary.render());
                repro
            }
            Err(e) => {
                eprintln!("error: supervised pipeline failed: {e}");
                std::process::exit(1);
            }
        }
    } else if workers.is_some() || collectors.is_some() {
        let w = workers.unwrap_or(1);
        let c = collectors.unwrap_or(1);
        eprintln!("building datasets via sharded pipeline ({w} workers x {c} collectors) ...");
        let (repro, summary) = Repro::new_via_pipeline(seed, scale, w, c);
        eprint!("{}", summary.render());
        repro
    } else {
        Repro::new(seed, scale)
    };
    eprintln!(
        "universe ready in {:.1}s: {} /24 blocks, {} ASes, {} active addresses (daily)",
        start.elapsed().as_secs_f64(),
        repro.universe.blocks.len(),
        repro.universe.ases.len(),
        repro.daily.total_active(),
    );

    let finish_obs = |repro: &Repro| {
        if profile {
            eprint!("{}", repro.registry().snapshot(SnapshotMode::Timed).render_profile());
        }
        if let Some(path) = &metrics_out {
            let mode = if metrics_deterministic {
                SnapshotMode::Deterministic
            } else {
                SnapshotMode::Timed
            };
            let json = repro.registry().snapshot(mode).to_json();
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("metrics snapshot ({}) written to {path}", mode.as_str());
        }
    };

    if wanted.iter().any(|w| w == "__validate__") {
        let checks = repro.validate();
        let mut failed = 0;
        for c in &checks {
            let (tag, detail) = match &c.outcome {
                CheckOutcome::Pass => ("PASS", String::new()),
                CheckOutcome::Fail(d) => {
                    failed += 1;
                    ("FAIL", format!("  [{d}]"))
                }
                CheckOutcome::Skip(d) => ("skip", format!("  [{d}]")),
            };
            println!("{tag}  {:<8} {}{}", c.experiment, c.claim, detail);
        }
        println!(
            "\n{} checks: {} passed, {failed} failed, {} skipped",
            checks.len(),
            checks.iter().filter(|c| c.outcome == CheckOutcome::Pass).count(),
            checks.iter().filter(|c| matches!(c.outcome, CheckOutcome::Skip(_))).count(),
        );
        finish_obs(&repro);
        std::process::exit(if failed > 0 { 1 } else { 0 });
    }

    let combined = if timings {
        repro.prewarm_probes();
        eprintln!("timing baseline (serial, cache bypassed) ...");
        let baseline = repro.run_serial_uncached();
        eprint!("{}", baseline.render_timings());
        eprintln!("timing cached run ({jobs} jobs) ...");
        let cached = repro.run_all(jobs);
        eprint!("{}", cached.render_timings());
        eprintln!(
            "speedup vs serial uncached: {:.2}x",
            baseline.total_ms / cached.total_ms.max(1e-9)
        );
        // Warm sweep: the cache is fully populated now, so these
        // passes time scheduling and the chunked kernels alone. Same
        // bytes at every point — only the wall-clock varies.
        let mut sweep_points = vec![1usize, 2, jobs];
        sweep_points.sort_unstable();
        sweep_points.dedup();
        let mut jobs_sweep = Vec::new();
        for j in sweep_points {
            let warm = repro.run_all(j);
            eprintln!("warm sweep: jobs {j} -> {:.1} ms", warm.total_ms);
            jobs_sweep.push((j, warm.total_ms));
        }
        let json = cached.bench_json(&baseline, seed, scale, &jobs_sweep);
        if let Err(e) = std::fs::write("BENCH_repro.json", &json) {
            eprintln!("error: failed to write BENCH_repro.json: {e}");
            std::process::exit(1);
        }
        eprintln!("perf record written to BENCH_repro.json");
        for f in &cached.figures {
            println!("{}", f.output);
        }
        cached.combined_output()
    } else if jobs > 1 {
        let report = repro.run_all(jobs);
        for f in &report.figures {
            println!("{}", f.output);
        }
        eprintln!("[full suite in {:.2}s across {jobs} jobs]", report.total_ms / 1e3);
        report.combined_output()
    } else {
        let mut combined = String::new();
        for name in wanted {
            let t = std::time::Instant::now();
            let report = repro.run(&name).expect("validated above");
            println!("{report}");
            combined.push_str(&report);
            eprintln!("[{name} in {:.2}s]", t.elapsed().as_secs_f64());
        }
        combined
    };
    if let Some(path) = out_path {
        if let Err(e) = std::fs::write(&path, combined) {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("report written to {path}");
    }
    finish_obs(&repro);
}

/// `repro serve-bench` — stand up an in-process observatory server,
/// drive it with the open-loop load generator, and write the latency
/// and shed-rate record to `BENCH_serve.json`.
///
/// ```text
/// repro serve-bench [--days N] [--requests N] [--rate R] [--workers N]
///                   [--queue-depth N] [--budget-ms MS] [--seed N]
///                   [--stall-period K] [--stall-us US] [--out FILE]
///                   [--traces-out FILE] [--trace-requests N]
/// ```
///
/// `--stall-period K` stalls every Kth executed query by `--stall-us`
/// (deterministic, seeded) so the admission queue and deadline paths
/// see realistic pressure; both default to off.
///
/// Before the open-loop storm, a closed-loop *traced pass* sends
/// `--trace-requests` requests (default 16) each carrying a minted
/// trace id, then writes the resulting span trees — byte-stable for a
/// given seed — to `--traces-out` when given. The SLO monitor runs
/// throughout with the default policy; the output JSON's `slo` object
/// records the burn count and last-window gauges, which
/// `inspect slo-check` gates in CI.
fn serve_bench(args: &[String]) -> ! {
    use ipactive_serve::{
        loadgen, synthetic_day_log, ChaosPlan, LoadgenConfig, Observatory, ServeConfig, Server,
        SloPolicy,
    };

    let sb_usage = |err: &str| -> ! {
        if !err.is_empty() {
            eprintln!("error: {err}\n");
        }
        eprintln!("usage: repro serve-bench [--days N] [--requests N] [--rate R] [--workers N]");
        eprintln!("                         [--queue-depth N] [--budget-ms MS] [--seed N]");
        eprintln!("                         [--stall-period K] [--stall-us US] [--out FILE]");
        eprintln!("                         [--traces-out FILE] [--trace-requests N]");
        std::process::exit(if err.is_empty() { 0 } else { 2 });
    };
    let mut days: usize = 28;
    let mut requests: u64 = 2000;
    let mut rate: f64 = 20_000.0;
    let mut workers: usize = 2;
    let mut queue_depth: usize = 64;
    let mut budget_ms: u64 = 0;
    let mut seed: u64 = 2016;
    let mut stall_period: u64 = 0;
    let mut stall_us: u64 = 0;
    let mut out: String = "BENCH_serve.json".to_string();
    let mut traces_out: Option<String> = None;
    let mut trace_requests: u64 = 16;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |what: &str| -> u64 {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| sb_usage(&format!("{what} needs a non-negative integer")))
        };
        match arg.as_str() {
            "--days" => days = num("--days") as usize,
            "--requests" => requests = num("--requests"),
            "--rate" => {
                rate = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&r: &f64| r > 0.0)
                    .unwrap_or_else(|| sb_usage("--rate needs a positive number"));
            }
            "--workers" => workers = num("--workers").max(1) as usize,
            "--queue-depth" => queue_depth = num("--queue-depth").max(1) as usize,
            "--budget-ms" => budget_ms = num("--budget-ms"),
            "--seed" => seed = num("--seed"),
            "--stall-period" => stall_period = num("--stall-period"),
            "--stall-us" => stall_us = num("--stall-us"),
            "--out" => {
                out = it.next().cloned().unwrap_or_else(|| sb_usage("--out needs a path"));
            }
            "--traces-out" => {
                traces_out =
                    Some(it.next().cloned().unwrap_or_else(|| sb_usage("--traces-out needs a path")));
            }
            "--trace-requests" => trace_requests = num("--trace-requests"),
            "--help" | "-h" => sb_usage(""),
            other => sb_usage(&format!("unknown flag: {other}")),
        }
    }

    let registry = ipactive_obs::Registry::new();
    let obs: std::sync::Arc<Observatory> = std::sync::Arc::new(Observatory::new(&registry));
    eprintln!("ingesting {days} synthetic days (seed {seed}) ...");
    obs.ingest_days((0..days).map(|d| synthetic_day_log(seed, d)).collect());
    let chaos = ChaosPlan { seed, panic_period: 0, stall_period, stall_us };
    let server = Server::start(
        obs,
        ServeConfig { workers, queue_depth, chaos, slo: Some(SloPolicy::default()) },
    );
    // Closed-loop traced pass first, against the fresh server: the
    // span trees it produces are a pure function of the seed, so the
    // traces file is written before the open-loop storm muddies the
    // registry with its own (also traced) requests.
    let traced_linked = if trace_requests > 0 {
        let linked = loadgen::traced_pass(&server, seed, trace_requests);
        eprintln!(
            "traced pass: {linked} of {trace_requests} responses echoed their minted trace id"
        );
        if let Some(path) = &traces_out {
            let doc = registry.traces_json();
            if let Err(e) = std::fs::write(path, &doc) {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("trace span trees written to {path}");
        }
        linked
    } else {
        0
    };
    eprintln!(
        "open-loop load: {requests} requests at {rate:.0}/s against {workers} workers (queue {queue_depth}) ..."
    );
    let report = loadgen::run(
        &server,
        &LoadgenConfig { requests, rate, budget_ms, allow_degraded: true, seed },
    );
    server.shutdown();
    eprintln!(
        "served {} of {}: {} ok, {} degraded, {} deadline, {} shed ({:.1}% shed rate)",
        report.answered(),
        report.sent,
        report.ok,
        report.degraded,
        report.deadline_exceeded,
        report.overloaded,
        report.shed_rate * 100.0,
    );
    eprintln!(
        "client latency: p50 {:.0}us  p90 {:.0}us  p99 {:.0}us  ({:.0} req/s achieved)",
        report.p50_us, report.p90_us, report.p99_us, report.achieved_rate,
    );
    let snap = registry.snapshot(ipactive_obs::SnapshotMode::Deterministic);
    let burns = snap.counters.get("slo.burn").copied().unwrap_or(0);
    let shed_ppm = snap.gauges.get("slo.window.shed_ppm").copied().unwrap_or(0);
    let p99_gauge = snap.gauges.get("slo.window.p99_us").copied().unwrap_or(0);
    eprintln!(
        "slo: {burns} burned windows (last window: {shed_ppm} ppm shed, p99 {p99_gauge}us)"
    );
    let json = format!(
        concat!(
            "{{\"config\":{{\"days\":{},\"requests\":{},\"rate\":{:.1},\"workers\":{},",
            "\"queue_depth\":{},\"budget_ms\":{},\"seed\":{},\"stall_period\":{},",
            "\"stall_us\":{},\"trace_requests\":{}}},\"report\":{},",
            "\"slo\":{{\"burns\":{},\"window_shed_ppm\":{},\"window_p99_us\":{},",
            "\"traced_linked\":{}}}}}\n"
        ),
        days,
        requests,
        rate,
        workers,
        queue_depth,
        budget_ms,
        seed,
        stall_period,
        stall_us,
        trace_requests,
        report.to_json(),
        burns,
        shed_ppm,
        p99_gauge,
        traced_linked,
    );
    if let Err(e) = std::fs::write(&out, &json) {
        eprintln!("error: failed to write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("serve bench record written to {out}");
    std::process::exit(0);
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("error: {err}\n");
    }
    eprintln!("usage: repro [EXPERIMENT ...] [--seed N] [--scale tiny|small|full] [--out FILE]");
    eprintln!("             [--workers N] [--collectors M] [--faults K] [--jobs N] [--timings]");
    eprintln!("             [--distributed N] [--dist-jobs J] [--dist-root DIR] [--kill SHARD:POINT[:stall]]...");
    eprintln!("             [--metrics-out FILE] [--metrics-deterministic] [--profile]");
    eprintln!("       repro list | repro validate [--seed N] [--scale ...]");
    eprintln!("       repro serve-bench --help   (observatory server load generator)");
    eprintln!("experiments: {}", EXPERIMENTS.join(" "));
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
