//! `inspect` — drill into one `/24` of a synthetic universe the way
//! the paper drills into its Figure 6/7 exemplars: activity matrix,
//! FD/STU metrics, per-address traffic, reverse DNS, routing, probe
//! responses, and (optionally) the generator's ground truth.
//!
//! ```text
//! inspect <BLOCK|top|changed> [--seed N] [--scale tiny|small|full] [--truth]
//!         [--workers N] [--collectors M] [--faults K]
//! ```
//!
//! `--workers`/`--collectors` build the datasets through the sharded
//! log pipeline (identical output, printed throughput) instead of the
//! direct builders. `--faults K` uses the supervised pipeline with `K`
//! deterministic injected faults and prints coverage, retry, and
//! quarantine accounting — inspect a block of a degraded run to see
//! exactly what a lost shard looks like downstream.
//!
//! `BLOCK` is a `/24` network like `101.0.64.0`; `top` picks the
//! busiest block, `changed` the busiest block with a mid-window
//! restructure.

use ipactive_bench::{Repro, Scale};
use ipactive_core::{matrix, outages, persistence};
use ipactive_dns::classify_block;
use ipactive_net::{Addr, Block24};

fn main() {
    let mut seed: u64 = 2015;
    let mut scale = Scale::Small;
    let mut truth = false;
    let mut workers: Option<usize> = None;
    let mut collectors: Option<usize> = None;
    let mut faults: Option<usize> = None;
    let mut target: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--truth" => truth = true,
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n >= 1);
                if workers.is_none() {
                    usage();
                }
            }
            "--collectors" => {
                collectors = args.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n >= 1);
                if collectors.is_none() {
                    usage();
                }
            }
            "--faults" => {
                faults = args.next().and_then(|v| v.parse().ok());
                if faults.is_none() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other if target.is_none() => target = Some(other.to_string()),
            _ => usage(),
        }
    }
    let target = target.unwrap_or_else(|| "top".to_string());

    eprintln!("generating universe (seed {seed}, scale {scale:?}) ...");
    let repro = if let Some(k) = faults {
        let (w, c) = (workers.unwrap_or(1), collectors.unwrap_or(2));
        match Repro::new_supervised(seed, scale, w, c, k) {
            Ok((repro, summary)) => {
                eprint!("{}", summary.render());
                repro
            }
            Err(e) => {
                eprintln!("error: supervised pipeline failed: {e}");
                std::process::exit(1);
            }
        }
    } else if workers.is_some() || collectors.is_some() {
        let (w, c) = (workers.unwrap_or(1), collectors.unwrap_or(1));
        let (repro, summary) = Repro::new_via_pipeline(seed, scale, w, c);
        eprint!("{}", summary.render());
        repro
    } else {
        Repro::new(seed, scale)
    };
    let daily = &repro.daily;
    // The engine's memoized union: the same set every figure shares.
    let active = repro.engine.all_active();
    eprintln!(
        "activity: {} distinct active addresses over {} days",
        active.len(),
        daily.num_days
    );
    let pop = repro.universe.population_summary();
    eprintln!(
        "population: {} blocks ({} static, {} dynamic, {} gateway, {} server, {} router)",
        pop.total(),
        pop.static_blocks,
        pop.dynamic_blocks,
        pop.gateway_blocks,
        pop.server_blocks,
        pop.router_blocks
    );

    let block = match target.as_str() {
        "top" => daily
            .blocks
            .iter()
            .max_by_key(|r| r.ip_traffic.len())
            .map(|r| r.block)
            .expect("universe has activity"),
        "changed" => repro
            .universe
            .blocks
            .iter()
            .filter(|e| e.restructure.is_some())
            .filter_map(|e| daily.block(e.block).map(|r| (e.block, r.ip_traffic.len())))
            .max_by_key(|&(_, n)| n)
            .map(|(b, _)| b)
            .expect("universe has restructured blocks"),
        s => {
            let addr: Addr = s.parse().unwrap_or_else(|_| {
                eprintln!("error: {s:?} is not an IPv4 address, 'top', or 'changed'");
                std::process::exit(2);
            });
            Block24::of(addr)
        }
    };

    println!("== {} ==", block);

    // Observable: dataset view.
    match daily.block(block) {
        Some(rec) => {
            let m = matrix::BlockMetrics::of(rec, 0..daily.num_days);
            println!("\nactivity ({} days): FD={} STU={:.3}", daily.num_days, m.fd, m.stu);
            for line in matrix::render(rec, daily.num_days, 16).lines() {
                println!("  |{line}|");
            }
            println!(
                "traffic: {} hits total, {} UA samples, {} unique UA strings",
                rec.total_hits, rec.ua_samples, rec.ua_unique
            );
            let mut heavy = rec.ip_traffic.clone();
            heavy.sort_by_key(|t| std::cmp::Reverse(t.total_hits));
            println!("heaviest addresses:");
            for t in heavy.iter().take(5) {
                println!(
                    "  {}  {:>4} days, {:>10} hits (median {}/day)",
                    block.addr(t.host),
                    t.days_active,
                    t.total_hits,
                    t.median_daily_hits
                );
            }
            let found = outages::block_outages(rec, daily.num_days, &outages::OutageParams::default());
            for o in &found {
                println!("outage detected: days {}..{} ({} dark days)", o.start, o.start + o.days, o.days);
            }
            if let Some(p) = persistence::block_persistence(rec, 0..daily.num_days) {
                println!(
                    "persistence: reuse ratio {:.2}, mean streak {:.1} days → TTL {:?}",
                    p.reuse_ratio,
                    p.mean_streak_days,
                    persistence::recommend_ttl(&p, false)
                );
            }
        }
        None => println!("\nno CDN activity in the daily window"),
    }

    // Year view from the weekly dataset.
    if let Ok(i) = repro
        .weekly
        .blocks
        .binary_search_by_key(&block, |(b, _)| *b)
    {
        let (_, rows) = &repro.weekly.blocks[i];
        println!(
            "\nyear view ({} weeks): FD={} STU={:.3}",
            repro.weekly.num_weeks,
            repro.weekly.filling_degree(block),
            repro.weekly.stu(block)
        );
        for line in matrix::render_weekly(rows, repro.weekly.num_weeks, 16).lines() {
            println!("  |{line}|");
        }
    }

    // Observable: reverse DNS and routing.
    let hint = classify_block(repro.universe.ptr_table(), block, 16);
    println!("\nreverse DNS classification: {hint:?}");
    if let Some(name) = repro.universe.ptr_table().name_of(block.addr(1)) {
        println!("  e.g. {} -> {}", block.addr(1), name);
    }
    match repro.universe.bgp().base().route_of(block.addr(1)) {
        Some(route) => println!("routing: {} via {}", route.prefix, route.origin),
        None => println!("routing: not announced"),
    }
    if let Some(d) = repro.universe.delegations().lookup(block.addr(1)) {
        println!("delegation: {} -> {} / {}", d.prefix, d.rir, d.country);
    }

    // Ground truth, if requested.
    if truth {
        if let Some(e) = repro.universe.blocks.iter().find(|e| e.block == block) {
            let a = &repro.universe.ases[e.as_index];
            println!("\n-- ground truth --");
            println!("owner: {} ({:?}, {})", a.asn, a.kind, a.country);
            println!("policy: {:?}", e.policy);
            if let Some((day, p)) = &e.restructure {
                println!("restructure at absolute day {day}: {p:?}");
            }
            if let Some((start, len)) = e.outage {
                println!("outage at absolute day {start} for {len} days");
            }
            println!("alive weeks: {:?} of {}", e.alive_weeks, repro.universe.config().weeks);
        } else {
            println!("\n-- ground truth --\nblock not part of this universe");
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: inspect <BLOCK|top|changed> [--seed N] [--scale tiny|small|full] [--truth]\n       [--workers N] [--collectors M] [--faults K]"
    );
    std::process::exit(2);
}
