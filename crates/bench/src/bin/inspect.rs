//! `inspect` — drill into one `/24` of a synthetic universe the way
//! the paper drills into its Figure 6/7 exemplars: activity matrix,
//! FD/STU metrics, per-address traffic, reverse DNS, routing, probe
//! responses, and (optionally) the generator's ground truth.
//!
//! ```text
//! inspect <BLOCK|top|changed> [--seed N] [--scale tiny|small|full] [--truth]
//!         [--workers N] [--collectors M] [--faults K]
//! ```
//!
//! `--workers`/`--collectors` build the datasets through the sharded
//! log pipeline (identical output, printed throughput) instead of the
//! direct builders. `--faults K` uses the supervised pipeline with `K`
//! deterministic injected faults and prints coverage, retry, and
//! quarantine accounting — inspect a block of a degraded run to see
//! exactly what a lost shard looks like downstream.
//!
//! `BLOCK` is a `/24` network like `101.0.64.0`; `top` picks the
//! busiest block, `changed` the busiest block with a mid-window
//! restructure.
//!
//! Store-maintenance and observability subcommands ride along:
//!
//! ```text
//! inspect mkstore <DIR> [--seed N] [--scale tiny|small|full] [--atomic] [--corrupt]
//! inspect fsck <DIR> [--repair]
//! inspect metrics <DIR>
//! inspect metrics-check <SNAPSHOT.json> <SCHEMA.json>
//! inspect perf-check <BENCH.json> [--min-speedup X] [--max-figure-ratio Y] [--floor-ms F]
//! inspect trace <TRACES.json> [TRACE_ID] [--schema FILE]
//! inspect slo-check <BENCH_serve.json> [--max-shed-rate F] [--max-p99-us F] [--max-burns N]
//! inspect worker --root DIR --shard S --shards N --emitters E --epoch G --attempt A ...
//! ```
//!
//! `worker` runs one distributed-collection shard grant (see
//! [`ipactive_bench::worker_cli`]) — it is the process the healing
//! coordinator spawns, exposed here so harnesses can drive a worker
//! directly.
//!
//! `mkstore` persists a deterministic universe into a log-store
//! directory (`--atomic` uses the manifest-journaled batch commit;
//! `--corrupt` then applies a fixed damage pattern, for fixtures).
//! `fsck` verifies the store — manifests, footers, frames — printing
//! the deterministic report to stdout; with `--repair` it quarantines
//! damaged files (with provenance sidecars), salvages what survives,
//! and reconciles orphans. Exit status: 0 when healthy, 1 when the
//! pass found (or repaired) damage.
//!
//! `metrics` opens a store with an observability registry attached,
//! tolerantly reads every day, runs a dry (non-repairing) fsck pass,
//! and prints the resulting deterministic metrics snapshot as JSON —
//! store counters, damage events, and fsck verdicts all in one
//! document, guaranteed to agree with `inspect fsck`'s report because
//! both derive from the same pass. `metrics-check` validates a
//! snapshot JSON document against a JSON-schema file (the CI
//! `metrics-golden` job drives it). `perf-check` gates a
//! `BENCH_repro.json` written by `repro --timings`: end-to-end
//! speedup must reach `--min-speedup`, and no figure's cached run may
//! exceed `--max-figure-ratio` times its serial-uncached time
//! (figures faster than `--floor-ms` both ways are exempt — at that
//! size the ratio measures timer noise, not work).
//!
//! `trace` renders the span trees from a trace document — either a
//! worker's exported single-trace file or the multi-trace document
//! `repro serve-bench --traces-out` writes — as an indented tree, one
//! line per span; name a `TRACE_ID` (hex) to print just that trace,
//! and `--schema` additionally validates the document against a
//! JSON-schema file. `slo-check` gates a `BENCH_serve.json`: the
//! client-observed shed rate, p99, and (optionally) the server's
//! burned SLO windows must stay inside the given ceilings.

use ipactive_bench::{Repro, Scale};
use ipactive_core::{matrix, outages, persistence};
use ipactive_dns::classify_block;
use ipactive_net::{ActiveSet, Addr, Block24};

fn main() {
    {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match args.first().map(String::as_str) {
            Some("fsck") => run_fsck(&args[1..]),
            Some("mkstore") => run_mkstore(&args[1..]),
            Some("metrics") => run_metrics(&args[1..]),
            Some("metrics-check") => run_metrics_check(&args[1..]),
            Some("perf-check") => run_perf_check(&args[1..]),
            Some("trace") => run_trace(&args[1..]),
            Some("slo-check") => run_slo_check(&args[1..]),
            Some("worker") => ipactive_bench::worker_cli::run(&args[1..]),
            _ => {}
        }
    }
    let mut seed: u64 = 2015;
    let mut scale = Scale::Small;
    let mut truth = false;
    let mut workers: Option<usize> = None;
    let mut collectors: Option<usize> = None;
    let mut faults: Option<usize> = None;
    let mut target: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                seed = args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage());
            }
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--truth" => truth = true,
            "--workers" => {
                workers = args.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n >= 1);
                if workers.is_none() {
                    usage();
                }
            }
            "--collectors" => {
                collectors = args.next().and_then(|v| v.parse().ok()).filter(|&n: &usize| n >= 1);
                if collectors.is_none() {
                    usage();
                }
            }
            "--faults" => {
                faults = args.next().and_then(|v| v.parse().ok());
                if faults.is_none() {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            other if target.is_none() => target = Some(other.to_string()),
            _ => usage(),
        }
    }
    let target = target.unwrap_or_else(|| "top".to_string());

    eprintln!("generating universe (seed {seed}, scale {scale:?}) ...");
    let repro = if let Some(k) = faults {
        let (w, c) = (workers.unwrap_or(1), collectors.unwrap_or(2));
        match Repro::new_supervised(seed, scale, w, c, k) {
            Ok((repro, summary)) => {
                eprint!("{}", summary.render());
                repro
            }
            Err(e) => {
                eprintln!("error: supervised pipeline failed: {e}");
                std::process::exit(1);
            }
        }
    } else if workers.is_some() || collectors.is_some() {
        let (w, c) = (workers.unwrap_or(1), collectors.unwrap_or(1));
        let (repro, summary) = Repro::new_via_pipeline(seed, scale, w, c);
        eprint!("{}", summary.render());
        repro
    } else {
        Repro::new(seed, scale)
    };
    let daily = &repro.daily;
    // The engine's memoized union: the same set every figure shares.
    let active = repro.engine.all_active();
    eprintln!(
        "activity: {} distinct active addresses over {} days",
        active.len(),
        daily.num_days
    );
    let pop = repro.universe.population_summary();
    eprintln!(
        "population: {} blocks ({} static, {} dynamic, {} gateway, {} server, {} router)",
        pop.total(),
        pop.static_blocks,
        pop.dynamic_blocks,
        pop.gateway_blocks,
        pop.server_blocks,
        pop.router_blocks
    );

    let block = match target.as_str() {
        "top" => daily
            .blocks
            .iter()
            .max_by_key(|r| r.ip_traffic.len())
            .map(|r| r.block)
            .expect("universe has activity"),
        "changed" => repro
            .universe
            .blocks
            .iter()
            .filter(|e| e.restructure.is_some())
            .filter_map(|e| daily.block(e.block).map(|r| (e.block, r.ip_traffic.len())))
            .max_by_key(|&(_, n)| n)
            .map(|(b, _)| b)
            .expect("universe has restructured blocks"),
        s => {
            let addr: Addr = s.parse().unwrap_or_else(|_| {
                eprintln!("error: {s:?} is not an IPv4 address, 'top', or 'changed'");
                std::process::exit(2);
            });
            Block24::of(addr)
        }
    };

    println!("== {} ==", block);

    // Observable: dataset view.
    match daily.block(block) {
        Some(rec) => {
            let m = matrix::BlockMetrics::of(rec, 0..daily.num_days);
            println!("\nactivity ({} days): FD={} STU={:.3}", daily.num_days, m.fd, m.stu);
            for line in matrix::render(rec, daily.num_days, 16).lines() {
                println!("  |{line}|");
            }
            println!(
                "traffic: {} hits total, {} UA samples, {} unique UA strings",
                rec.total_hits, rec.ua_samples, rec.ua_unique
            );
            let mut heavy = rec.ip_traffic.clone();
            heavy.sort_by_key(|t| std::cmp::Reverse(t.total_hits));
            println!("heaviest addresses:");
            for t in heavy.iter().take(5) {
                println!(
                    "  {}  {:>4} days, {:>10} hits (median {}/day)",
                    block.addr(t.host),
                    t.days_active,
                    t.total_hits,
                    t.median_daily_hits
                );
            }
            let found = outages::block_outages(rec, daily.num_days, &outages::OutageParams::default());
            for o in &found {
                println!("outage detected: days {}..{} ({} dark days)", o.start, o.start + o.days, o.days);
            }
            if let Some(p) = persistence::block_persistence(rec, 0..daily.num_days) {
                println!(
                    "persistence: reuse ratio {:.2}, mean streak {:.1} days → TTL {:?}",
                    p.reuse_ratio,
                    p.mean_streak_days,
                    persistence::recommend_ttl(&p, false)
                );
            }
        }
        None => println!("\nno CDN activity in the daily window"),
    }

    // Year view from the weekly dataset.
    if let Ok(i) = repro
        .weekly
        .blocks
        .binary_search_by_key(&block, |(b, _)| *b)
    {
        let (_, rows) = &repro.weekly.blocks[i];
        println!(
            "\nyear view ({} weeks): FD={} STU={:.3}",
            repro.weekly.num_weeks,
            repro.weekly.filling_degree(block),
            repro.weekly.stu(block)
        );
        for line in matrix::render_weekly(rows, repro.weekly.num_weeks, 16).lines() {
            println!("  |{line}|");
        }
    }

    // Observable: reverse DNS and routing.
    let hint = classify_block(repro.universe.ptr_table(), block, 16);
    println!("\nreverse DNS classification: {hint:?}");
    if let Some(name) = repro.universe.ptr_table().name_of(block.addr(1)) {
        println!("  e.g. {} -> {}", block.addr(1), name);
    }
    match repro.universe.bgp().base().route_of(block.addr(1)) {
        Some(route) => println!("routing: {} via {}", route.prefix, route.origin),
        None => println!("routing: not announced"),
    }
    if let Some(d) = repro.universe.delegations().lookup(block.addr(1)) {
        println!("delegation: {} -> {} / {}", d.prefix, d.rir, d.country);
    }

    // Ground truth, if requested.
    if truth {
        if let Some(e) = repro.universe.blocks.iter().find(|e| e.block == block) {
            let a = &repro.universe.ases[e.as_index];
            println!("\n-- ground truth --");
            println!("owner: {} ({:?}, {})", a.asn, a.kind, a.country);
            println!("policy: {:?}", e.policy);
            if let Some((day, p)) = &e.restructure {
                println!("restructure at absolute day {day}: {p:?}");
            }
            if let Some((start, len)) = e.outage {
                println!("outage at absolute day {start} for {len} days");
            }
            println!("alive weeks: {:?} of {}", e.alive_weeks, repro.universe.config().weeks);
        } else {
            println!("\n-- ground truth --\nblock not part of this universe");
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: inspect <BLOCK|top|changed> [--seed N] [--scale tiny|small|full] [--truth]\n       [--workers N] [--collectors M] [--faults K]\n       inspect mkstore <DIR> [--seed N] [--scale tiny|small|full] [--atomic] [--corrupt]\n       inspect fsck <DIR> [--repair]\n       inspect metrics <DIR>\n       inspect metrics-check <SNAPSHOT.json> <SCHEMA.json>\n       inspect perf-check <BENCH.json> [--min-speedup X] [--max-figure-ratio Y] [--floor-ms F]\n       inspect trace <TRACES.json> [TRACE_ID] [--schema FILE]\n       inspect slo-check <BENCH_serve.json> [--max-shed-rate F] [--max-p99-us F] [--max-burns N]"
    );
    std::process::exit(2);
}

/// `inspect perf-check <BENCH.json> [--min-speedup X]
/// [--max-figure-ratio Y] [--floor-ms F]` — gate a `BENCH_repro.json`
/// written by `repro --timings`. Fails (exit 1) when the end-to-end
/// cached speedup falls below `--min-speedup` (default 2.0) or any
/// figure's cached-parallel time exceeds `--max-figure-ratio` (default
/// 1.5) times its serial-uncached time. Figures where both sides run
/// under `--floor-ms` (default 20) are exempt from the per-figure
/// ratio: at that size the ratio amplifies scheduler jitter, not a
/// regression. Exit status: 0 pass, 1 regression, 2 unreadable.
fn run_perf_check(args: &[String]) -> ! {
    let mut path: Option<&str> = None;
    let mut min_speedup = 2.0f64;
    let mut max_ratio = 1.5f64;
    let mut floor_ms = 20.0f64;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> f64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--min-speedup" => min_speedup = num("--min-speedup"),
            "--max-figure-ratio" => max_ratio = num("--max-figure-ratio"),
            "--floor-ms" => floor_ms = num("--floor-ms"),
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = ipactive_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let field = |v: &ipactive_obs::json::Json, key: &str| -> f64 {
        v.get(key).and_then(|x| x.as_f64()).unwrap_or_else(|| {
            eprintln!("error: {path}: missing numeric field {key:?}");
            std::process::exit(2);
        })
    };
    let total = field(&doc, "total_ms");
    let serial = field(&doc, "serial_uncached_total_ms");
    let speedup = serial / total.max(1e-9);
    let mut failures = 0usize;
    println!(
        "end-to-end: {serial:.1} ms serial-uncached -> {total:.1} ms cached = {speedup:.2}x \
         (gate: >= {min_speedup:.2}x)"
    );
    if speedup < min_speedup {
        println!("FAIL  end-to-end speedup below the gate");
        failures += 1;
    }
    let figures = doc.get("figures").and_then(|f| f.as_array()).unwrap_or_else(|| {
        eprintln!("error: {path}: missing \"figures\" array");
        std::process::exit(2);
    });
    for f in figures {
        let name = f.get("name").and_then(|n| n.as_str()).unwrap_or("?");
        let ms = field(f, "ms");
        let base = field(f, "serial_uncached_ms");
        if ms < floor_ms && base < floor_ms {
            continue;
        }
        if ms > max_ratio * base {
            println!(
                "FAIL  {name}: cached {ms:.1} ms > {max_ratio:.2}x serial-uncached {base:.1} ms"
            );
            failures += 1;
        }
    }
    if failures == 0 {
        println!(
            "perf-check: pass ({} figures, per-figure gate {max_ratio:.2}x over {floor_ms:.0} ms)",
            figures.len()
        );
        std::process::exit(0);
    }
    println!("perf-check: {failures} regression(s)");
    std::process::exit(1);
}

/// `inspect trace <TRACES.json> [TRACE_ID] [--schema FILE]` — render
/// the span trees of a trace document as indented trees. Accepts both
/// document shapes the system writes: a single-trace file (a worker's
/// exported `trace-AA.json`, or a `Trace` wire response body) and the
/// multi-trace document from `repro serve-bench --traces-out` /
/// [`ipactive_obs::Registry::traces_json`]. A hex `TRACE_ID` narrows
/// the output to one trace; `--schema` first validates the document
/// against a JSON-schema-subset file. Exit status: 0 rendered, 1 when
/// the named trace is absent or the schema is violated, 2 unreadable.
fn run_trace(args: &[String]) -> ! {
    let mut path: Option<&str> = None;
    let mut wanted: Option<u64> = None;
    let mut schema_path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--schema" => match it.next() {
                Some(p) => schema_path = Some(p),
                None => usage(),
            },
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            other if wanted.is_none() && !other.starts_with('-') => {
                wanted = match u64::from_str_radix(other, 16) {
                    Ok(id) => Some(id),
                    Err(_) => {
                        eprintln!("error: {other:?} is not a hex trace id");
                        std::process::exit(2);
                    }
                }
            }
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = ipactive_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    if let Some(schema_path) = schema_path {
        let schema_text = std::fs::read_to_string(schema_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {schema_path}: {e}");
            std::process::exit(2);
        });
        let schema = ipactive_obs::json::parse(&schema_text).unwrap_or_else(|e| {
            eprintln!("error: {schema_path}: {e}");
            std::process::exit(2);
        });
        if let Err(e) = ipactive_obs::json::check_schema(&doc, &schema) {
            eprintln!("error: {path}: schema violation: {e}");
            std::process::exit(1);
        }
        eprintln!("{path}: valid against {schema_path}");
    }
    // One extractor for both shapes: a trace object is
    // {"trace_id": hex, "spans": [...]}, and the multi-trace document
    // wraps a list of them under "traces".
    let extract = |v: &ipactive_obs::json::Json| -> (u64, Vec<ipactive_obs::SpanRecord>) {
        let bad = |what: &str| -> ! {
            eprintln!("error: {path}: {what}");
            std::process::exit(2);
        };
        let trace = v
            .get("trace_id")
            .and_then(ipactive_obs::json::Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or_else(|| bad("missing or malformed trace_id"));
        let spans = v
            .get("spans")
            .and_then(ipactive_obs::json::Json::as_array)
            .unwrap_or_else(|| bad("missing spans array"))
            .iter()
            .map(|s| {
                let num = |key: &str| {
                    s.get(key)
                        .and_then(ipactive_obs::json::Json::as_f64)
                        .filter(|n| n.fract() == 0.0 && *n >= 0.0)
                        .map(|n| n as u64)
                        .unwrap_or_else(|| bad(&format!("span missing integer `{key}`")))
                };
                let text = |key: &str| {
                    s.get(key)
                        .and_then(ipactive_obs::json::Json::as_str)
                        .map(str::to_string)
                        .unwrap_or_else(|| bad(&format!("span missing string `{key}`")))
                };
                ipactive_obs::SpanRecord {
                    seq: num("seq"),
                    parent: num("parent"),
                    name: text("name"),
                    detail: text("detail"),
                }
            })
            .collect();
        (trace, spans)
    };
    let traces: Vec<(u64, Vec<ipactive_obs::SpanRecord>)> = match doc
        .get("traces")
        .and_then(ipactive_obs::json::Json::as_array)
    {
        Some(list) => list.iter().map(extract).collect(),
        None => vec![extract(&doc)],
    };
    let mut printed = 0usize;
    for (trace, spans) in &traces {
        if wanted.is_some_and(|id| id != *trace) {
            continue;
        }
        printed += 1;
        println!("trace {trace:016x} ({} spans)", spans.len());
        // Indent each span under its parent; orphans (parent seq not
        // in the document — e.g. a worker file before stitching)
        // surface at the root level rather than vanishing.
        fn render(spans: &[ipactive_obs::SpanRecord], parent: u64, depth: usize) {
            for s in spans.iter().filter(|s| s.parent == parent) {
                let pad = "  ".repeat(depth + 1);
                if s.detail.is_empty() {
                    println!("{pad}{:>3}  {}", s.seq, s.name);
                } else {
                    println!("{pad}{:>3}  {}  [{}]", s.seq, s.name, s.detail);
                }
                render(spans, s.seq, depth + 1);
            }
        }
        render(spans, 0, 0);
        let known: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.seq).collect();
        for s in spans.iter().filter(|s| s.parent != 0 && !known.contains(&s.parent)) {
            println!("   {:>3}  {}  [{}]  (orphan: parent {} absent)", s.seq, s.name, s.detail, s.parent);
            render(spans, s.seq, 1);
        }
    }
    if printed == 0 {
        match wanted {
            Some(id) => eprintln!("error: trace {id:016x} not in {path}"),
            None => eprintln!("{path}: no traces"),
        }
        std::process::exit(1);
    }
    std::process::exit(0);
}

/// `inspect slo-check <BENCH_serve.json> [--max-shed-rate F]
/// [--max-p99-us F] [--max-burns N]` — gate a serve-bench record
/// against declared service-level objectives: the client-observed
/// shed rate (default ceiling 0.5) and p99 latency (default
/// 1,000,000 us) from the `report` object, plus — when `--max-burns`
/// is given — the server-side count of burned SLO windows from the
/// `slo` object. Exit status: 0 pass, 1 breach, 2 unreadable.
fn run_slo_check(args: &[String]) -> ! {
    let mut path: Option<&str> = None;
    let mut max_shed_rate = 0.5f64;
    let mut max_p99_us = 1_000_000.0f64;
    let mut max_burns: Option<f64> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut num = |flag: &str| -> f64 {
            it.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("error: {flag} needs a number");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--max-shed-rate" => max_shed_rate = num("--max-shed-rate"),
            "--max-p99-us" => max_p99_us = num("--max-p99-us"),
            "--max-burns" => max_burns = Some(num("--max-burns")),
            "--help" | "-h" => usage(),
            other if path.is_none() && !other.starts_with('-') => path = Some(other),
            _ => usage(),
        }
    }
    let Some(path) = path else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error: cannot read {path}: {e}");
        std::process::exit(2);
    });
    let doc = ipactive_obs::json::parse(&text).unwrap_or_else(|e| {
        eprintln!("error: {path}: {e}");
        std::process::exit(2);
    });
    let field = |obj: &str, key: &str| -> f64 {
        doc.get(obj).and_then(|o| o.get(key)).and_then(|x| x.as_f64()).unwrap_or_else(|| {
            eprintln!("error: {path}: missing numeric field {obj}.{key}");
            std::process::exit(2);
        })
    };
    let shed_rate = field("report", "shed_rate");
    let p99_us = field("report", "p99_us");
    let mut failures = 0usize;
    println!("shed rate: {shed_rate:.4} (gate: <= {max_shed_rate:.4})");
    if shed_rate > max_shed_rate {
        println!("FAIL  shed rate above the ceiling");
        failures += 1;
    }
    println!("client p99: {p99_us:.0} us (gate: <= {max_p99_us:.0} us)");
    if p99_us > max_p99_us {
        println!("FAIL  client p99 above the ceiling");
        failures += 1;
    }
    if let Some(max_burns) = max_burns {
        let burns = field("slo", "burns");
        println!("burned SLO windows: {burns:.0} (gate: <= {max_burns:.0})");
        if burns > max_burns {
            println!("FAIL  burned windows above the ceiling");
            failures += 1;
        }
    }
    if failures == 0 {
        println!("slo-check: pass");
        std::process::exit(0);
    }
    println!("slo-check: {failures} breach(es)");
    std::process::exit(1);
}

/// `inspect metrics <DIR>` — read a store through an observability
/// registry (tolerant day reads plus a dry fsck pass) and print the
/// deterministic metrics snapshot. The fsck counters and events in
/// the snapshot derive from the same [`ipactive_logfmt::FsckReport`]
/// that `inspect fsck` renders, so the two commands agree on counts
/// by construction.
fn run_metrics(args: &[String]) -> ! {
    let mut dir: Option<&str> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => usage(),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let registry = ipactive_obs::Registry::new();
    let store = match ipactive_logfmt::LogStore::open_obs(dir, &registry) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: cannot open store at {dir}: {e}");
            std::process::exit(2);
        }
    };
    if let Err(e) = store.for_each_day(|_, _| {}) {
        eprintln!("error: reading store days failed: {e}");
        std::process::exit(2);
    }
    let healthy = match ipactive_logfmt::fsck_obs(
        store.fs(),
        std::path::Path::new(dir),
        false,
        &registry,
    ) {
        Ok(report) => report.is_healthy(),
        Err(e) => {
            eprintln!("error: fsck pass failed: {e}");
            std::process::exit(2);
        }
    };
    print!(
        "{}",
        registry.snapshot(ipactive_obs::SnapshotMode::Deterministic).to_json()
    );
    std::process::exit(if healthy { 0 } else { 1 });
}

/// `inspect metrics-check <SNAPSHOT.json> <SCHEMA.json>` — parse a
/// metrics snapshot and validate it against a JSON-schema-subset
/// document. Exit status: 0 valid, 1 invalid, 2 unreadable.
fn run_metrics_check(args: &[String]) -> ! {
    let (Some(snapshot_path), Some(schema_path), None) =
        (args.first(), args.get(1), args.get(2))
    else {
        usage()
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str, text: &str| {
        ipactive_obs::json::parse(text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2);
        })
    };
    let snapshot = parse(snapshot_path, &read(snapshot_path));
    let schema = parse(schema_path, &read(schema_path));
    match ipactive_obs::json::check_schema(&snapshot, &schema) {
        Ok(()) => {
            println!("{snapshot_path}: valid against {schema_path}");
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("error: {snapshot_path}: schema violation: {e}");
            std::process::exit(1);
        }
    }
}

/// `inspect fsck <DIR> [--repair]` — verify (and optionally repair) a
/// log-store directory, printing the deterministic report to stdout.
fn run_fsck(args: &[String]) -> ! {
    let mut dir: Option<&str> = None;
    let mut repair = false;
    for arg in args {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => usage(),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    match ipactive_logfmt::fsck(&ipactive_logfmt::RealFs, std::path::Path::new(dir), repair) {
        Ok(report) => {
            print!("{}", report.render());
            std::process::exit(if report.is_healthy() { 0 } else { 1 });
        }
        Err(e) => {
            eprintln!("error: fsck failed: {e}");
            std::process::exit(2);
        }
    }
}

/// `inspect mkstore <DIR> [--seed N] [--scale ...] [--atomic]
/// [--corrupt]` — persist a deterministic universe into a store
/// directory; `--corrupt` then applies a fixed damage pattern so CI
/// can exercise `fsck --repair` against a golden report.
fn run_mkstore(args: &[String]) -> ! {
    let mut dir: Option<String> = None;
    let mut seed: u64 = 2015;
    let mut scale = Scale::Tiny;
    let mut atomic = false;
    let mut corrupt = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--scale" => {
                scale = match it.next().map(String::as_str) {
                    Some("tiny") => Scale::Tiny,
                    Some("small") => Scale::Small,
                    Some("full") => Scale::Full,
                    _ => usage(),
                };
            }
            "--atomic" => atomic = true,
            "--corrupt" => corrupt = true,
            "--help" | "-h" => usage(),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(dir) = dir else { usage() };
    let universe = ipactive_cdnsim::Universe::generate(scale.config(seed));
    let num_days = universe.config().daily_days;
    let mut store = match ipactive_logfmt::LogStore::open(&dir) {
        Ok(store) => store,
        Err(e) => {
            eprintln!("error: cannot open store at {dir}: {e}");
            std::process::exit(2);
        }
    };
    let written = if atomic {
        ipactive_cdnsim::persist_daily_atomic(&universe, &mut store).map(|gen| {
            eprintln!("committed {num_days} days atomically (manifest generation {gen})");
        })
    } else {
        ipactive_cdnsim::persist_daily(&universe, &store).map(|()| {
            eprintln!("wrote {num_days} days incrementally");
        })
    };
    if let Err(e) = written {
        eprintln!("error: persist failed: {e}");
        std::process::exit(2);
    }
    if corrupt {
        // A fixed damage pattern (independent of seed/scale knobs so
        // the golden fsck report stays stable): cut the tail off day
        // 1, flip a mid-file byte of day 0, plant a stale tmp file.
        let damage = |day: u16, f: &dyn Fn(&mut Vec<u8>)| {
            let path = store.resolved_day_path(day);
            let mut bytes = std::fs::read(&path).unwrap_or_else(|e| {
                eprintln!("error: cannot read {}: {e}", path.display());
                std::process::exit(2);
            });
            f(&mut bytes);
            std::fs::write(&path, bytes).expect("rewrite damaged day");
        };
        damage(1, &|bytes| bytes.truncate(bytes.len() - bytes.len() / 4 - 1));
        damage(0, &|bytes| {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x55;
        });
        std::fs::write(
            std::path::Path::new(&dir).join(".day-0042.1-1.tmp"),
            b"crashed writer residue",
        )
        .expect("plant tmp file");
        eprintln!("applied fixture damage: day 1 truncated, day 0 corrupted, stale tmp planted");
    }
    std::process::exit(0);
}
