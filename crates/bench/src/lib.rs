//! # ipactive-bench
//!
//! The figure-regeneration harness: one function per table and figure
//! of the paper, each generating the corresponding data series from a
//! synthetic universe and formatting it the way the paper reports it.
//! The `repro` binary drives these; EXPERIMENTS.md records paper-vs-
//! measured for every entry.

#![forbid(unsafe_code)]

pub mod worker_cli;

// The analysis engine moved down into `ipactive-core` so the serving
// layer can build on it without a bench dependency; re-exported here
// so existing callers keep their import paths.
pub use ipactive_core::engine::{AnalysisCtx, CacheStats};

use ipactive_cdnsim::{
    emit_daily_shard_buffers, emit_weekly_shard_buffers, monthly_counts, parallel_pipeline_obs,
    parallel_pipeline_weekly_obs, supervised_collect_daily_obs, supervised_collect_weekly_obs,
    FaultPlan, GrowthModel, PipelineReport, RetryPolicy, SupervisedReport, Universe,
    UniverseConfig,
};
use ipactive_obs::{Registry, SnapshotMode, SpanSnapshot, TraceContext, TraceId};
use ipactive_core::par::{self, Parallelism};
use ipactive_core::{
    blocks, census, change, churn, demographics, events, geo, hosts, matrix, timeline,
    traffic, visibility, DailyDataset, WeeklyDataset,
};
use ipactive_net::{ActiveSet, TieredSet};
use ipactive_probe::{PortScanner, ScanCampaign, TracerouteCampaign};
use ipactive_rir::{YearMonth, RIR_EXHAUSTION};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Universe scale for a reproduction run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test scale (seconds even in debug builds).
    Tiny,
    /// Integration scale.
    Small,
    /// Full harness scale (use release builds).
    Full,
}

impl Scale {
    /// The matching universe config.
    pub fn config(self, seed: u64) -> UniverseConfig {
        match self {
            Scale::Tiny => UniverseConfig::tiny(seed),
            Scale::Small => UniverseConfig::small(seed),
            Scale::Full => UniverseConfig::default_scale(seed),
        }
    }

    /// The CLI spelling of the scale.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Full => "full",
        }
    }
}

/// A reproduction session: one universe plus its two datasets, the
/// shared analysis engine, and lazily-run probing campaigns.
///
/// Generic over the [`ActiveSet`] backend every activity set
/// materializes into; defaults to the tiered compressed
/// representation. `Repro::<ipactive_net::RefSet>` runs the identical
/// suite on the sorted-`Vec` oracle — the figure-differential test in
/// `tests/engine.rs` pins that both backends produce byte-identical
/// output.
pub struct Repro<S: ActiveSet = TieredSet> {
    /// The synthetic Internet.
    pub universe: Universe,
    /// The daily dataset (shared with [`Repro::engine`]).
    pub daily: Arc<DailyDataset>,
    /// The weekly dataset (shared with [`Repro::engine`]).
    pub weekly: Arc<WeeklyDataset>,
    /// The memoized activity-set cache every figure queries through.
    pub engine: AnalysisCtx<S>,
    registry: Registry,
    seed: u64,
    icmp: OnceLock<S>,
    servers: OnceLock<S>,
    routers: OnceLock<S>,
}

/// Throughput accounting for a pipeline-built [`Repro`] session: one
/// [`PipelineReport`] per dataset cadence.
pub struct PipelineRunSummary {
    /// Report of the daily-dataset pipeline run.
    pub daily: PipelineReport,
    /// Report of the weekly-dataset pipeline run.
    pub weekly: PipelineReport,
}

impl PipelineRunSummary {
    /// Renders both reports as an operator-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, report) in [("daily", &self.daily), ("weekly", &self.weekly)] {
            let _ = writeln!(
                out,
                "{name}: {} records, {:.1} MiB over {} workers -> {} collectors in {:.2}s ({:.0} records/s)",
                report.totals.records_read,
                report.totals.bytes as f64 / (1024.0 * 1024.0),
                report.workers,
                report.collectors(),
                report.elapsed.as_secs_f64(),
                report.records_per_sec(),
            );
            for (i, s) in report.per_collector.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "  collector {i}: {:>10} records, {:>8} buffers, {:>6.1} MiB, {} skipped, {} resyncs ({:.0} records/s)",
                    s.records_read,
                    s.buffers,
                    s.bytes as f64 / (1024.0 * 1024.0),
                    s.frames_skipped,
                    s.resyncs,
                    s.records_per_sec(),
                );
            }
        }
        out
    }
}

/// Accounting for a supervised (fault-injected or self-healing)
/// pipeline run: one [`SupervisedReport`] per dataset cadence.
pub struct SupervisedRunSummary {
    /// Supervised report of the daily-dataset run.
    pub daily: SupervisedReport,
    /// Supervised report of the weekly-dataset run.
    pub weekly: SupervisedReport,
    /// The fault plan the run was driven with.
    pub plan: FaultPlan,
}

impl SupervisedRunSummary {
    /// Renders both supervised reports — coverage, retries, and
    /// quarantine — as an operator-readable table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "fault plan: {} faults (seed {:#x})", self.plan.faults().len(), self.plan.seed);
        for (name, sup) in [("daily", &self.daily), ("weekly", &self.weekly)] {
            let _ = writeln!(
                out,
                "{name}: {} records over {} collectors, {} retries, {} dead-lettered frames, {}",
                sup.report.totals.records_read,
                sup.report.collectors(),
                sup.retries(),
                sup.quarantine.len(),
                sup.coverage.summary(),
            );
            for outcome in &sup.outcomes {
                let recovered =
                    outcome.buffers.iter().filter(|b| b.recovered()).count();
                let lost =
                    outcome.buffers.iter().filter(|b| !b.succeeded()).count();
                if recovered > 0 || lost > 0 {
                    let _ = writeln!(
                        out,
                        "  shard {}: completeness {:.3}, {} retries, {} buffers recovered, {} degraded",
                        outcome.shard,
                        outcome.completeness(),
                        outcome.retries(),
                        recovered,
                        lost,
                    );
                }
            }
        }
        out
    }
}

/// The experiment identifiers, in paper order.
pub const EXPERIMENTS: [&str; 24] = [
    "fig1", "table1", "fig2a", "fig2b", "fig3a", "fig3b", "fig4a", "fig4b", "fig4c",
    "fig5a", "fig5b", "fig5c", "table2", "fig6", "fig7", "fig8a", "fig8b", "fig8c",
    "fig9a", "fig9b", "fig9c", "fig10", "fig11", "fig12",
];

/// [`EXPERIMENTS`] indices in scheduling order: the measured
/// heavyweights first, so the figures that dominate the critical path
/// start before the cheap ones instead of landing on whichever worker
/// drains last. A pure constant — workers pull from this list through
/// a shared counter, and the report is still assembled in
/// [`EXPERIMENTS`] order, so output bytes never depend on it.
const HEAVY_FIRST: [usize; 24] = [
    10, 11, 7, 6, 9, 20, 16, // fig5b fig5c fig4b fig4a fig5a fig9c fig8b
    0, 1, 2, 3, 4, 5, 8, 12, 13, 14, 15, 17, 18, 19, 21, 22, 23,
];

/// Salt for per-figure trace ids: `mint(seed ^ FIG_SALT, figure
/// index)`, so a suite run's traces are a pure function of the seed
/// and every rerun (at any `--jobs`) mints the same ids.
const FIG_SALT: u64 = 0xF19_93BE;

impl<S: ActiveSet> Repro<S> {
    fn assemble(
        universe: Universe,
        daily: DailyDataset,
        weekly: WeeklyDataset,
        seed: u64,
        registry: Registry,
    ) -> Self {
        let daily = Arc::new(daily);
        let weekly = Arc::new(weekly);
        Repro {
            universe,
            engine: AnalysisCtx::new_with_obs(daily.clone(), weekly.clone(), &registry),
            daily,
            weekly,
            registry,
            seed,
            icmp: OnceLock::new(),
            servers: OnceLock::new(),
            routers: OnceLock::new(),
        }
    }

    /// The session-wide metrics registry. Every stage that built this
    /// session — pipeline collectors, the supervisor, the analysis
    /// engine's cache — accumulates into this one registry, so a
    /// single snapshot describes the whole run.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Builds the session over an explicit set backend (generates the
    /// universe and both datasets). `Repro::new` is the default-backend
    /// spelling; the differential suite calls this with both backends.
    pub fn with_backend(seed: u64, scale: Scale) -> Self {
        let registry = Registry::new();
        let universe = Universe::generate(scale.config(seed));
        let (daily, weekly) = {
            let _span = registry.span("repro.build");
            (universe.build_daily(), universe.build_weekly())
        };
        Repro::assemble(universe, daily, weekly, seed, registry)
    }
}

/// Constructors on the default (tiered) backend. Like
/// `HashMap::new`'s relationship to its hasher parameter, these live
/// on the defaulted type so plain `Repro::new(...)` needs no
/// annotation; `Repro::<S>::with_backend` is the generic spelling.
impl Repro {
    /// Builds the session (generates the universe and both datasets).
    pub fn new(seed: u64, scale: Scale) -> Repro {
        Repro::with_backend(seed, scale)
    }

    /// Builds the session with both datasets produced by the sharded
    /// log pipeline (`workers` edge threads × `collectors` collector
    /// threads) instead of the direct builders. The datasets are
    /// guaranteed identical to [`Repro::new`]'s — the differential
    /// suite pins that — so every experiment runs unchanged; the
    /// returned summary reports the pipeline's per-stage throughput.
    pub fn new_via_pipeline(
        seed: u64,
        scale: Scale,
        workers: usize,
        collectors: usize,
    ) -> (Repro, PipelineRunSummary) {
        let registry = Registry::new();
        let universe = Universe::generate(scale.config(seed));
        let (daily, daily_report) = {
            let _span = registry.span("repro.pipeline.daily");
            parallel_pipeline_obs(&universe, workers, collectors, &registry)
        };
        let (weekly, weekly_report) = {
            let _span = registry.span("repro.pipeline.weekly");
            parallel_pipeline_weekly_obs(&universe, workers, collectors, &registry)
        };
        let repro = Repro::assemble(universe, daily, weekly, seed, registry);
        (repro, PipelineRunSummary { daily: daily_report, weekly: weekly_report })
    }

    /// Builds the session through the *supervised* pipeline with
    /// `faults` deterministic injected faults (crashes, corruption,
    /// drops, stalls — see [`FaultPlan::scatter`]). Transient faults
    /// heal via checkpointed replay, so with few faults the datasets
    /// usually equal [`Repro::new`]'s; permanent faults degrade the
    /// run gracefully and the datasets carry a coverage grid saying
    /// exactly which shards lost data. With `faults == 0` this is a
    /// supervised-but-clean run (coverage 1.0).
    pub fn new_supervised(
        seed: u64,
        scale: Scale,
        workers: usize,
        collectors: usize,
        faults: usize,
    ) -> std::io::Result<(Repro, SupervisedRunSummary)> {
        let registry = Registry::new();
        let universe = Universe::generate(scale.config(seed));
        let daily_buffers = emit_daily_shard_buffers(&universe, workers, collectors)?;
        let weekly_buffers = emit_weekly_shard_buffers(&universe, workers, collectors)?;
        let buffers_per_shard =
            daily_buffers.iter().map(Vec::len).max().unwrap_or(0);
        let plan = FaultPlan::scatter(seed, collectors, buffers_per_shard, faults);
        let policy = RetryPolicy::default();
        let (daily, daily_report) = {
            let _span = registry.span("repro.supervised.daily");
            supervised_collect_daily_obs(
                &daily_buffers,
                universe.config().daily_days,
                &policy,
                &plan,
                &registry,
            )?
        };
        let (weekly, weekly_report) = {
            let _span = registry.span("repro.supervised.weekly");
            supervised_collect_weekly_obs(
                &weekly_buffers,
                universe.config().weeks,
                &policy,
                &plan,
                &registry,
            )?
        };
        let repro = Repro::assemble(universe, daily, weekly, seed, registry);
        Ok((repro, SupervisedRunSummary { daily: daily_report, weekly: weekly_report, plan }))
    }

    /// Builds the session through *process-level* distributed
    /// collection: `shards` separate worker OS processes (spawned
    /// from `worker_cmd`, e.g. the current binary's hidden `worker`
    /// mode) each replay their shard into a leased store pair under
    /// `root`, while the coordinator heartbeat-watches them, `kill
    /// -9`s any scheduled victims in `plan`, fsck-repairs what the
    /// dead leave behind, and regrants or records honest coverage
    /// loss. The merged datasets are identical to [`Repro::new`]'s
    /// whenever no shard is permanently lost.
    #[allow(clippy::too_many_arguments)]
    pub fn new_distributed(
        seed: u64,
        scale: Scale,
        shards: usize,
        emitters: usize,
        jobs: usize,
        root: std::path::PathBuf,
        worker_cmd: &[String],
        plan: &ipactive_coord::KillPlan,
    ) -> std::io::Result<(Repro, ipactive_coord::DistributedOutcome)> {
        let registry = Registry::new();
        let mut cfg = ipactive_coord::CoordConfig::new(scale.config(seed), root, shards, emitters);
        cfg.jobs = jobs;
        let extra_args = [
            "--seed".to_string(),
            seed.to_string(),
            "--scale".to_string(),
            scale.name().to_string(),
        ];
        let outcome = {
            let _span = registry.span("repro.distributed");
            ipactive_coord::run_processes(&cfg, plan, worker_cmd, &extra_args, &registry)?
        };
        let universe = Universe::generate(scale.config(seed));
        let repro = Repro::assemble(
            universe,
            outcome.daily.clone(),
            outcome.weekly.clone(),
            seed,
            registry,
        );
        Ok((repro, outcome))
    }
}

impl<S: ActiveSet> Repro<S> {
    fn cdn_union(&self) -> Arc<S> {
        self.engine.all_active()
    }

    // The probe campaigns hand back reference sets; re-materialize
    // into the session backend once (the campaign output is sorted, so
    // the conversion is a straight streaming build).
    fn icmp_union(&self) -> &S {
        self.icmp.get_or_init(|| {
            let scan = ScanCampaign::new(self.seed ^ 0x1C0F, 8).run_union(&self.universe);
            S::from_sorted_vec(scan.iter().collect())
        })
    }

    fn server_set(&self) -> &S {
        self.servers.get_or_init(|| {
            S::from_sorted_vec(PortScanner::new().scan_any(&self.universe).iter().collect())
        })
    }

    fn router_set(&self) -> &S {
        self.routers.get_or_init(|| {
            let run = TracerouteCampaign::new(self.seed ^ 0x712CE, 0.7).run(&self.universe);
            S::from_sorted_vec(run.iter().collect())
        })
    }

    /// Runs one experiment by name, returning its report text.
    pub fn run(&self, name: &str) -> Option<String> {
        self.run_with(name, &Parallelism::serial())
    }

    /// [`Repro::run`] with an explicit helper-thread budget for the
    /// figure's chunked kernels. The chunk partition is a pure
    /// function of the problem size (see [`par`]), so the output is
    /// byte-identical whatever the budget.
    pub fn run_with(&self, name: &str, par: &Parallelism) -> Option<String> {
        Some(match name {
            "fig1" => self.fig1(),
            "table1" => self.table1(),
            "fig2a" => self.fig2a(),
            "fig2b" => self.fig2b(),
            "fig3a" => self.fig3a(),
            "fig3b" => self.fig3b(),
            "fig4a" => self.fig4a(par),
            "fig4b" => self.fig4b(par),
            "fig4c" => self.fig4c(),
            "fig5a" => self.fig5a(par),
            "fig5b" => self.fig5b(par),
            "fig5c" => self.fig5c(par),
            "table2" => self.table2(),
            "fig6" => self.fig6(),
            "fig7" => self.fig7(),
            "fig8a" => self.fig8a(),
            "fig8b" => self.fig8b(par),
            "fig8c" => self.fig8c(),
            "fig9a" => self.fig9a(),
            "fig9b" => self.fig9b(),
            "fig9c" => self.fig9c(par),
            "fig10" => self.fig10(),
            "fig11" => self.fig11(),
            "fig12" => self.fig12(),
            _ => return None,
        })
    }

    /// Figure 1: monthly unique actives 2008–2016, regression, gap.
    pub fn fig1(&self) -> String {
        let pts = monthly_counts(&GrowthModel { seed: self.seed, ..GrowthModel::default() });
        let fit = timeline::fit_until(&pts, YearMonth::new(2014, 1)).expect("series fits");
        let onset = timeline::detect_stagnation(&pts, &fit, 0.5, 24);
        let mut out = header(
            "Figure 1 — monthly unique active IPv4 addresses",
            "paper: linear growth (~8M/month) until 2014, then stagnation below 1B",
        );
        for p in pts.iter().step_by(6) {
            let bar = "#".repeat((p.active / 25_000_000) as usize);
            let _ = writeln!(out, "  {}  {:>12}  {}", p.month, big(p.active), bar);
        }
        let _ = writeln!(
            out,
            "  pre-2014 fit: slope {}/month, r² {:.4}",
            big(fit.slope as u64),
            fit.r2
        );
        if let Some(m) = onset {
            let _ = writeln!(out, "  stagnation onset detected: {m}");
        }
        if let Some(gap) = timeline::stagnation_gap(&pts, &fit, YearMonth::new(2015, 12)) {
            let _ = writeln!(out, "  2015-12 shortfall vs extrapolation: {:.1}%", gap * 100.0);
        }
        let _ = writeln!(out, "  RIR exhaustion marks:");
        for (rir, ym) in RIR_EXHAUSTION {
            let _ = writeln!(out, "    {ym}  {rir}");
        }
        out
    }

    /// Table 1: dataset totals and per-snapshot averages.
    pub fn table1(&self) -> String {
        let table = self.universe.bgp().base();
        let resolve = |b: ipactive_net::Block24| table.origin_of(b.network());
        let d = census::daily_census(&self.daily, resolve);
        let w = census::weekly_census(&self.weekly, resolve);
        let mut out = header(
            "Table 1 — dataset census (totals and per-snapshot averages)",
            "paper: daily 975M/655M IPs, 5.9M/5.1M /24s, 50.7K/47.9K ASes; weekly 1.2B/790M",
        );
        let _ = writeln!(
            out,
            "  {:<24} {:>12} {:>12} {:>9} {:>9} {:>7} {:>7}",
            "", "IPs total", "IPs avg", "/24 tot", "/24 avg", "AS tot", "AS avg"
        );
        for (label, row) in [("Daily", d), ("Weekly", w)] {
            let _ = writeln!(
                out,
                "  {:<24} {:>12} {:>12} {:>9} {:>9} {:>7} {:>7}",
                format!("{label} ({} snapshots)", row.snapshots),
                big(row.ips_total),
                big(row.ips_avg as u64),
                big(row.blocks_total),
                big(row.blocks_avg as u64),
                big(row.ases_total),
                big(row.ases_avg as u64),
            );
        }
        out
    }

    /// Figure 2(a): visibility CDN vs ICMP at four granularities.
    pub fn fig2a(&self) -> String {
        let cdn = self.cdn_union();
        let icmp = self.icmp_union();
        let table = self.universe.bgp().base();
        let rows = [
            ("IPs", visibility::split_addrs(&*cdn, icmp)),
            ("/24s", visibility::split_blocks(&*cdn, icmp)),
            ("prefixes", visibility::split_prefixes(&*cdn, icmp, table)),
            ("ASes", visibility::split_ases(&*cdn, icmp, table)),
        ];
        let mut out = header(
            "Figure 2(a) — CDN vs ICMP visibility by granularity",
            "paper: >40% of IPs are CDN-only; the gap shrinks at /24, prefix, AS level",
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>10} {:>14} {:>14} {:>14}",
            "unit", "N", "CDN only", "CDN & ICMP", "ICMP only"
        );
        for (label, s) in rows {
            let _ = writeln!(
                out,
                "  {:<10} {:>10} {:>13.1}% {:>13.1}% {:>13.1}%",
                label,
                big(s.total() as u64),
                100.0 * s.cdn_only_fraction(),
                100.0 * (1.0 - s.cdn_only_fraction() - s.icmp_only_fraction()),
                100.0 * s.icmp_only_fraction(),
            );
        }
        if let Some(est) = visibility::estimate_population(&*cdn, icmp) {
            let union = cdn.union(icmp).len();
            let _ = writeln!(
                out,
                "  capture/recapture population estimate: {} (union observed: {}; \
                 the Zander-et-al-style extrapolation the paper's 1.2B count agrees with)",
                big(est as u64),
                big(union as u64),
            );
        }
        out
    }

    /// Figure 2(b): classification of ICMP-only addresses.
    pub fn fig2b(&self) -> String {
        let cdn = self.cdn_union();
        let icmp_only = self.icmp_union().difference(&cdn);
        let c = visibility::classify_icmp_only(&icmp_only, self.server_set(), self.router_set());
        let mut out = header(
            "Figure 2(b) — classification of ICMP-only addresses",
            "paper: ~half attributable to server/router infrastructure, rest unknown",
        );
        let total = c.total().max(1) as f64;
        for (label, n) in [
            ("server", c.server),
            ("server+router", c.server_router),
            ("router", c.router),
            ("unknown", c.unknown),
        ] {
            let _ = writeln!(
                out,
                "  {:<14} {:>9} ({:>5.1}%)",
                label,
                big(n as u64),
                100.0 * n as f64 / total
            );
        }
        let _ = writeln!(
            out,
            "  infrastructure fraction: {:.1}%",
            100.0 * c.infrastructure_fraction()
        );
        out
    }

    /// Figure 3(a): visibility by RIR.
    pub fn fig3a(&self) -> String {
        let cdn = self.cdn_union();
        let grouped = geo::by_rir(&*cdn, self.icmp_union(), self.universe.delegations());
        let mut out = header(
            "Figure 3(a) — IPv4 address visibility grouped by RIR",
            "paper: CDN adds substantial visibility everywhere, most strongly in AFRINIC",
        );
        let _ = writeln!(
            out,
            "  {:<9} {:>10} {:>11} {:>11} {:>11} {:>11}",
            "RIR", "seen", "CDN&ICMP", "CDN only", "ICMP only", "CDN gain"
        );
        for rir in ipactive_rir::Rir::ALL {
            let s = grouped[rir.index()];
            let _ = writeln!(
                out,
                "  {:<9} {:>10} {:>11} {:>11} {:>11} {:>10.0}%",
                rir.name(),
                big(s.total() as u64),
                big(s.both as u64),
                big(s.cdn_only as u64),
                big(s.icmp_only as u64),
                100.0 * geo::cdn_gain_over_icmp(&s),
            );
        }
        out
    }

    /// Figure 3(b): top countries, annotated with ITU ranks.
    pub fn fig3b(&self) -> String {
        let cdn = self.cdn_union();
        let rows = geo::top_countries(&*cdn, self.icmp_union(), self.universe.delegations(), 11);
        let mut out = header(
            "Figure 3(b) — top countries with broadband/cellular subscriber ranks",
            "paper: CDN coverage tracks broadband rank; ICMP response ~80% CN vs ~25% JP",
        );
        let _ = writeln!(
            out,
            "  {:<4} {:>10} {:>10} {:>10} {:>11} {:>6} {:>6}",
            "cc", "seen", "CDN only", "ICMP only", "ICMP-resp", "bb#", "cell#"
        );
        for r in rows {
            let (bb, cell) = r
                .ranks
                .map(|x| (x.broadband.to_string(), x.cellular.to_string()))
                .unwrap_or_else(|| ("-".into(), "-".into()));
            let _ = writeln!(
                out,
                "  {:<4} {:>10} {:>10} {:>10} {:>10.1}% {:>6} {:>6}",
                r.country.as_str(),
                big(r.split.total() as u64),
                big(r.split.cdn_only as u64),
                big(r.split.icmp_only as u64),
                100.0 * r.icmp_response_rate(),
                bb,
                cell,
            );
        }
        out
    }

    /// Figure 4(a): daily actives with up/down events.
    pub fn fig4a(&self, par: &Parallelism) -> String {
        let series = churn::daily_series_over(&self.engine, par);
        let mut out = header(
            "Figure 4(a) — daily active IPv4 addresses and up/down events",
            "paper: ~650M daily actives, ~55M daily up and down events, weekend dips",
        );
        let _ = writeln!(out, "  {:<5} {:>10} {:>9} {:>9}", "day", "active", "up", "down");
        for p in series.iter().skip(1).step_by(7) {
            let _ = writeln!(
                out,
                "  {:<5} {:>10} {:>9} {:>9}",
                p.day,
                big(p.active as u64),
                big(p.up as u64),
                big(p.down as u64)
            );
        }
        let n = (series.len() - 1).max(1) as f64;
        let avg_active: f64 =
            series.iter().map(|p| p.active as f64).sum::<f64>() / series.len() as f64;
        let avg_up: f64 = series.iter().skip(1).map(|p| p.up as f64).sum::<f64>() / n;
        let avg_down: f64 = series.iter().skip(1).map(|p| p.down as f64).sum::<f64>() / n;
        let _ = writeln!(
            out,
            "  averages: active {} | up {} ({:.1}%) | down {} ({:.1}%)",
            big(avg_active as u64),
            big(avg_up as u64),
            100.0 * avg_up / avg_active,
            big(avg_down as u64),
            100.0 * avg_down / avg_active,
        );
        let profile = churn::weekday_profile_from(&series);
        let weekday = profile[..5].iter().sum::<f64>() / 5.0;
        let weekend = profile[5..].iter().sum::<f64>() / 2.0;
        let _ = writeln!(
            out,
            "  weekday/weekend mean actives: {} / {} ({:+.1}% weekend dip)",
            big(weekday as u64),
            big(weekend as u64),
            100.0 * (weekend - weekday) / weekday,
        );
        out
    }

    /// Figure 4(b): churn vs aggregation window size.
    pub fn fig4b(&self, par: &Parallelism) -> String {
        let sweep = churn::window_sweep_over(&self.engine, &[1, 2, 3, 4, 7, 14, 21, 28], par);
        let mut out = header(
            "Figure 4(b) — up/down event percentage vs aggregation window",
            "paper: ~8% daily, day-of-week spikes to 14%, plateau ≈5% for windows ≥7d",
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>23} {:>23}",
            "window", "up% (min/med/max)", "down% (min/med/max)"
        );
        for w in sweep {
            let _ = writeln!(
                out,
                "  {:<8} {:>6.1} /{:>6.1} /{:>6.1} {:>6.1} /{:>6.1} /{:>6.1}",
                format!("{}d", w.window_days),
                w.up.min,
                w.up.median,
                w.up.max,
                w.down.min,
                w.down.median,
                w.down.max
            );
        }
        // Extension beyond the paper's 28-day ceiling: the same sweep
        // over week-granularity windows of the weekly dataset.
        for w in churn::weekly_window_sweep_over(&self.engine, &[4, 8, 13], par) {
            let _ = writeln!(
                out,
                "  {:<8} {:>6.1} /{:>6.1} /{:>6.1} {:>6.1} /{:>6.1} /{:>6.1}  (weekly data)",
                format!("{}d", w.window_days),
                w.up.min,
                w.up.median,
                w.up.max,
                w.down.min,
                w.down.median,
                w.down.max
            );
        }
        out
    }

    /// Figure 4(c): appear/disappear relative to the first week.
    pub fn fig4c(&self) -> String {
        let drift = churn::year_drift(&self.weekly);
        let mut out = header(
            "Figure 4(c) — weekly appearing/disappearing addresses vs week 0",
            "paper: the active set drifts by up to ±25% of the base over the year",
        );
        let _ = writeln!(
            out,
            "  {:<6} {:>10} {:>8} {:>11} {:>8}",
            "week", "appear", "(%)", "disappear", "(%)"
        );
        for d in drift.iter().step_by(4).chain(drift.last()) {
            let _ = writeln!(
                out,
                "  {:<6} {:>10} {:>7.1}% {:>11} {:>7.1}%",
                d.week,
                big(d.appear as u64),
                100.0 * d.appear_frac,
                big(d.disappear as u64),
                100.0 * d.disappear_frac,
            );
        }
        if let Some(last) = drift.last() {
            let _ = writeln!(
                out,
                "  year-end drift: +{:.1}% / -{:.1}% of the week-0 population",
                100.0 * last.appear_frac,
                100.0 * last.disappear_frac
            );
        }
        out
    }

    /// Figure 5(a): per-AS median up-event percentage CDF.
    pub fn fig5a(&self, par: &Parallelism) -> String {
        let table = self.universe.bgp().base();
        let min_ips = self.min_as_ips();
        let mut out = header(
            "Figure 5(a) — CDF of per-AS median % of IPs with up events",
            "paper: ~half of ASes below 5% churn; 10–20% of ASes above 10%",
        );
        for window in [1usize, 7, 28] {
            if self.daily.num_days / window < 2 {
                continue;
            }
            let ecdf = churn::per_as_churn_over(
                &self.engine,
                window,
                min_ips,
                |b| table.origin_of(b.network()),
                par,
            );
            if ecdf.is_empty() {
                let _ =
                    writeln!(out, "  {window}d window: no AS passes the {min_ips}-IP filter");
                continue;
            }
            let _ = write!(out, "  {window:>2}d window (N={:>4}): ", ecdf.len());
            for q in [0.1, 0.25, 0.5, 0.75, 0.9] {
                let _ = write!(out, "p{:<2}={:>5.1}%  ", (q * 100.0) as u32, ecdf.quantile(q));
            }
            let above10 = 1.0 - ecdf.fraction_le(10.0);
            let _ = writeln!(out, "| >10%: {:.0}% of ASes", above10 * 100.0);
        }
        out
    }

    /// Figure 5(b): event size distribution by covering prefix mask.
    pub fn fig5b(&self, par: &Parallelism) -> String {
        let mut out = header(
            "Figure 5(b) — size of up events (smallest covering prefix mask)",
            "paper: 1d events >70% at /31–/32; 28d windows: >38% of events at masks ≤ /24",
        );
        let _ = writeln!(
            out,
            "  {:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "window", ">=/16", "/17-20", "/21-24", "/25-28", "/29-32"
        );
        for window in [1usize, 7, 28] {
            if self.daily.num_days / window < 2 {
                continue;
            }
            let h = events::event_sizes_par(&self.engine, window, events::EventDirection::Up, par);
            let b = h.figure5b_buckets();
            let _ = writeln!(
                out,
                "  {:<8} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                format!("{}d", window),
                100.0 * b[0],
                100.0 * b[1],
                100.0 * b[2],
                100.0 * b[3],
                100.0 * b[4]
            );
        }
        out
    }

    /// Figure 5(c): correlation of events with BGP changes.
    pub fn fig5c(&self, par: &Parallelism) -> String {
        let offset = self.universe.config().daily_offset as u16;
        let mut out = header(
            "Figure 5(c) — % of events coinciding with a BGP change",
            "paper: events correlate more than steady addresses, but all <2.5%",
        );
        let _ = writeln!(out, "  {:<8} {:>8} {:>8} {:>8}", "window", "up", "down", "steady");
        for window in [1usize, 7, 28] {
            if self.daily.num_days / window < 2 {
                continue;
            }
            let c =
                events::bgp_correlation_par(&self.engine, window, self.universe.bgp(), offset, par);
            let _ = writeln!(
                out,
                "  {:<8} {:>7.2}% {:>7.2}% {:>7.2}%",
                format!("{}d", window),
                c.up_pct,
                c.down_pct,
                c.steady_pct
            );
        }
        out
    }

    /// Table 2: long-term appear/disappear with BGP attribution.
    pub fn table2(&self) -> String {
        let weeks = self.weekly.num_weeks;
        let span = (weeks / 6).max(2);
        let lt = churn::long_term(
            &self.engine,
            0..span,
            weeks - span..weeks,
            self.universe.bgp(),
            7,
        );
        let mut out = header(
            "Table 2 — addresses appearing/disappearing between year start and end",
            "paper: 139M/129M; 65%/54% whole-/24; ~90% no BGP change",
        );
        let _ = writeln!(out, "  {:<28} {:>12} {:>12}", "", "appear", "disappear");
        let _ = writeln!(
            out,
            "  {:<28} {:>12} {:>12}",
            "total",
            big(lt.appear.len() as u64),
            big(lt.disappear.len() as u64)
        );
        let _ = writeln!(
            out,
            "  {:<28} {:>11.0}% {:>11.0}%",
            "entire /24 affected",
            100.0 * lt.appear_full_block_frac,
            100.0 * lt.disappear_full_block_frac
        );
        for (label, a, d) in [
            ("BGP no change", lt.appear_bgp.no_change, lt.disappear_bgp.no_change),
            ("BGP origin change", lt.appear_bgp.origin_change, lt.disappear_bgp.origin_change),
            (
                "BGP announce/withdraw",
                lt.appear_bgp.announce_withdraw,
                lt.disappear_bgp.announce_withdraw,
            ),
        ] {
            let _ = writeln!(out, "  {:<28} {:>10.1}% {:>11.1}%", label, 100.0 * a, 100.0 * d);
        }
        // The bulkiest appearing ranges, compressed to CIDR prefixes.
        let mut prefixes = lt.appear.to_prefixes();
        prefixes.sort_by_key(|p| p.len());
        let _ = writeln!(out, "  largest appearing ranges:");
        for p in prefixes.iter().take(4) {
            let _ = writeln!(out, "    {p}");
        }
        out
    }

    fn exemplar(
        &self,
        pred: impl Fn(&ipactive_cdnsim::BlockEntry) -> bool,
    ) -> Option<&ipactive_core::BlockRecord> {
        // The busiest matching block with a stable policy makes the
        // clearest picture.
        self.universe
            .blocks
            .iter()
            .filter(|e| pred(e) && e.restructure.is_none())
            .filter_map(|e| self.daily.block(e.block))
            .max_by_key(|r| r.ip_traffic.len())
    }

    /// Figure 6: exemplar in-situ activity patterns.
    pub fn fig6(&self) -> String {
        use ipactive_cdnsim::AssignmentPolicy as P;
        type PolicyPred = Box<dyn Fn(&ipactive_cdnsim::BlockEntry) -> bool>;
        let mut out = header(
            "Figure 6 — regular activity patterns (address × day matrices)",
            "paper: (a) static sparse; (b) round-robin pool; (c) long lease; (d) 24h lease",
        );
        let cases: [(&str, PolicyPred); 4] = [
            (
                "(a) statically assigned, sparse",
                Box::new(|e| matches!(e.policy, P::StaticSparse { .. })),
            ),
            ("(b) round-robin pool", Box::new(|e| matches!(e.policy, P::RoundRobin { .. }))),
            ("(c) dynamic, long lease", Box::new(|e| matches!(e.policy, P::DhcpLong { .. }))),
            ("(d) dynamic, 24h lease", Box::new(|e| matches!(e.policy, P::DhcpShort { .. }))),
        ];
        for (label, pred) in cases {
            match self.exemplar(|e| pred(e)) {
                Some(rec) => {
                    let m = matrix::BlockMetrics::of(rec, 0..self.daily.num_days);
                    let _ =
                        writeln!(out, "  {label}: {}  FD={} STU={:.2}", rec.block, m.fd, m.stu);
                    for line in matrix::render(rec, self.daily.num_days, 16).lines() {
                        let _ = writeln!(out, "    |{line}|");
                    }
                }
                None => {
                    let _ = writeln!(out, "  {label}: no exemplar in this universe");
                }
            }
        }
        out
    }

    /// Figure 7: modified assignment practice exemplars.
    pub fn fig7(&self) -> String {
        let mut out = header(
            "Figure 7 — modified assignment practice (mid-window reconfigurations)",
            "paper: temporally/spatially inconsistent patterns from reallocation or repurposing",
        );
        let mut shown = 0;
        for e in &self.universe.blocks {
            if shown >= 2 {
                break;
            }
            let Some((day, _)) = e.restructure else { continue };
            let Some(rec) = self.daily.block(e.block) else { continue };
            if rec.ip_traffic.len() < 16 {
                continue;
            }
            let m = matrix::BlockMetrics::of(rec, 0..self.daily.num_days);
            let rel = day - self.universe.config().daily_offset;
            let _ = writeln!(
                out,
                "  {} (policy change on day {rel})  FD={} STU={:.2}",
                rec.block, m.fd, m.stu
            );
            for line in matrix::render(rec, self.daily.num_days, 16).lines() {
                let _ = writeln!(out, "    |{line}|");
            }
            shown += 1;
        }
        if shown == 0 {
            let _ = writeln!(out, "  (no restructured block with enough activity)");
        }
        out
    }

    /// Figure 8(a): CDF of max monthly STU change.
    pub fn fig8a(&self) -> String {
        let month = self.month_days();
        let part = change::detect(&self.daily, month, change::DEFAULT_THRESHOLD);
        let ecdf = part.delta_ecdf();
        let mut out = header(
            "Figure 8(a) — max month-to-month ΔSTU per /24 (CDF)",
            "paper: ~90% of blocks inside ±0.25 (stable); ~9.8% major change",
        );
        for x in [-0.75, -0.5, -0.25, -0.1, 0.0, 0.1, 0.25, 0.5, 0.75] {
            let _ = writeln!(out, "  P(d <= {x:>5.2}) = {:.3}", ecdf.fraction_le(x));
        }
        let _ = writeln!(
            out,
            "  blocks: {} total, {} major change ({:.1}%), {} stable",
            part.deltas.len(),
            part.major.len(),
            100.0 * part.major_fraction(),
            part.stable.len()
        );
        out
    }

    /// Figure 8(b): filling degree by DNS-derived assignment class.
    pub fn fig8b(&self, par: &Parallelism) -> String {
        let all = self.engine.all_active();
        let split = blocks::fd_by_assignment_over(
            &self.daily,
            &*all,
            self.universe.ptr_table(),
            16,
            par,
        );
        let mut out = header(
            "Figure 8(b) — filling degree of /24s: static vs dynamic (PTR tags)",
            "paper: 75% of static /24s below FD 64; >80% of dynamic /24s above FD 250",
        );
        let _ = writeln!(
            out,
            "  tagged blocks: {} static, {} dynamic, {} total active",
            split.n_static,
            split.n_dynamic,
            split.all.len()
        );
        let _ = writeln!(
            out,
            "  {:<10} {:>9} {:>9} {:>9} {:>9}",
            "class", "FD<=64", "FD<=128", "FD<=192", "FD<=250"
        );
        for (label, e) in [
            ("static", &split.static_blocks),
            ("dynamic", &split.dynamic_blocks),
            ("all", &split.all),
        ] {
            if e.is_empty() {
                let _ = writeln!(out, "  {label:<10} (empty)");
                continue;
            }
            let _ = writeln!(
                out,
                "  {:<10} {:>8.1}% {:>8.1}% {:>8.1}% {:>8.1}%",
                label,
                100.0 * e.fraction_le(64.0),
                100.0 * e.fraction_le(128.0),
                100.0 * e.fraction_le(192.0),
                100.0 * e.fraction_le(250.0),
            );
        }
        out
    }

    /// Figure 8(c): STU histogram of highly-filled blocks.
    pub fn fig8c(&self) -> String {
        let h = blocks::stu_histogram_high_fd(&self.daily, 250, 10);
        let p = blocks::potential_utilization(&self.daily);
        let mut out = header(
            "Figure 8(c) — spatio-temporal utilization of /24s with FD>250",
            "paper: most pools >80% STU, some at 100% (gateways); a tail below 60%",
        );
        for (i, &n) in h.counts.iter().enumerate() {
            let lo = i as f64 * h.width;
            let bar = "#".repeat((80 * n / h.total.max(1)) as usize);
            let _ = writeln!(out, "  {:>3.0}-{:>3.0}% {:>7} {}", lo, lo + h.width, big(n), bar);
        }
        let _ = writeln!(
            out,
            "  §5.4: {} active blocks | FD<64: {} ({:.0}%) | FD>250: {} (STU>=0.8: {}, STU<0.6: {})",
            big(p.active_blocks as u64),
            big(p.low_fd_blocks as u64),
            100.0 * p.low_fd_blocks as f64 / p.active_blocks.max(1) as f64,
            big(p.high_fd_blocks as u64),
            big(p.high_fd_high_stu as u64),
            big(p.high_fd_low_stu as u64),
        );
        out
    }

    /// Figure 9(a): daily hits binned by days active.
    pub fn fig9a(&self) -> String {
        let bins = traffic::hits_by_days_active(&self.daily);
        let mut out = header(
            "Figure 9(a) — median daily hits per address, binned by days active",
            "paper: strong positive correlation; always-on addresses are heavy hitters",
        );
        let _ = writeln!(
            out,
            "  {:<12} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "days active", "p5", "p25", "median", "p75", "p95"
        );
        let n = bins.len();
        let probe_days: Vec<usize> = [1usize, 2, 4, 7, 14, 28, 56, 84, n - 1, n]
            .iter()
            .copied()
            .filter(|&d| d >= 1 && d <= n)
            .collect();
        let mut printed = std::collections::HashSet::new();
        for d in probe_days {
            if !printed.insert(d) {
                continue;
            }
            match &bins[d - 1] {
                Some(s) => {
                    let _ = writeln!(
                        out,
                        "  {:<12} {:>8.0} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
                        d, s.p5, s.p25, s.p50, s.p75, s.p95
                    );
                }
                None => {
                    let _ = writeln!(out, "  {d:<12} (empty bin)");
                }
            }
        }
        let medians: Vec<f64> = bins.iter().flatten().map(|s| s.p50).collect();
        if medians.len() >= 2 {
            let first = medians.first().unwrap();
            let last = medians.last().unwrap();
            let _ = writeln!(
                out,
                "  median ratio (always-on vs 1-day): {:.0}x",
                last / first.max(1.0)
            );
        }
        out
    }

    /// Figure 9(b): cumulative IP and traffic fractions.
    pub fn fig9b(&self) -> String {
        let c = traffic::cumulative_shares(&self.daily);
        let mut out = header(
            "Figure 9(b) — cumulative fraction of addresses and traffic by days active",
            "paper: <10% always-on addresses carry >40% of total traffic",
        );
        let n = c.ips.len();
        let _ = writeln!(out, "  {:<14} {:>10} {:>12}", "days active <=", "IPs", "traffic");
        let mut printed = std::collections::HashSet::new();
        for k in [1usize, 7, 14, 28, 56, n - 1, n] {
            if k >= 1 && k <= n && printed.insert(k) {
                let _ = writeln!(
                    out,
                    "  {:<14} {:>9.1}% {:>11.1}%",
                    k,
                    100.0 * c.ips[k - 1],
                    100.0 * c.traffic[k - 1]
                );
            }
        }
        let _ = writeln!(
            out,
            "  always-on: {:.1}% of IPs carry {:.1}% of traffic",
            100.0 * c.always_on_ip_fraction(),
            100.0 * c.always_on_traffic_fraction()
        );
        out
    }

    /// Figure 9(c): weekly traffic share of the top-10% addresses.
    pub fn fig9c(&self, par: &Parallelism) -> String {
        let shares = traffic::weekly_top_share_par(&self.weekly, 0.1, par);
        let smooth = traffic::moving_average(&shares, 4);
        let mut out = header(
            "Figure 9(c) — weekly traffic share of the top 10% of addresses",
            "paper: rises from ~49.5% to ~52.5% across 2015 (consolidation)",
        );
        let _ = writeln!(out, "  {:<6} {:>9} {:>12}", "week", "share", "4w average");
        let mut printed = std::collections::HashSet::new();
        for w in (0..shares.len()).step_by(4).chain([shares.len() - 1]) {
            if printed.insert(w) {
                let _ = writeln!(
                    out,
                    "  {:<6} {:>8.1}% {:>11.1}%",
                    w,
                    100.0 * shares[w],
                    100.0 * smooth[w]
                );
            }
        }
        let (first, last) = (smooth.first().unwrap(), smooth.last().unwrap());
        let _ = writeln!(
            out,
            "  trend: {:.1}% -> {:.1}% ({:+.1} points over the year)",
            100.0 * first,
            100.0 * last,
            100.0 * (last - first)
        );
        // Concentration stated as a Gini coefficient, first vs last week.
        let g0 = ipactive_core::stats::gini(&self.weekly.week_hits[0]);
        let g1 = ipactive_core::stats::gini(self.weekly.week_hits.last().unwrap());
        let _ = writeln!(out, "  Gini coefficient of weekly traffic: {g0:.3} -> {g1:.3}");
        out
    }

    /// Figure 10: UA samples vs unique UA strings per /24.
    pub fn fig10(&self) -> String {
        let points = hosts::ua_scatter(&self.daily);
        let t = hosts::UaRegionThresholds::default();
        let mut counts = std::collections::HashMap::new();
        for p in &points {
            *counts.entry(hosts::classify(p, &t)).or_insert(0usize) += 1;
        }
        let h = hosts::histogram2d(&points, 8, 6);
        let mut out = header(
            "Figure 10 — User-Agent samples vs unique User-Agent strings per /24",
            "paper: residential bulk; bot corner (high x, low y); gateway corner (high x+y)",
        );
        let _ = writeln!(out, "  blocks with UA samples: {}", points.len());
        let _ = writeln!(
            out,
            "  log-log heat map (rows: unique-UA decade, cols: sample decade):"
        );
        for (y, row) in h.counts.iter().enumerate().rev() {
            let cells: Vec<String> = row.iter().map(|&c| format!("{c:>6}")).collect();
            let _ = writeln!(out, "    10^{y} |{}", cells.join(""));
        }
        for (label, region) in [
            ("bulk", hosts::UaRegion::Bulk),
            ("bot", hosts::UaRegion::Bot),
            ("gateway", hosts::UaRegion::Gateway),
        ] {
            let _ = writeln!(out, "  {:<8} {:>7}", label, counts.get(&region).copied().unwrap_or(0));
        }
        if let Some(r) = hosts::log_correlation(&points) {
            let _ = writeln!(out, "  log-log correlation(samples, uniques): {r:.2}");
        }
        // The paper inspects the gateway corner with WHOIS: "more than
        // half of these blocks belong to ISPs located in Asia and ...
        // the majority is in use by cellular operators". Reproduce the
        // attribution via delegations + AS kinds.
        let gateways: Vec<_> = points
            .iter()
            .filter(|p| hosts::classify(p, &t) == hosts::UaRegion::Gateway)
            .collect();
        if !gateways.is_empty() {
            let mut cellular = 0usize;
            let mut apnic = 0usize;
            for p in &gateways {
                if let Some(a) = self.universe.as_of_block(p.block) {
                    if a.kind == ipactive_cdnsim::AsKind::CellularIsp {
                        cellular += 1;
                    }
                    if a.rir == ipactive_rir::Rir::Apnic {
                        apnic += 1;
                    }
                }
            }
            let _ = writeln!(
                out,
                "  gateway-corner attribution: {:.0}% cellular operators, {:.0}% APNIC-region",
                100.0 * cellular as f64 / gateways.len() as f64,
                100.0 * apnic as f64 / gateways.len() as f64,
            );
        }
        out
    }

    /// Figure 11: the demographics cube.
    pub fn fig11(&self) -> String {
        let feats = demographics::features(&self.daily);
        let cube = demographics::cube(&feats);
        let mut out = header(
            "Figure 11 — demographics cube: STU × traffic × relative host count",
            "paper: bimodal along STU; dense+trafficked blocks have high host counts",
        );
        let marg = cube.stu_marginal();
        let _ = writeln!(out, "  STU marginal (bin 0 -> 9):");
        let total: u64 = marg.iter().sum();
        for (i, &n) in marg.iter().enumerate() {
            let bar = "#".repeat((60 * n / total.max(1)) as usize);
            let _ = writeln!(
                out,
                "    [{:.1}-{:.1}) {:>7} {}",
                i as f64 / 10.0,
                (i + 1) as f64 / 10.0,
                big(n),
                bar
            );
        }
        let _ = writeln!(out, "  heaviest cells (stu, traffic, hosts) -> blocks:");
        for (s, t, h, n) in cube.cells().into_iter().take(12) {
            let _ = writeln!(out, "    ({s}, {t}, {h}) -> {}", big(n as u64));
        }
        out
    }

    /// Figure 12: per-RIR demographic grids.
    pub fn fig12(&self) -> String {
        let feats = demographics::features(&self.daily);
        let grids = demographics::per_rir(&feats, self.universe.delegations());
        let mut out = header(
            "Figure 12 — per-RIR breakdown (STU × traffic; color = host count)",
            "paper: ARIN skews low-utilization; LACNIC/AFRINIC highly utilized; APNIC gateway corner",
        );
        for g in grids {
            let _ = writeln!(
                out,
                "  {:<8} blocks={:<6} high-STU(top3 bins)={:.0}%",
                g.rir.name(),
                g.total,
                100.0 * g.high_stu_fraction(3)
            );
            let mut cells = Vec::new();
            for (s, row) in g.cells.iter().enumerate() {
                for (t, c) in row.iter().enumerate() {
                    if c.count > 0 {
                        cells.push((s, t, *c));
                    }
                }
            }
            cells.sort_by_key(|c| std::cmp::Reverse(c.2.count));
            for (s, t, c) in cells.into_iter().take(4) {
                let _ = writeln!(
                    out,
                    "      cell(stu={s},traffic={t}): {} blocks, host-color {:.2}",
                    big(c.count as u64),
                    c.mean_hosts
                );
            }
        }
        out
    }

    /// Forces the lazy probing campaigns (ICMP, port scan, traceroute)
    /// to run now. `--timings` calls this before either timed pass so
    /// the serial-uncached baseline and the cached parallel run pay
    /// identical probe costs — the measured speedup isolates the
    /// engine cache and the thread pool.
    pub fn prewarm_probes(&self) {
        self.icmp_union();
        self.server_set();
        self.router_set();
    }

    /// Runs every experiment across up to `jobs` scoped worker
    /// threads, heavy figures first.
    ///
    /// The worker count is clamped to the machine's cores (a `--jobs`
    /// above the core count used to oversubscribe a small box and run
    /// *slower* than serial); the clamped-off budget, plus each
    /// worker's core as it retires, feeds a shared [`Parallelism`]
    /// pool that the still-running figures' chunked kernels draw
    /// helper threads from — so the tail of the schedule, when few
    /// figures remain, parallelizes *inside* the heavy figures
    /// instead of idling. Workers pull `HEAVY_FIRST` indices off a
    /// shared counter, but the report is always assembled in
    /// [`EXPERIMENTS`] order: output is deterministic and
    /// byte-identical to running each figure serially (pinned by
    /// `tests/engine.rs`), and the cache hit/miss totals are a pure
    /// function of the query set, independent of `jobs`. Per-figure
    /// wall-clock and subtask counts ride along for
    /// `BENCH_repro.json`.
    pub fn run_all(&self, jobs: usize) -> RunAllReport {
        let jobs = jobs.max(1);
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        let budget = jobs.min(cores);
        let workers = budget.min(EXPERIMENTS.len());
        let pool = Parallelism::new(budget - workers);
        let before = self.engine.stats();
        let started = Instant::now();
        // Bulk-build every day/week unit set up front (one transposed
        // pass per dataset, uncounted) so the first heavy figures don't
        // absorb ~120 cold unit builds on their own clocks. Inside the
        // timed window: the cached pass pays for it honestly.
        self.engine.prewarm_units();
        let mut slots: Vec<Option<FigureRun>> = Vec::new();
        slots.resize_with(EXPERIMENTS.len(), || None);
        let next = AtomicUsize::new(0);
        let suite_span = self.registry.span("repro.run_all");
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut done = Vec::new();
                        loop {
                            let slot = next.fetch_add(1, Ordering::Relaxed);
                            if slot >= HEAVY_FIRST.len() {
                                break;
                            }
                            let i = HEAVY_FIRST[slot];
                            let name = EXPERIMENTS[i];
                            let _span = self.registry.span(format!("figure.{name}"));
                            // Each figure gets its own trace, minted
                            // from (seed, figure index) — structural
                            // spans only, so the trace store stays
                            // byte-identical whatever `jobs` is.
                            let ftrace = TraceId::mint(self.seed ^ FIG_SALT, i as u64);
                            let fctx = self
                                .registry
                                .trace_span(TraceContext::root(ftrace), "figure", name);
                            let t0 = Instant::now();
                            let output = self
                                .run_with(name, &pool)
                                .expect("EXPERIMENTS entries are runnable");
                            self.registry.trace_span(
                                fctx,
                                "figure.output",
                                format!("bytes {}", output.len()),
                            );
                            let millis = t0.elapsed().as_secs_f64() * 1e3;
                            done.push((i, FigureRun { name, output, millis, subtasks: 1 }));
                        }
                        // This worker's core is free now; lend it to the
                        // kernels of whatever figures are still running.
                        pool.release_tokens(1);
                        done
                    })
                })
                .collect();
            for handle in handles {
                for (i, run) in handle.join().expect("figure worker panicked") {
                    slots[i] = Some(run);
                }
            }
        });
        drop(suite_span);
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        let after = self.engine.stats();
        let mut figures: Vec<FigureRun> =
            slots.into_iter().map(|s| s.expect("every figure ran")).collect();
        // Subtask attribution happens after the cache delta is
        // captured: figure_subtasks re-derives loop extents with a few
        // (cached) engine queries that must not skew the figures'
        // hit/miss accounting.
        for f in &mut figures {
            f.subtasks = self.figure_subtasks(f.name);
            self.registry.gauge(format!("figure.{}.subtasks", f.name)).set(f.subtasks as i64);
        }
        RunAllReport {
            jobs,
            figures,
            total_ms,
            cache: CacheStats {
                hits: after.hits - before.hits,
                misses: after.misses - before.misses,
            },
            spans: self.registry.snapshot(SnapshotMode::Timed).spans,
        }
    }

    /// How many chunk-range subtasks `name`'s kernels partition their
    /// dominant loops into — re-derived from the pure
    /// [`par::chunk_count`] partition (summed across a figure's
    /// kernel invocations), so it is the same number whatever thread
    /// budget actually ran the chunks. Figures without a chunked
    /// kernel report 1.
    fn figure_subtasks(&self, name: &str) -> usize {
        let days = self.daily.num_days;
        let weeks = self.weekly.num_weeks;
        let event_windows = |min_chunk: usize| -> usize {
            [1usize, 7, 28]
                .iter()
                .filter(|&&w| days / w >= 2)
                .map(|&w| par::chunk_count(days / w - 1, min_chunk))
                .sum()
        };
        match name {
            "fig4a" => par::chunk_count(days.saturating_sub(1), 8),
            "fig4b" => {
                let daily: usize = [1usize, 2, 3, 4, 7, 14, 21, 28]
                    .iter()
                    .filter(|&&w| days / w >= 2)
                    .map(|&w| par::chunk_count(days / w - 1, 4))
                    .sum();
                let weekly: usize = [4usize, 8, 13]
                    .iter()
                    .filter(|&&w| weeks / w >= 2)
                    .map(|&w| par::chunk_count(weeks / w - 1, 4))
                    .sum();
                daily + weekly
            }
            "fig5a" => {
                let blocks = self.engine.all_active().blocks24().len();
                [1usize, 7, 28]
                    .iter()
                    .filter(|&&w| days / w >= 2)
                    .map(|_| par::chunk_count(blocks, 64))
                    .sum()
            }
            "fig5b" | "fig5c" => event_windows(2),
            "fig8b" => par::chunk_count(self.daily.blocks.len(), 64),
            "fig9c" => par::chunk_count(weeks, 4),
            _ => 1,
        }
    }

    /// Runs every experiment serially with the engine cache bypassed —
    /// the pre-engine behaviour, and the baseline `BENCH_repro.json`
    /// reports speedup against.
    pub fn run_serial_uncached(&self) -> RunAllReport {
        self.engine.set_bypass(true);
        let started = Instant::now();
        let figures = {
            let _span = self.registry.span("repro.serial_uncached");
            EXPERIMENTS
                .iter()
                .map(|&name| {
                    let t0 = Instant::now();
                    let output = self.run(name).expect("EXPERIMENTS entries are runnable");
                    let millis = t0.elapsed().as_secs_f64() * 1e3;
                    FigureRun { name, output, millis, subtasks: 1 }
                })
                .collect()
        };
        let total_ms = started.elapsed().as_secs_f64() * 1e3;
        self.engine.set_bypass(false);
        RunAllReport {
            jobs: 1,
            figures,
            total_ms,
            cache: CacheStats::default(),
            spans: self.registry.snapshot(SnapshotMode::Timed).spans,
        }
    }

    fn month_days(&self) -> usize {
        // 28-day "months" as in the paper's 112-day window; smaller
        // presets fall back to quarters of the window.
        if self.daily.num_days >= 112 {
            28
        } else {
            (self.daily.num_days / 4).max(1)
        }
    }

    fn min_as_ips(&self) -> usize {
        // The paper filters ASes at 1000 IPs over a ~1B-address pool;
        // scale the filter with the universe.
        (self.daily.total_active() / 1000).clamp(10, 1000)
    }
}

/// One figure's output and wall-clock inside a [`RunAllReport`].
#[derive(Debug, Clone)]
pub struct FigureRun {
    /// The experiment identifier (an [`EXPERIMENTS`] entry).
    pub name: &'static str,
    /// The report text, exactly as [`Repro::run`] returned it.
    pub output: String,
    /// Wall-clock spent generating it, in milliseconds.
    pub millis: f64,
    /// Chunk-range subtasks the figure's kernels partitioned into (1
    /// for figures with no chunked kernel, and for the serial-uncached
    /// baseline, which reports the pre-engine execution shape).
    pub subtasks: usize,
}

/// Result of [`Repro::run_all`] / [`Repro::run_serial_uncached`]:
/// every experiment in paper order, with timings and cache counters.
#[derive(Debug, Clone)]
pub struct RunAllReport {
    /// Worker threads the suite ran across (1 for the serial baseline).
    pub jobs: usize,
    /// Per-figure outputs and timings, in [`EXPERIMENTS`] order.
    pub figures: Vec<FigureRun>,
    /// Total wall-clock for the whole suite, in milliseconds.
    pub total_ms: f64,
    /// Engine cache hits/misses accumulated during this run.
    pub cache: CacheStats,
    /// Timed span profile of the session registry at capture time —
    /// per-stage wall clock embedded into `BENCH_repro.json`.
    pub spans: Vec<SpanSnapshot>,
}

impl RunAllReport {
    /// All figure outputs concatenated in paper order — byte-identical
    /// to running and concatenating each figure serially.
    pub fn combined_output(&self) -> String {
        self.figures.iter().map(|f| f.output.as_str()).collect()
    }

    /// Per-figure timing table for stderr.
    pub fn render_timings(&self) -> String {
        let mut out = String::new();
        for f in &self.figures {
            let _ = writeln!(
                out,
                "  {:<8} {:>9.2} ms  ({} subtask{})",
                f.name,
                f.millis,
                f.subtasks,
                if f.subtasks == 1 { "" } else { "s" },
            );
        }
        let _ = writeln!(
            out,
            "  total {:.1} ms across {} jobs | cache: {} hits, {} misses ({:.0}% hit rate)",
            self.total_ms,
            self.jobs,
            self.cache.hits,
            self.cache.misses,
            100.0 * self.cache.hit_rate(),
        );
        out
    }

    /// Renders `BENCH_repro.json`: this (cached, possibly parallel) run
    /// against the serial uncached `baseline`, per-figure and in total.
    /// `jobs_sweep` rows are warm `(jobs, total_ms)` reruns recorded by
    /// `repro --timings` — same output bytes at every point, so only
    /// the wall-clock varies. Hand-rolled JSON — every value is a
    /// number or a fixed identifier, so no escaping is needed.
    pub fn bench_json(
        &self,
        baseline: &RunAllReport,
        seed: u64,
        scale: Scale,
        jobs_sweep: &[(usize, f64)],
    ) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"bench\": \"repro_run_all\",");
        let _ = writeln!(out, "  \"seed\": {seed},");
        let _ = writeln!(out, "  \"scale\": \"{}\",", scale.name());
        let _ = writeln!(out, "  \"jobs\": {},", self.jobs);
        let _ = writeln!(out, "  \"total_ms\": {:.3},", self.total_ms);
        let _ = writeln!(out, "  \"serial_uncached_total_ms\": {:.3},", baseline.total_ms);
        let _ = writeln!(out, "  \"speedup\": {:.3},", baseline.total_ms / self.total_ms.max(1e-9));
        let _ = writeln!(out, "  \"cache_hits\": {},", self.cache.hits);
        let _ = writeln!(out, "  \"cache_misses\": {},", self.cache.misses);
        let _ = writeln!(out, "  \"figures\": [");
        let n = self.figures.len();
        for (i, (f, b)) in self.figures.iter().zip(&baseline.figures).enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"name\": \"{}\", \"ms\": {:.3}, \"serial_uncached_ms\": {:.3}, \"subtasks\": {}}}{comma}",
                f.name, f.millis, b.millis, f.subtasks,
            );
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"jobs_sweep\": [");
        let n = jobs_sweep.len();
        for (i, (jobs, ms)) in jobs_sweep.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    {{\"jobs\": {jobs}, \"total_ms\": {ms:.3}}}{comma}");
        }
        let _ = writeln!(out, "  ],");
        let _ = writeln!(out, "  \"spans\": [");
        let n = self.spans.len();
        for (i, s) in self.spans.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(
                out,
                "    {{\"path\": \"{}\", \"count\": {}, \"total_ms\": {:.3}, \"min_ms\": {:.3}, \"max_ms\": {:.3}}}{comma}",
                s.path,
                s.count,
                s.total_ns as f64 / 1e6,
                s.min_ns as f64 / 1e6,
                s.max_ns as f64 / 1e6,
            );
        }
        let _ = writeln!(out, "  ]");
        let _ = writeln!(out, "}}");
        out
    }
}

/// Outcome of one shape check in [`Repro::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// The paper-shape invariant held.
    Pass,
    /// The invariant failed; the string explains the measured values.
    Fail(String),
    /// Not enough data at this scale to evaluate the invariant.
    Skip(String),
}

/// One named shape check.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which experiment the check belongs to.
    pub experiment: &'static str,
    /// What shape property is asserted.
    pub claim: &'static str,
    /// The outcome.
    pub outcome: CheckOutcome,
}

impl<S: ActiveSet> Repro<S> {
    /// Verifies the paper's qualitative findings against this
    /// session's measurements — the executable form of EXPERIMENTS.md.
    /// Returns one [`Check`] per claim; `repro validate` drives this
    /// and exits nonzero if any check fails.
    pub fn validate(&self) -> Vec<Check> {
        let mut out = Vec::new();
        let mut push = |experiment: &'static str, claim: &'static str, outcome: CheckOutcome| {
            out.push(Check { experiment, claim, outcome });
        };
        fn ok(cond: bool, detail: String) -> CheckOutcome {
            if cond {
                CheckOutcome::Pass
            } else {
                CheckOutcome::Fail(detail)
            }
        }

        // Figure 1: linear then stagnating growth.
        {
            let pts =
                monthly_counts(&GrowthModel { seed: self.seed, ..GrowthModel::default() });
            let fit = timeline::fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
            push("fig1", "pre-2014 growth is linear (r2 > 0.98)", ok(fit.r2 > 0.98, format!("r2={:.4}", fit.r2)));
            let onset = timeline::detect_stagnation(&pts, &fit, 0.5, 24);
            push("fig1", "stagnation onset detected near 2014", match onset {
                Some(m) if (2014..=2015).contains(&m.year) => CheckOutcome::Pass,
                other => CheckOutcome::Fail(format!("onset {other:?}")),
            });
        }

        // Table 1: churn signature (IP totals exceed averages clearly).
        {
            let table = self.universe.bgp().base();
            let d = census::daily_census(&self.daily, |b| table.origin_of(b.network()));
            push(
                "table1",
                "distinct IPs over the window exceed the per-day average",
                ok(d.ips_total as f64 > 1.1 * d.ips_avg, format!("{} vs {}", d.ips_total, d.ips_avg)),
            );
        }

        // Figure 2: visibility structure.
        {
            let cdn = self.cdn_union();
            let icmp = self.icmp_union();
            let ip = visibility::split_addrs(&*cdn, icmp);
            let blocks = visibility::split_blocks(&*cdn, icmp);
            push(
                "fig2a",
                "CDN-only share is large at IP level",
                ok(ip.cdn_only_fraction() > 0.25, format!("{:.2}", ip.cdn_only_fraction())),
            );
            push(
                "fig2a",
                "the blind spot shrinks when aggregating to /24s",
                ok(
                    blocks.cdn_only_fraction() < ip.cdn_only_fraction(),
                    format!("{:.2} !< {:.2}", blocks.cdn_only_fraction(), ip.cdn_only_fraction()),
                ),
            );
            let icmp_only = icmp.difference(&cdn);
            let c = visibility::classify_icmp_only(&icmp_only, self.server_set(), self.router_set());
            push(
                "fig2b",
                "a substantial share of ICMP-only space is infrastructure",
                if c.total() < 50 {
                    CheckOutcome::Skip(format!("only {} ICMP-only addrs", c.total()))
                } else {
                    ok(
                        (0.15..=0.95).contains(&c.infrastructure_fraction()),
                        format!("{:.2}", c.infrastructure_fraction()),
                    )
                },
            );
        }

        // Figure 3(b): CN responds to ICMP far more than JP.
        {
            let cdn = self.cdn_union();
            let rows = geo::top_countries(&*cdn, self.icmp_union(), self.universe.delegations(), 16);
            // The per-country spread needs a decent sample before it
            // stabilizes; small universes may only hold a handful of
            // blocks per country.
            let rate = |cc: &str| {
                rows.iter()
                    .find(|r| r.country.as_str() == cc && r.split.total() >= 5_000)
                    .map(|r| r.icmp_response_rate())
            };
            match (rate("CN"), rate("JP")) {
                (Some(cn), Some(jp)) => push(
                    "fig3b",
                    "ICMP response rate: CN well above JP",
                    ok(cn > jp + 0.1, format!("CN {cn:.2} vs JP {jp:.2}")),
                ),
                _ => push("fig3b", "ICMP response rate: CN well above JP",
                          CheckOutcome::Skip("per-country sample too small at this scale".into())),
            }
        }

        // Figure 4: churn magnitudes.
        {
            let series = churn::daily_series(&self.daily);
            let avg_active: f64 =
                series.iter().map(|p| p.active as f64).sum::<f64>() / series.len() as f64;
            let avg_up: f64 = series.iter().skip(1).map(|p| p.up as f64).sum::<f64>()
                / (series.len() - 1) as f64;
            let daily_churn = avg_up / avg_active;
            push(
                "fig4a",
                "daily churn near the paper's ~8% (3%..25%)",
                ok((0.03..0.25).contains(&daily_churn), format!("{:.3}", daily_churn)),
            );
            let sweep = churn::window_sweep(&self.daily, &[7, 14]);
            let plateau_alive = sweep.iter().all(|w| w.up.median > 0.5);
            push(
                "fig4b",
                "churn does not decay to zero at larger windows",
                ok(plateau_alive, format!("{sweep:?}")),
            );
            let drift = churn::year_drift(&self.weekly);
            let last = drift.last().unwrap();
            push(
                "fig4c",
                "year-end drift exceeds 5% and grows",
                ok(
                    last.appear_frac > 0.05 && last.appear_frac > drift[0].appear_frac,
                    format!("{:.3}", last.appear_frac),
                ),
            );
        }

        // Figure 5(b): bulkiness grows with aggregation window.
        {
            let h1 = events::event_sizes(&self.engine, 1, events::EventDirection::Up);
            let w = (self.daily.num_days / 4).max(2);
            let hw = events::event_sizes(&self.engine, w, events::EventDirection::Up);
            if h1.total() < 100 || hw.total() < 100 {
                push("fig5b", "long-window events are bulkier",
                     CheckOutcome::Skip("too few events".into()));
            } else {
                push(
                    "fig5b",
                    "long-window events are bulkier",
                    ok(
                        hw.fraction_between(0, 28) > h1.fraction_between(0, 28),
                        format!("{:.2} !> {:.2}", hw.fraction_between(0, 28), h1.fraction_between(0, 28)),
                    ),
                );
                push(
                    "fig5b",
                    "daily events are dominated by single addresses",
                    ok(h1.fraction_between(29, 32) > 0.5, format!("{:.2}", h1.fraction_between(29, 32))),
                );
            }
        }

        // Figure 5(c): BGP correlation ordering.
        {
            let offset = self.universe.config().daily_offset as u16;
            let w = (self.daily.num_days / 4).max(2);
            let c = events::bgp_correlation(&self.engine, w, self.universe.bgp(), offset);
            push(
                "fig5c",
                "the vast majority of churn is invisible to BGP",
                ok(c.up_pct < 25.0 && c.down_pct < 25.0, format!("{c:?}")),
            );
        }

        // Table 2: long-term churn mostly BGP-silent.
        {
            let weeks = self.weekly.num_weeks;
            let span = (weeks / 6).max(2);
            let lt = churn::long_term(&self.engine, 0..span, weeks - span..weeks,
                                      self.universe.bgp(), 7);
            push(
                "table2",
                "most appearing/disappearing addresses see no BGP change",
                ok(
                    lt.appear_bgp.no_change > 0.7 && lt.disappear_bgp.no_change > 0.7,
                    format!("{:?} / {:?}", lt.appear_bgp, lt.disappear_bgp),
                ),
            );
        }

        // Figure 8: addressing practice.
        {
            let part = change::detect(&self.daily, self.month_days(), change::DEFAULT_THRESHOLD);
            push(
                "fig8a",
                "most blocks are stable within ±0.25 STU",
                ok(
                    (0.0..0.5).contains(&part.major_fraction()),
                    format!("{:.3}", part.major_fraction()),
                ),
            );
            let split = blocks::fd_by_assignment(&self.daily, self.universe.ptr_table(), 16);
            if split.n_static < 5 || split.n_dynamic < 5 {
                push("fig8b", "static blocks fill less than dynamic blocks",
                     CheckOutcome::Skip("too few tagged blocks".into()));
            } else {
                push(
                    "fig8b",
                    "static blocks fill less than dynamic blocks",
                    ok(
                        split.static_blocks.quantile(0.5) < split.dynamic_blocks.quantile(0.5),
                        format!(
                            "static p50 {} vs dynamic p50 {}",
                            split.static_blocks.quantile(0.5),
                            split.dynamic_blocks.quantile(0.5)
                        ),
                    ),
                );
            }
            let h = blocks::stu_histogram_high_fd(&self.daily, 250, 10);
            push(
                "fig8c",
                "highly-filled pools skew to high utilization",
                if h.total < 10 {
                    CheckOutcome::Skip(format!("only {} high-FD blocks", h.total))
                } else {
                    ok(h.fraction_ge(80.0) > 0.3, format!("{:.2}", h.fraction_ge(80.0)))
                },
            );
        }

        // Figure 9: traffic concentration.
        {
            let shares = traffic::cumulative_shares(&self.daily);
            push(
                "fig9b",
                "always-on addresses out-earn their headcount",
                ok(
                    shares.always_on_traffic_fraction() > 2.0 * shares.always_on_ip_fraction(),
                    format!(
                        "{:.2} !> 2x {:.2}",
                        shares.always_on_traffic_fraction(),
                        shares.always_on_ip_fraction()
                    ),
                ),
            );
            let weekly = traffic::weekly_top_share(&self.weekly, 0.1);
            let smooth = traffic::moving_average(&weekly, 4);
            push(
                "fig9c",
                "top-decile traffic share rises over the year",
                ok(
                    smooth.last().unwrap() > smooth.first().unwrap(),
                    format!("{:.3} -> {:.3}", smooth.first().unwrap(), smooth.last().unwrap()),
                ),
            );
        }

        // Figure 10: UA regions.
        {
            let points = hosts::ua_scatter(&self.daily);
            match hosts::log_correlation(&points) {
                Some(r) => push(
                    "fig10",
                    "traffic and host diversity correlate",
                    ok(r > 0.2, format!("r={r:.2}")),
                ),
                None => push("fig10", "traffic and host diversity correlate",
                             CheckOutcome::Skip("not enough UA data".into())),
            }
            let t = hosts::UaRegionThresholds::default();
            let gateways =
                points.iter().filter(|p| hosts::classify(p, &t) == hosts::UaRegion::Gateway).count();
            push(
                "fig10",
                "a gateway corner exists",
                if points.len() < 50 {
                    CheckOutcome::Skip("too few blocks with samples".into())
                } else {
                    ok(gateways > 0, format!("{gateways} gateways of {}", points.len()))
                },
            );
        }

        // Figure 11: bimodal STU.
        {
            let feats = demographics::features(&self.daily);
            let cube = demographics::cube(&feats);
            let marg = cube.stu_marginal();
            let total: u64 = marg.iter().sum();
            let low: u64 = marg[..3].iter().sum();
            let high: u64 = marg[7..].iter().sum();
            push(
                "fig11",
                "STU distribution is bimodal (mass in both extremes)",
                if total < 50 {
                    CheckOutcome::Skip(format!("only {total} blocks"))
                } else {
                    ok(low * 10 > total && high * 10 > total, format!("{marg:?}"))
                },
            );
        }

        out
    }
}

fn header(title: &str, expectation: &str) -> String {
    format!("\n== {title}\n   [{expectation}]\n")
}

/// Formats an integer with thousands separators.
pub fn big(n: u64) -> String {
    let s = n.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i) % 3 == 0 {
            out.push(',');
        }
        out.push(c);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_first_is_a_permutation_of_the_experiments() {
        let mut seen = [false; EXPERIMENTS.len()];
        for &i in &HEAVY_FIRST {
            assert!(!seen[i], "index {i} scheduled twice");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn big_formats_thousands() {
        assert_eq!(big(0), "0");
        assert_eq!(big(999), "999");
        assert_eq!(big(1000), "1,000");
        assert_eq!(big(1234567890), "1,234,567,890");
    }

    #[test]
    fn validate_produces_no_failures_on_tiny_scale() {
        let r = Repro::new(0xCAFE, Scale::Tiny);
        let checks = r.validate();
        assert!(checks.len() >= 15, "only {} checks", checks.len());
        let failures: Vec<_> = checks
            .iter()
            .filter(|c| matches!(c.outcome, CheckOutcome::Fail(_)))
            .collect();
        assert!(failures.is_empty(), "failed checks: {failures:#?}");
    }

    #[test]
    fn reports_carry_their_signature_content() {
        let r = Repro::new(0xCAFE, Scale::Tiny);
        // Figure 1 carries the RIR exhaustion annotations and the fit.
        let fig1 = r.fig1();
        for name in ["APNIC", "RIPE", "LACNIC", "ARIN"] {
            assert!(fig1.contains(name), "fig1 missing {name}");
        }
        assert!(fig1.contains("pre-2014 fit"));
        // Figure 6 renders all four exemplar classes (or says why not).
        let fig6 = r.fig6();
        for label in ["(a)", "(b)", "(c)", "(d)"] {
            assert!(fig6.contains(label), "fig6 missing {label}");
        }
        // Table 1 prints both cadences.
        let t1 = r.table1();
        assert!(t1.contains("Daily") && t1.contains("Weekly"));
        // Figure 4(b) includes the weekly-window extension rows.
        let f4b = r.fig4b(&Parallelism::serial());
        assert!(f4b.contains("(weekly data)"));
        // Figure 9(c) reports both the share trend and the Gini lens.
        let f9c = r.fig9c(&Parallelism::serial());
        assert!(f9c.contains("trend:") && f9c.contains("Gini"));
    }

    #[test]
    fn every_experiment_runs_on_tiny_scale() {
        let r = Repro::new(0xCAFE, Scale::Tiny);
        for name in EXPERIMENTS {
            let report = r.run(name).unwrap_or_else(|| panic!("unknown experiment {name}"));
            assert!(report.contains("=="), "{name} produced no header");
            assert!(report.len() > 80, "{name} suspiciously short:\n{report}");
        }
        assert!(r.run("nonsense").is_none());
    }
}
