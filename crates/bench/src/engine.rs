//! The analysis engine: one memoized activity-set cache shared by the
//! entire figure suite.
//!
//! Every figure and table of the paper is a window query over the same
//! two immutable activity matrices (Section 4.1's sliding windows), so
//! [`AnalysisCtx`] memoizes the three query shapes — `day_set(d)`,
//! `week_set(w)`, `window_union(range)` — as [`Arc<AddrSet>`] values
//! keyed by their range. A set is computed at most once per session and
//! then shared by reference across figures and across the worker
//! threads of `Repro::run_all`.
//!
//! The cache needs no invalidation by construction: datasets never
//! change after `finish()`, and the context holds them behind `Arc`, so
//! a cached entry can never go stale. Correctness-neutrality (cached
//! results byte-identical to fresh computation) is pinned by the
//! differential tests in `tests/engine.rs`.

use ipactive_core::{DailyDataset, DailyWindows, WeeklyDataset, WeeklyWindows};
use ipactive_net::AddrSet;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss accounting for one [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered by handing out an already-computed set.
    pub hits: u64,
    /// Queries that had to compute (and then cache) their set.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized window-query context over one daily and one weekly
/// dataset.
///
/// Single-slot queries (`day_set`, `week_set`) live in per-index
/// [`OnceLock`] slots — lock-free after first computation. Multi-slot
/// window unions are keyed by `(start, end)` in a mutex-guarded map;
/// the mutex is released while a miss computes, so concurrent workers
/// never serialize behind a scan (a lost race recomputes an identical
/// set and keeps the first insertion).
pub struct AnalysisCtx {
    daily: Arc<DailyDataset>,
    weekly: Arc<WeeklyDataset>,
    day_sets: Vec<OnceLock<Arc<AddrSet>>>,
    week_sets: Vec<OnceLock<Arc<AddrSet>>>,
    day_windows: Mutex<HashMap<(usize, usize), Arc<AddrSet>>>,
    week_windows: Mutex<HashMap<(usize, usize), Arc<AddrSet>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    bypass: AtomicBool,
}

impl AnalysisCtx {
    /// Builds an empty cache over the two datasets.
    pub fn new(daily: Arc<DailyDataset>, weekly: Arc<WeeklyDataset>) -> AnalysisCtx {
        AnalysisCtx {
            day_sets: (0..daily.num_days).map(|_| OnceLock::new()).collect(),
            week_sets: (0..weekly.num_weeks).map(|_| OnceLock::new()).collect(),
            daily,
            weekly,
            day_windows: Mutex::new(HashMap::new()),
            week_windows: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            bypass: AtomicBool::new(false),
        }
    }

    /// The daily dataset the context answers for.
    pub fn daily(&self) -> &Arc<DailyDataset> {
        &self.daily
    }

    /// The weekly dataset the context answers for.
    pub fn weekly(&self) -> &Arc<WeeklyDataset> {
        &self.weekly
    }

    /// Addresses active on day `d`, memoized.
    pub fn day_set(&self, d: usize) -> Arc<AddrSet> {
        if self.bypass() {
            return Arc::new(self.daily.day_set(d));
        }
        let slot = &self.day_sets[d];
        match slot.get() {
            Some(set) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                set.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                slot.get_or_init(|| Arc::new(self.daily.day_set(d))).clone()
            }
        }
    }

    /// Addresses active in week `w`, memoized.
    pub fn week_set(&self, w: usize) -> Arc<AddrSet> {
        if self.bypass() {
            return Arc::new(self.weekly.week_set(w));
        }
        let slot = &self.week_sets[w];
        match slot.get() {
            Some(set) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                set.clone()
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                slot.get_or_init(|| Arc::new(self.weekly.week_set(w))).clone()
            }
        }
    }

    /// Union of the day window `days`, memoized.
    pub fn day_window(&self, days: Range<usize>) -> Arc<AddrSet> {
        if self.bypass() {
            return Arc::new(self.daily.window_union(days));
        }
        if days.len() == 1 {
            // A one-day window and day_set(d) are the same query; give
            // them the same cache slot.
            return self.day_set(days.start);
        }
        let key = (days.start, days.end);
        if let Some(set) = self.day_windows.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return set.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(self.daily.window_union(days));
        self.day_windows
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(set)
            .clone()
    }

    /// Union of the week window `weeks`, memoized.
    pub fn week_window(&self, weeks: Range<usize>) -> Arc<AddrSet> {
        if self.bypass() {
            return Arc::new(self.weekly.window_union(weeks));
        }
        if weeks.len() == 1 {
            return self.week_set(weeks.start);
        }
        let key = (weeks.start, weeks.end);
        if let Some(set) = self.week_windows.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return set.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let set = Arc::new(self.weekly.window_union(weeks));
        self.week_windows
            .lock()
            .unwrap()
            .entry(key)
            .or_insert(set)
            .clone()
    }

    /// Union of all days — the figure suite's "CDN union".
    pub fn all_active(&self) -> Arc<AddrSet> {
        self.day_window(0..self.daily.num_days)
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Zeroes the hit/miss counters (cached sets are kept).
    pub fn reset_stats(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
    }

    /// When bypassing, every query computes a fresh set and neither
    /// reads nor populates the cache — the uncached baseline the
    /// `--timings` speedup is measured against.
    pub fn set_bypass(&self, on: bool) {
        self.bypass.store(on, Ordering::SeqCst);
    }

    fn bypass(&self) -> bool {
        self.bypass.load(Ordering::SeqCst)
    }
}

impl DailyWindows for AnalysisCtx {
    fn num_days(&self) -> usize {
        self.daily.num_days
    }

    fn union(&self, days: Range<usize>) -> Arc<AddrSet> {
        self.day_window(days)
    }
}

impl WeeklyWindows for AnalysisCtx {
    fn num_weeks(&self) -> usize {
        self.weekly.num_weeks
    }

    fn union(&self, weeks: Range<usize>) -> Arc<AddrSet> {
        self.week_window(weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_core::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn ctx() -> AnalysisCtx {
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        d.record_hits(2, a("10.0.0.2"), 1);
        d.record_hits(4, a("10.0.1.7"), 9);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        w.record_week(3, a("10.0.2.8"), 5);
        AnalysisCtx::new(Arc::new(d.finish()), Arc::new(w.finish()))
    }

    #[test]
    fn memoizes_by_identity_and_counts_hits() {
        let ctx = ctx();
        let first = ctx.day_window(0..5);
        let again = ctx.day_window(0..5);
        assert!(Arc::ptr_eq(&first, &again), "second query must share the first set");
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(*first, ctx.daily().window_union(0..5));
    }

    #[test]
    fn one_day_windows_share_the_day_set_slot() {
        let ctx = ctx();
        let via_window = ctx.day_window(2..3);
        let via_day = ctx.day_set(2);
        assert!(Arc::ptr_eq(&via_window, &via_day));
        assert_eq!(ctx.stats().misses, 1);
    }

    #[test]
    fn weekly_queries_match_fresh_computation() {
        let ctx = ctx();
        assert_eq!(*ctx.week_set(3), ctx.weekly().week_set(3));
        assert_eq!(*ctx.week_window(0..4), ctx.weekly().window_union(0..4));
        assert_eq!(*ctx.week_window(1..2), ctx.weekly().week_set(1));
    }

    #[test]
    fn bypass_computes_fresh_and_leaves_the_cache_cold() {
        let ctx = ctx();
        ctx.set_bypass(true);
        let x = ctx.day_window(0..5);
        let y = ctx.day_window(0..5);
        assert!(!Arc::ptr_eq(&x, &y), "bypass must not share results");
        assert_eq!(x, y, "...but they are still equal");
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.set_bypass(false);
        ctx.day_window(0..5);
        assert_eq!(ctx.stats().misses, 1, "bypass must not have populated the cache");
    }

    #[test]
    fn trait_paths_route_through_the_cache() {
        let ctx = ctx();
        let via_trait = DailyWindows::union(&ctx, 1..4);
        let direct = ctx.day_window(1..4);
        assert!(Arc::ptr_eq(&via_trait, &direct));
        assert_eq!(DailyWindows::num_days(&ctx), 5);
        assert_eq!(WeeklyWindows::num_weeks(&ctx), 4);
        let wk = WeeklyWindows::union(&ctx, 0..2);
        assert!(Arc::ptr_eq(&wk, &ctx.week_window(0..2)));
    }
}
