//! The analysis engine: one memoized activity-set cache shared by the
//! entire figure suite.
//!
//! Every figure and table of the paper is a window query over the same
//! two immutable activity matrices (Section 4.1's sliding windows), so
//! [`AnalysisCtx`] memoizes the three query shapes — `day_set(d)`,
//! `week_set(w)`, `window_union(range)` — as `Arc`-shared
//! [`ActiveSet`] values keyed by their range. A set is computed at most once per session and
//! then shared by reference across figures and across the worker
//! threads of `Repro::run_all`.
//!
//! The cache needs no invalidation by construction: datasets never
//! change after `finish()`, and the context holds them behind `Arc`, so
//! a cached entry can never go stale. Correctness-neutrality (cached
//! results byte-identical to fresh computation) is pinned by the
//! differential tests in `tests/engine.rs`.

use ipactive_core::{DailyDataset, DailyWindows, WeeklyDataset, WeeklyWindows};
use ipactive_net::{ActiveSet, TieredSet};
use ipactive_obs::{Counter, Event, EventKind, Registry};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss accounting for one [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered by handing out an already-computed set.
    pub hits: u64,
    /// Queries that had to compute (and then cache) their set.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized window-query context over one daily and one weekly
/// dataset.
///
/// Single-slot queries (`day_set`, `week_set`) live in per-index
/// [`OnceLock`] slots — lock-free after first computation. Multi-slot
/// window unions are keyed by `(start, end)` in a mutex-guarded map;
/// the mutex is released while a miss computes, so concurrent workers
/// never serialize behind a scan (a lost race recomputes an identical
/// set and keeps the first insertion).
///
/// Generic over the [`ActiveSet`] backend the cache materializes;
/// defaults to the tiered compressed representation. The cache logic
/// (slot layout, hit/miss accounting, bypass) is backend-independent,
/// which is what the differential suite in `tests/engine.rs` pins.
pub struct AnalysisCtx<S: ActiveSet = TieredSet> {
    daily: Arc<DailyDataset>,
    weekly: Arc<WeeklyDataset>,
    day_sets: Vec<OnceLock<Arc<S>>>,
    week_sets: Vec<OnceLock<Arc<S>>>,
    day_windows: Mutex<HashMap<(usize, usize), Arc<S>>>,
    week_windows: Mutex<HashMap<(usize, usize), Arc<S>>>,
    registry: Registry,
    /// Hit/miss accounting lives in the observability registry
    /// (`engine.cache.hit` / `engine.cache.miss`); the `*_base`
    /// offsets make [`AnalysisCtx::reset_stats`] a view-level reset
    /// that never rewinds the run-wide counters.
    hits: Counter,
    misses: Counter,
    hits_base: AtomicU64,
    misses_base: AtomicU64,
    bypass: AtomicBool,
}

impl<S: ActiveSet> AnalysisCtx<S> {
    /// Builds an empty cache over the two datasets, metering into a
    /// private registry.
    pub fn new(daily: Arc<DailyDataset>, weekly: Arc<WeeklyDataset>) -> Self {
        AnalysisCtx::new_with_obs(daily, weekly, &Registry::new())
    }

    /// [`AnalysisCtx::new`] with an explicit observability registry:
    /// cache traffic is published as `engine.cache.hit` /
    /// `engine.cache.miss`, the dataset extents as `engine.days` /
    /// `engine.weeks` gauges, and bypass toggles as
    /// [`EventKind::CacheBypass`] journal events.
    pub fn new_with_obs(
        daily: Arc<DailyDataset>,
        weekly: Arc<WeeklyDataset>,
        registry: &Registry,
    ) -> Self {
        registry.gauge("engine.days").set(daily.num_days as i64);
        registry.gauge("engine.weeks").set(weekly.num_weeks as i64);
        AnalysisCtx {
            day_sets: (0..daily.num_days).map(|_| OnceLock::new()).collect(),
            week_sets: (0..weekly.num_weeks).map(|_| OnceLock::new()).collect(),
            daily,
            weekly,
            day_windows: Mutex::new(HashMap::new()),
            week_windows: Mutex::new(HashMap::new()),
            registry: registry.clone(),
            hits: registry.counter("engine.cache.hit"),
            misses: registry.counter("engine.cache.miss"),
            hits_base: AtomicU64::new(0),
            misses_base: AtomicU64::new(0),
            bypass: AtomicBool::new(false),
        }
    }

    /// The daily dataset the context answers for.
    pub fn daily(&self) -> &Arc<DailyDataset> {
        &self.daily
    }

    /// The weekly dataset the context answers for.
    pub fn weekly(&self) -> &Arc<WeeklyDataset> {
        &self.weekly
    }

    /// Addresses active on day `d`, memoized.
    pub fn day_set(&self, d: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.day_set_as(d));
        }
        // Count the miss inside the once-init closure: racing readers
        // then agree on exactly one miss per slot, so hit/miss totals
        // are a pure function of the query set, not the interleaving.
        let mut computed = false;
        let set = self
            .day_sets[d]
            .get_or_init(|| {
                computed = true;
                Arc::new(self.daily.day_set_as(d))
            })
            .clone();
        if computed {
            self.misses.inc();
        } else {
            self.hits.inc();
        }
        set
    }

    /// Addresses active in week `w`, memoized.
    pub fn week_set(&self, w: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.week_set_as(w));
        }
        let mut computed = false;
        let set = self
            .week_sets[w]
            .get_or_init(|| {
                computed = true;
                Arc::new(self.weekly.week_set_as(w))
            })
            .clone();
        if computed {
            self.misses.inc();
        } else {
            self.hits.inc();
        }
        set
    }

    /// Union of the day window `days`, memoized.
    pub fn day_window(&self, days: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.window_union_as(days));
        }
        if days.len() == 1 {
            // A one-day window and day_set(d) are the same query; give
            // them the same cache slot.
            return self.day_set(days.start);
        }
        let key = (days.start, days.end);
        if let Some(set) = self.day_windows.lock().unwrap().get(&key) {
            self.hits.inc();
            return set.clone();
        }
        let set = Arc::new(self.daily.window_union_as(days));
        // Count by what the map says under the lock: a racing loser
        // records a hit (someone else owns the miss), keeping counts
        // independent of thread interleaving.
        match self.day_windows.lock().unwrap().entry(key) {
            Entry::Occupied(e) => {
                self.hits.inc();
                e.get().clone()
            }
            Entry::Vacant(v) => {
                self.misses.inc();
                v.insert(set).clone()
            }
        }
    }

    /// Union of the week window `weeks`, memoized.
    pub fn week_window(&self, weeks: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.window_union_as(weeks));
        }
        if weeks.len() == 1 {
            return self.week_set(weeks.start);
        }
        let key = (weeks.start, weeks.end);
        if let Some(set) = self.week_windows.lock().unwrap().get(&key) {
            self.hits.inc();
            return set.clone();
        }
        let set = Arc::new(self.weekly.window_union_as(weeks));
        match self.week_windows.lock().unwrap().entry(key) {
            Entry::Occupied(e) => {
                self.hits.inc();
                e.get().clone()
            }
            Entry::Vacant(v) => {
                self.misses.inc();
                v.insert(set).clone()
            }
        }
    }

    /// Union of all days — the figure suite's "CDN union".
    pub fn all_active(&self) -> Arc<S> {
        self.day_window(0..self.daily.num_days)
    }

    /// Current hit/miss counters (since construction or the last
    /// [`AnalysisCtx::reset_stats`]).
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get().saturating_sub(self.hits_base.load(Ordering::Relaxed)),
            misses: self.misses.get().saturating_sub(self.misses_base.load(Ordering::Relaxed)),
        }
    }

    /// Zeroes the hit/miss view (cached sets are kept). The run-wide
    /// `engine.cache.*` registry counters are monotonic and unaffected
    /// — only this context's [`AnalysisCtx::stats`] baseline moves.
    pub fn reset_stats(&self) {
        self.hits_base.store(self.hits.get(), Ordering::Relaxed);
        self.misses_base.store(self.misses.get(), Ordering::Relaxed);
    }

    /// When bypassing, every query computes a fresh set and neither
    /// reads nor populates the cache — the uncached baseline the
    /// `--timings` speedup is measured against. Toggles are journaled
    /// as [`EventKind::CacheBypass`] events.
    pub fn set_bypass(&self, on: bool) {
        let was = self.bypass.swap(on, Ordering::SeqCst);
        if was != on {
            self.registry.emit(Event::new(EventKind::CacheBypass).detail(if on {
                "cache bypass enabled"
            } else {
                "cache bypass disabled"
            }));
        }
    }

    fn bypass(&self) -> bool {
        self.bypass.load(Ordering::SeqCst)
    }
}

impl<S: ActiveSet> DailyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_days(&self) -> usize {
        self.daily.num_days
    }

    fn union(&self, days: Range<usize>) -> Arc<S> {
        self.day_window(days)
    }
}

impl<S: ActiveSet> WeeklyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_weeks(&self) -> usize {
        self.weekly.num_weeks
    }

    fn union(&self, weeks: Range<usize>) -> Arc<S> {
        self.week_window(weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_core::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn ctx() -> AnalysisCtx {
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        d.record_hits(2, a("10.0.0.2"), 1);
        d.record_hits(4, a("10.0.1.7"), 9);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        w.record_week(3, a("10.0.2.8"), 5);
        AnalysisCtx::new(Arc::new(d.finish()), Arc::new(w.finish()))
    }

    #[test]
    fn memoizes_by_identity_and_counts_hits() {
        let ctx = ctx();
        let first = ctx.day_window(0..5);
        let again = ctx.day_window(0..5);
        assert!(Arc::ptr_eq(&first, &again), "second query must share the first set");
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(*first, ctx.daily().window_union_as(0..5));
    }

    #[test]
    fn one_day_windows_share_the_day_set_slot() {
        let ctx = ctx();
        let via_window = ctx.day_window(2..3);
        let via_day = ctx.day_set(2);
        assert!(Arc::ptr_eq(&via_window, &via_day));
        assert_eq!(ctx.stats().misses, 1);
    }

    #[test]
    fn weekly_queries_match_fresh_computation() {
        let ctx = ctx();
        assert_eq!(*ctx.week_set(3), ctx.weekly().week_set_as(3));
        assert_eq!(*ctx.week_window(0..4), ctx.weekly().window_union_as(0..4));
        assert_eq!(*ctx.week_window(1..2), ctx.weekly().week_set_as(1));
    }

    #[test]
    fn bypass_computes_fresh_and_leaves_the_cache_cold() {
        let ctx = ctx();
        ctx.set_bypass(true);
        let x = ctx.day_window(0..5);
        let y = ctx.day_window(0..5);
        assert!(!Arc::ptr_eq(&x, &y), "bypass must not share results");
        assert_eq!(x, y, "...but they are still equal");
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.set_bypass(false);
        ctx.day_window(0..5);
        assert_eq!(ctx.stats().misses, 1, "bypass must not have populated the cache");
    }

    #[test]
    fn registry_counters_mirror_stats_and_survive_reset() {
        use ipactive_obs::SnapshotMode;
        let reg = Registry::new();
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        let ctx: AnalysisCtx = AnalysisCtx::new_with_obs(Arc::new(d.finish()), Arc::new(w.finish()), &reg);
        ctx.day_window(0..5);
        ctx.day_window(0..5);
        ctx.week_set(1);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 2 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 1);
        assert_eq!(snap.counter("engine.cache.miss"), 2);
        assert_eq!(snap.gauge("engine.days"), 5);
        assert_eq!(snap.gauge("engine.weeks"), 4);

        // reset_stats rewinds the view, never the run-wide counters.
        ctx.reset_stats();
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.day_window(0..5);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 0 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 2, "registry counter stays monotonic");

        // Bypass transitions (not repeats) are journaled.
        ctx.set_bypass(true);
        ctx.set_bypass(true);
        ctx.set_bypass(false);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::CacheBypass).count(), 2);
    }

    #[test]
    fn trait_paths_route_through_the_cache() {
        let ctx = ctx();
        let via_trait = DailyWindows::union(&ctx, 1..4);
        let direct = ctx.day_window(1..4);
        assert!(Arc::ptr_eq(&via_trait, &direct));
        assert_eq!(DailyWindows::num_days(&ctx), 5);
        assert_eq!(WeeklyWindows::num_weeks(&ctx), 4);
        let wk = WeeklyWindows::union(&ctx, 0..2);
        assert!(Arc::ptr_eq(&wk, &ctx.week_window(0..2)));
    }
}
