//! The analysis engine: one memoized activity-set cache shared by the
//! entire figure suite.
//!
//! Every figure and table of the paper is a window query over the same
//! two immutable activity matrices (Section 4.1's sliding windows), so
//! [`AnalysisCtx`] memoizes the three query shapes — `day_set(d)`,
//! `week_set(w)`, `window_union(range)` — as `Arc`-shared
//! [`ActiveSet`] values keyed by their range. A set is computed at
//! most once per session and then shared by reference across figures
//! and across the worker threads of `Repro::run_all`.
//!
//! ## Slot layout
//!
//! The key space is finite and known at construction: `d` days, `w`
//! weeks, and every window `s..e` with `0 ≤ s < e ≤ d` (resp. `w`).
//! So the cache is not a locked map but a flat, pre-keyed table of
//! [`OnceLock`] slots — single days/weeks in per-index vectors, and
//! multi-day windows in a triangular vector indexed by
//! [`window_slot`]. A hit is one lock-free `OnceLock::get`; a miss
//! computes inside `get_or_init`, so racing readers of the same key
//! block on the winner instead of each recomputing the set (the old
//! mutex-map design computed first and re-checked the map afterwards,
//! wasting a full scan per racing loser). One-day windows alias the
//! `day_set` slot; a multi-day window miss *composes*: starting at the
//! window's left edge it repeatedly grabs the longest already-cached
//! sub-window (falling back to the single day set), then merges the
//! pieces with one k-way [`ActiveSet::union_many`] pass. Because
//! union is associative and the tiered representation is canonical,
//! the result is byte-identical no matter which sub-windows happened
//! to be cached first.
//!
//! Composition reads slots *uncounted*: only the public query is
//! metered, as one hit (slot populated) or one miss (this call
//! computed it). Hit/miss totals are therefore a pure function of
//! the query set — exactly one miss per distinct key ever touched,
//! plus one hit per repeat — independent of thread count,
//! interleaving, and whatever composition tree a miss used.
//!
//! The cache needs no invalidation by construction: datasets never
//! change after `finish()`, and the context holds them behind `Arc`,
//! so a cached entry can never go stale. Correctness-neutrality
//! (cached results byte-identical to fresh computation) is pinned by
//! the differential tests in `tests/engine.rs`.

use ipactive_core::{DailyDataset, DailyWindows, WeeklyDataset, WeeklyWindows};
use ipactive_net::{ActiveSet, TieredSet};
use ipactive_obs::{Counter, Event, EventKind, Registry};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Hit/miss accounting for one [`AnalysisCtx`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Queries answered by handing out an already-computed set.
    pub hits: u64,
    /// Queries that had to compute (and then cache) their set.
    pub misses: u64,
}

impl CacheStats {
    /// Fraction of queries answered from the cache (0.0 when idle).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Flat index of window `s..e` (`0 ≤ s < e ≤ d_max`) in a triangular
/// table of `d_max(d_max+1)/2` slots: the windows starting at `s`
/// occupy a contiguous run of `d_max − s` slots.
fn window_slot(d_max: usize, s: usize, e: usize) -> usize {
    debug_assert!(s < e && e <= d_max);
    // offset(s) = Σ_{t<s} (d_max − t) = s(2·d_max − s + 1)/2, written
    // without an `s − 1` that would underflow at s = 0.
    s * (2 * d_max - s + 1) / 2 + (e - s - 1)
}

/// Memoized window-query context over one daily and one weekly
/// dataset.
///
/// See the module docs for the slot layout and the composition miss
/// path. Generic over the [`ActiveSet`] backend the cache
/// materializes; defaults to the tiered compressed representation.
/// The cache logic (slot layout, hit/miss accounting, bypass) is
/// backend-independent, which is what the differential suite in
/// `tests/engine.rs` pins.
pub struct AnalysisCtx<S: ActiveSet = TieredSet> {
    daily: Arc<DailyDataset>,
    weekly: Arc<WeeklyDataset>,
    day_sets: Vec<OnceLock<Arc<S>>>,
    week_sets: Vec<OnceLock<Arc<S>>>,
    /// Triangular window tables (see [`window_slot`]); the length-1
    /// diagonal entries stay empty — those queries alias the
    /// `day_sets`/`week_sets` slots.
    day_windows: Vec<OnceLock<Arc<S>>>,
    week_windows: Vec<OnceLock<Arc<S>>>,
    registry: Registry,
    /// Run-wide observability counters (`engine.cache.hit` /
    /// `engine.cache.miss`) — monotonic, shared with whatever else
    /// meters into the registry, never rewound.
    hits: Counter,
    misses: Counter,
    /// This context's own view of the same traffic, packed into one
    /// word — hits in the high 32 bits, misses in the low 32 — so
    /// [`AnalysisCtx::stats`] is a single coherent load and
    /// [`AnalysisCtx::reset_stats`] a single store, with no torn
    /// hit/miss pairs under concurrency. Each class saturates
    /// correctness at 2³² queries, far beyond a figure suite.
    local: AtomicU64,
    bypass: AtomicBool,
}

const HIT_ONE: u64 = 1 << 32;

impl<S: ActiveSet> AnalysisCtx<S> {
    /// Builds an empty cache over the two datasets, metering into a
    /// private registry.
    pub fn new(daily: Arc<DailyDataset>, weekly: Arc<WeeklyDataset>) -> Self {
        AnalysisCtx::new_with_obs(daily, weekly, &Registry::new())
    }

    /// [`AnalysisCtx::new`] with an explicit observability registry:
    /// cache traffic is published as `engine.cache.hit` /
    /// `engine.cache.miss`, the dataset extents as `engine.days` /
    /// `engine.weeks` gauges, and bypass toggles as
    /// [`EventKind::CacheBypass`] journal events.
    pub fn new_with_obs(
        daily: Arc<DailyDataset>,
        weekly: Arc<WeeklyDataset>,
        registry: &Registry,
    ) -> Self {
        registry.gauge("engine.days").set(daily.num_days as i64);
        registry.gauge("engine.weeks").set(weekly.num_weeks as i64);
        let d = daily.num_days;
        let w = weekly.num_weeks;
        AnalysisCtx {
            day_sets: (0..d).map(|_| OnceLock::new()).collect(),
            week_sets: (0..w).map(|_| OnceLock::new()).collect(),
            day_windows: (0..d * (d + 1) / 2).map(|_| OnceLock::new()).collect(),
            week_windows: (0..w * (w + 1) / 2).map(|_| OnceLock::new()).collect(),
            daily,
            weekly,
            registry: registry.clone(),
            hits: registry.counter("engine.cache.hit"),
            misses: registry.counter("engine.cache.miss"),
            local: AtomicU64::new(0),
            bypass: AtomicBool::new(false),
        }
    }

    /// The daily dataset the context answers for.
    pub fn daily(&self) -> &Arc<DailyDataset> {
        &self.daily
    }

    /// The weekly dataset the context answers for.
    pub fn weekly(&self) -> &Arc<WeeklyDataset> {
        &self.weekly
    }

    fn record(&self, hit: bool) {
        if hit {
            self.hits.inc();
            self.local.fetch_add(HIT_ONE, Ordering::Relaxed);
        } else {
            self.misses.inc();
            self.local.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Queries `slot`, counting a hit when the set is already there
    /// and a miss when this call's closure computes it. A racing
    /// reader blocks inside `get_or_init` until the winner finishes
    /// and then counts a hit: every key is computed exactly once, and
    /// the counts depend only on the query set.
    fn query_slot(&self, slot: &OnceLock<Arc<S>>, compute: impl FnOnce() -> Arc<S>) -> Arc<S> {
        if let Some(set) = slot.get() {
            self.record(true);
            return set.clone();
        }
        let mut computed = false;
        let set = slot
            .get_or_init(|| {
                computed = true;
                compute()
            })
            .clone();
        self.record(!computed);
        set
    }

    /// Addresses active on day `d`, memoized.
    pub fn day_set(&self, d: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.day_set_as(d));
        }
        self.query_slot(&self.day_sets[d], || Arc::new(self.daily.day_set_as(d)))
    }

    /// Addresses active in week `w`, memoized.
    pub fn week_set(&self, w: usize) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.week_set_as(w));
        }
        self.query_slot(&self.week_sets[w], || Arc::new(self.weekly.week_set_as(w)))
    }

    /// Composes the union of `range` from cached material without
    /// touching the public hit/miss counters: greedily take the
    /// longest already-cached window starting at the cursor, else the
    /// (memoized, uncounted) single unit set, then one k-way merge.
    ///
    /// `windows` is the triangular table the pieces come from, `unit`
    /// materializes one day/week. Runs inside the window slot's
    /// `get_or_init`, so probing that same slot just reads `None`.
    fn compose(
        &self,
        u_max: usize,
        range: Range<usize>,
        windows: &[OnceLock<Arc<S>>],
        units: &[OnceLock<Arc<S>>],
        unit: impl Fn(usize) -> S,
    ) -> Arc<S> {
        let _span = self.registry.span("engine.compose");
        let mut parts: Vec<Arc<S>> = Vec::new();
        let mut s = range.start;
        while s < range.end {
            let mut cached = None;
            let mut e = range.end;
            while e > s + 1 {
                if let Some(set) = windows[window_slot(u_max, s, e)].get() {
                    cached = Some((set.clone(), e));
                    break;
                }
                e -= 1;
            }
            match cached {
                Some((set, e)) => {
                    parts.push(set);
                    s = e;
                }
                None => {
                    parts.push(units[s].get_or_init(|| Arc::new(unit(s))).clone());
                    s += 1;
                }
            }
        }
        if parts.len() == 1 {
            return parts.pop().expect("non-empty range composes at least one part");
        }
        let refs: Vec<&S> = parts.iter().map(|p| &**p).collect();
        Arc::new(S::union_many(&refs))
    }

    /// Union of the day window `days`, memoized.
    ///
    /// A miss composes from the longest cached sub-windows (see
    /// `AnalysisCtx::compose`) merged in one
    /// [`ActiveSet::union_many`] pass, so e.g. a 28-day window over a
    /// sweep that already cached its two 14-day halves costs one
    /// 2-way merge instead of a fresh matrix scan or a 28-way one.
    pub fn day_window(&self, days: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.daily.window_union_as(days));
        }
        assert!(days.end <= self.daily.num_days, "window outside dataset");
        match days.len() {
            0 => return Arc::new(S::empty()),
            // A one-day window and day_set(d) are the same query; give
            // them the same cache slot.
            1 => return self.day_set(days.start),
            _ => {}
        }
        let d_max = self.daily.num_days;
        let slot = &self.day_windows[window_slot(d_max, days.start, days.end)];
        self.query_slot(slot, || {
            self.compose(d_max, days.clone(), &self.day_windows, &self.day_sets, |d| {
                self.daily.day_set_as(d)
            })
        })
    }

    /// Union of the week window `weeks`, memoized (composition as in
    /// [`AnalysisCtx::day_window`]).
    pub fn week_window(&self, weeks: Range<usize>) -> Arc<S> {
        if self.bypass() {
            return Arc::new(self.weekly.window_union_as(weeks));
        }
        assert!(weeks.end <= self.weekly.num_weeks, "window outside dataset");
        match weeks.len() {
            0 => return Arc::new(S::empty()),
            1 => return self.week_set(weeks.start),
            _ => {}
        }
        let w_max = self.weekly.num_weeks;
        let slot = &self.week_windows[window_slot(w_max, weeks.start, weeks.end)];
        self.query_slot(slot, || {
            self.compose(w_max, weeks.clone(), &self.week_windows, &self.week_sets, |w| {
                self.weekly.week_set_as(w)
            })
        })
    }

    /// Union of all days — the figure suite's "CDN union".
    pub fn all_active(&self) -> Arc<S> {
        self.day_window(0..self.daily.num_days)
    }

    /// Populates every day/week unit slot from one transposed pass per
    /// dataset ([`DailyDataset::day_sets_all`] /
    /// [`WeeklyDataset::week_sets_all`]) instead of `num_days +
    /// num_weeks` separate matrix scans.
    ///
    /// Called once before a figure run so the first figure to touch a
    /// wide window doesn't absorb every unit-set build on its own
    /// clock. Like all composition-side slot writes this is uncounted:
    /// [`AnalysisCtx::stats`] stays a pure function of the public
    /// query set. A no-op under bypass, and slots already populated
    /// (racing queries, a second call) keep their existing sets.
    pub fn prewarm_units(&self) {
        if self.bypass() {
            return;
        }
        let _span = self.registry.span("engine.prewarm_units");
        if self.day_sets.iter().any(|s| s.get().is_none()) {
            for (slot, set) in self.day_sets.iter().zip(self.daily.day_sets_all::<S>()) {
                slot.get_or_init(|| Arc::new(set));
            }
        }
        if self.week_sets.iter().any(|s| s.get().is_none()) {
            for (slot, set) in self.week_sets.iter().zip(self.weekly.week_sets_all::<S>()) {
                slot.get_or_init(|| Arc::new(set));
            }
        }
    }

    /// Current hit/miss counters (since construction or the last
    /// [`AnalysisCtx::reset_stats`]) — decoded from one atomic load,
    /// so the pair is always a consistent snapshot.
    pub fn stats(&self) -> CacheStats {
        let packed = self.local.load(Ordering::Relaxed);
        CacheStats { hits: packed >> 32, misses: packed & (HIT_ONE - 1) }
    }

    /// Zeroes the hit/miss view (cached sets are kept) in one atomic
    /// store. The run-wide `engine.cache.*` registry counters are
    /// monotonic and unaffected — only this context's
    /// [`AnalysisCtx::stats`] view moves.
    pub fn reset_stats(&self) {
        self.local.store(0, Ordering::Relaxed);
    }

    /// When bypassing, every query computes a fresh set and neither
    /// reads nor populates the cache — the uncached baseline the
    /// `--timings` speedup is measured against. Toggles are journaled
    /// as [`EventKind::CacheBypass`] events.
    pub fn set_bypass(&self, on: bool) {
        let was = self.bypass.swap(on, Ordering::SeqCst);
        if was != on {
            self.registry.emit(Event::new(EventKind::CacheBypass).detail(if on {
                "cache bypass enabled"
            } else {
                "cache bypass disabled"
            }));
        }
    }

    fn bypass(&self) -> bool {
        self.bypass.load(Ordering::SeqCst)
    }
}

impl<S: ActiveSet> DailyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_days(&self) -> usize {
        self.daily.num_days
    }

    fn union(&self, days: Range<usize>) -> Arc<S> {
        self.day_window(days)
    }
}

impl<S: ActiveSet> WeeklyWindows for AnalysisCtx<S> {
    type Set = S;

    fn num_weeks(&self) -> usize {
        self.weekly.num_weeks
    }

    fn union(&self, weeks: Range<usize>) -> Arc<S> {
        self.week_window(weeks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_core::{DailyDatasetBuilder, WeeklyDatasetBuilder};
    use ipactive_net::Addr;

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn ctx() -> AnalysisCtx {
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        d.record_hits(2, a("10.0.0.2"), 1);
        d.record_hits(4, a("10.0.1.7"), 9);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        w.record_week(3, a("10.0.2.8"), 5);
        AnalysisCtx::new(Arc::new(d.finish()), Arc::new(w.finish()))
    }

    #[test]
    fn window_slots_are_unique_and_in_bounds() {
        for d_max in [1usize, 2, 5, 52, 112] {
            let mut seen = vec![false; d_max * (d_max + 1) / 2];
            for s in 0..d_max {
                for e in s + 1..=d_max {
                    let idx = window_slot(d_max, s, e);
                    assert!(!seen[idx], "slot collision at {s}..{e} (d_max {d_max})");
                    seen[idx] = true;
                }
            }
            assert!(seen.iter().all(|&b| b), "unused slots with d_max {d_max}");
        }
    }

    #[test]
    fn memoizes_by_identity_and_counts_hits() {
        let ctx = ctx();
        let first = ctx.day_window(0..5);
        let again = ctx.day_window(0..5);
        assert!(Arc::ptr_eq(&first, &again), "second query must share the first set");
        // Composition is uncounted: the cold query is exactly 1 miss
        // (however many day sets it materialized internally), the
        // repeat exactly 1 hit.
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert_eq!(*first, ctx.daily().window_union_as(0..5));
    }

    #[test]
    fn composed_windows_reuse_cached_day_sets() {
        let ctx = ctx();
        for d in 0..5 {
            ctx.day_set(d); // warm every day slot: 5 misses
        }
        ctx.reset_stats();
        let window = ctx.day_window(1..4);
        // The composed miss reads the warmed day slots uncounted: the
        // public ledger sees exactly the one window query.
        assert_eq!(ctx.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(*window, ctx.daily().window_union_as(1..4));
        // Day slots were shared, not recomputed: querying one now is
        // a hit on the same Arc the composition consumed.
        let day = ctx.day_set(2);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 1 });
        assert!(day.len() <= window.len());
    }

    #[test]
    fn composed_windows_reuse_cached_sub_windows() {
        let ctx = ctx();
        ctx.day_window(0..2);
        ctx.day_window(2..4);
        ctx.reset_stats();
        // 0..5 decomposes into the two cached halves plus day 4; the
        // result must still equal a fresh full-range union, and the
        // ledger still sees one miss.
        let window = ctx.day_window(0..5);
        assert_eq!(ctx.stats(), CacheStats { hits: 0, misses: 1 });
        assert_eq!(*window, ctx.daily().window_union_as(0..5));
    }

    #[test]
    fn one_day_windows_share_the_day_set_slot() {
        let ctx = ctx();
        let via_window = ctx.day_window(2..3);
        let via_day = ctx.day_set(2);
        assert!(Arc::ptr_eq(&via_window, &via_day));
        assert_eq!(ctx.stats().misses, 1);
    }

    #[test]
    fn weekly_queries_match_fresh_computation() {
        let ctx = ctx();
        assert_eq!(*ctx.week_set(3), ctx.weekly().week_set_as(3));
        assert_eq!(*ctx.week_window(0..4), ctx.weekly().window_union_as(0..4));
        assert_eq!(*ctx.week_window(1..2), ctx.weekly().week_set_as(1));
    }

    #[test]
    fn bypass_computes_fresh_and_leaves_the_cache_cold() {
        let ctx = ctx();
        ctx.set_bypass(true);
        let x = ctx.day_window(0..5);
        let y = ctx.day_window(0..5);
        assert!(!Arc::ptr_eq(&x, &y), "bypass must not share results");
        assert_eq!(x, y, "...but they are still equal");
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.set_bypass(false);
        ctx.day_window(0..5);
        assert_eq!(ctx.stats().misses, 1, "bypass must not have populated the cache");
    }

    #[test]
    fn registry_counters_mirror_stats_and_survive_reset() {
        use ipactive_obs::SnapshotMode;
        let reg = Registry::new();
        let mut d = DailyDatasetBuilder::new(5);
        d.record_hits(0, a("10.0.0.1"), 3);
        let mut w = WeeklyDatasetBuilder::new(4);
        w.record_week(0, a("10.0.0.1"), 2);
        let ctx: AnalysisCtx =
            AnalysisCtx::new_with_obs(Arc::new(d.finish()), Arc::new(w.finish()), &reg);
        ctx.day_window(0..5);
        ctx.day_window(0..5);
        ctx.week_set(1);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 2 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 1);
        assert_eq!(snap.counter("engine.cache.miss"), 2);
        assert_eq!(snap.gauge("engine.days"), 5);
        assert_eq!(snap.gauge("engine.weeks"), 4);

        // reset_stats rewinds the view, never the run-wide counters.
        ctx.reset_stats();
        assert_eq!(ctx.stats(), CacheStats::default());
        ctx.day_window(0..5);
        assert_eq!(ctx.stats(), CacheStats { hits: 1, misses: 0 });
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("engine.cache.hit"), 2, "registry counter stays monotonic");

        // Bypass transitions (not repeats) are journaled.
        ctx.set_bypass(true);
        ctx.set_bypass(true);
        ctx.set_bypass(false);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.events_of(EventKind::CacheBypass).count(), 2);
    }

    #[test]
    fn stats_snapshots_never_tear_under_concurrent_traffic() {
        // Regression for the old two-read reset/stats pair: hammer one
        // cached key from many threads while a reader snapshots; every
        // snapshot must decode to totals consistent with the traffic
        // so far (hits can never exceed queries issued, and the final
        // tally is exact).
        let ctx = Arc::new(ctx());
        ctx.day_set(0); // 1 miss, slot warm
        const THREADS: usize = 8;
        const QUERIES: usize = 200;
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let ctx = Arc::clone(&ctx);
                scope.spawn(move || {
                    for _ in 0..QUERIES {
                        ctx.day_set(0);
                    }
                });
            }
            for _ in 0..100 {
                let s = ctx.stats();
                assert!(s.misses == 1, "exactly one computation ever: {s:?}");
                assert!(s.hits <= (THREADS * QUERIES) as u64);
            }
        });
        assert_eq!(
            ctx.stats(),
            CacheStats { hits: (THREADS * QUERIES) as u64, misses: 1 },
            "totals are a pure function of the query set"
        );
        ctx.reset_stats();
        assert_eq!(ctx.stats(), CacheStats::default());
    }

    #[test]
    fn trait_paths_route_through_the_cache() {
        let ctx = ctx();
        let via_trait = DailyWindows::union(&ctx, 1..4);
        let direct = ctx.day_window(1..4);
        assert!(Arc::ptr_eq(&via_trait, &direct));
        assert_eq!(DailyWindows::num_days(&ctx), 5);
        assert_eq!(WeeklyWindows::num_weeks(&ctx), 4);
        let wk = WeeklyWindows::union(&ctx, 0..2);
        assert!(Arc::ptr_eq(&wk, &ctx.week_window(0..2)));
    }
}
