//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! each compares the implementation the library ships against the
//! obvious alternative, justifying (or re-litigating) the choice.

use criterion::{criterion_group, criterion_main, Criterion};
use ipactive_logfmt::{crc32, FrameReader, FrameWriter, ReadMode, Record};
use ipactive_net::{covering_mask, Addr, AddrSet, DayBits, Prefix, PrefixTrie};
use std::collections::HashSet;
use std::hint::black_box;

fn sample_addrs(n: usize, seed: u64) -> Vec<Addr> {
    // Clustered like real activity: runs inside /24s with gaps.
    let mut out = Vec::with_capacity(n);
    let mut state = seed;
    let mut base = 0x0A00_0000u32;
    while out.len() < n {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        base = base.wrapping_add(((state >> 33) % 1024) as u32 * 256);
        let run = 1 + ((state >> 20) % 64) as u32;
        for i in 0..run {
            if out.len() >= n {
                break;
            }
            out.push(Addr::new(base | (i & 0xFF)));
        }
    }
    out
}

/// Sorted-vec sets vs hash sets for the up/down event difference.
fn ablation_set_difference(c: &mut Criterion) {
    let a = AddrSet::from_unsorted(sample_addrs(100_000, 1));
    let b = AddrSet::from_unsorted(sample_addrs(100_000, 2));
    let ha: HashSet<Addr> = a.iter().collect();
    let hb: HashSet<Addr> = b.iter().collect();
    let mut g = c.benchmark_group("ablation_set_difference");
    g.bench_function("sorted_vec_merge (shipped)", |bch| {
        bch.iter(|| black_box(a.difference(&b).len()))
    });
    g.bench_function("hashset_difference", |bch| {
        bch.iter(|| black_box(ha.difference(&hb).count()))
    });
    g.finish();
}

/// Bitset popcount range vs a naive per-day loop for STU.
fn ablation_daybits_count(c: &mut Criterion) {
    let rows: Vec<DayBits> = (0..100_000u64)
        .map(|i| DayBits::from_bits((i.wrapping_mul(0x9E3779B97F4A7C15) as u128) << (i % 17)))
        .collect();
    let mut g = c.benchmark_group("ablation_stu_counting");
    g.bench_function("popcount_range (shipped)", |bch| {
        bch.iter(|| {
            let total: u64 = rows.iter().map(|r| r.count_range(10, 100) as u64).sum();
            black_box(total)
        })
    });
    g.bench_function("per_day_loop", |bch| {
        bch.iter(|| {
            let mut total = 0u64;
            for r in &rows {
                for d in 10..100 {
                    if r.get(d) {
                        total += 1;
                    }
                }
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Covering-mask growth via binary-searched range probes vs a linear
/// scan over the exclusion set per candidate prefix.
fn ablation_covering_mask(c: &mut Criterion) {
    let exclusion = AddrSet::from_unsorted(sample_addrs(50_000, 3));
    let events: Vec<Addr> = sample_addrs(1_000, 4);
    let mut g = c.benchmark_group("ablation_covering_mask");
    g.bench_function("binary_search_probes (shipped)", |bch| {
        bch.iter(|| {
            let total: u32 =
                events.iter().map(|&a| covering_mask(a, &exclusion) as u32).sum();
            black_box(total)
        })
    });
    g.bench_function("linear_scan", |bch| {
        bch.iter(|| {
            let mut total = 0u32;
            for &a in &events {
                let mut mask = 32u8;
                while mask > 0 {
                    let candidate = Prefix::containing(a, mask - 1);
                    let hit = exclusion
                        .iter()
                        .any(|x| candidate.contains(x));
                    if hit {
                        break;
                    }
                    mask -= 1;
                }
                total += mask as u32;
            }
            black_box(total)
        })
    });
    g.finish();
}

/// Longest-prefix match: radix trie vs scanning the route list.
fn ablation_lpm(c: &mut Criterion) {
    let mut trie = PrefixTrie::new();
    let mut routes = Vec::new();
    for (i, addr) in sample_addrs(5_000, 5).into_iter().enumerate() {
        let len = 12 + (i % 13) as u8;
        let p = Prefix::new(addr, len);
        trie.insert(p, i as u32);
        routes.push((p, i as u32));
    }
    let probes = sample_addrs(2_000, 6);
    let mut g = c.benchmark_group("ablation_lpm");
    g.bench_function("radix_trie (shipped)", |bch| {
        bch.iter(|| {
            let hits = probes.iter().filter(|&&a| trie.longest_match(a).is_some()).count();
            black_box(hits)
        })
    });
    g.bench_function("linear_route_scan", |bch| {
        bch.iter(|| {
            let mut hits = 0usize;
            for &a in &probes {
                let best = routes
                    .iter()
                    .filter(|(p, _)| p.contains(a))
                    .max_by_key(|(p, _)| p.len());
                if best.is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    g.finish();
}

/// Frame decoding with and without checksum verification — the price
/// of corruption detection on the collector path.
fn ablation_checksum(c: &mut Criterion) {
    let mut buf = Vec::new();
    let mut w = FrameWriter::new(&mut buf);
    for (i, addr) in sample_addrs(20_000, 7).into_iter().enumerate() {
        w.write(&Record::Hits { day: (i % 112) as u16, addr, hits: (i as u64 % 997) + 1 })
            .unwrap();
    }
    w.finish().unwrap();
    let mut g = c.benchmark_group("ablation_checksum");
    g.bench_function("decode_with_crc (shipped)", |bch| {
        bch.iter(|| {
            let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
            let mut n = 0u64;
            while let Some(rec) = r.read().unwrap() {
                if matches!(rec, Record::Hits { .. }) {
                    n += 1;
                }
            }
            black_box(n)
        })
    });
    g.bench_function("crc32_alone_over_stream", |bch| {
        bch.iter(|| black_box(crc32(&buf)))
    });
    g.finish();
}

/// Per-address Hits records vs packed BlockDay frames: stream size
/// and decode throughput of the two wire formats.
fn ablation_packed_records(c: &mut Criterion) {
    use ipactive_logfmt::BlockDay;
    use ipactive_net::Block24;
    // 200 blocks × 1 day × 120 active addresses.
    let mut flat = Vec::new();
    let mut packed = Vec::new();
    {
        let mut wf = FrameWriter::new(&mut flat);
        let mut wp = FrameWriter::new(&mut packed);
        for blk in 0..200u32 {
            let block = Block24::new(0x0A_0000 + blk);
            let entries: Vec<(u8, u64)> =
                (0..120u8).map(|h| (h, (h as u64 * 7 + blk as u64) % 900 + 1)).collect();
            for &(h, hits) in &entries {
                wf.write(&Record::Hits { day: 3, addr: block.addr(h), hits }).unwrap();
            }
            wp.write(&Record::BlockDay(Box::new(BlockDay::new(3, block, entries)))).unwrap();
        }
        wf.finish().unwrap();
        wp.finish().unwrap();
    }
    let mut g = c.benchmark_group("ablation_packed_records");
    g.bench_function(format!("decode_flat_{}B", flat.len()), |bch| {
        bch.iter(|| {
            let mut r = FrameReader::new(&flat[..], ReadMode::Strict);
            let mut n = 0u64;
            while let Some(rec) = r.read().unwrap() {
                if let Record::Hits { hits, .. } = rec {
                    n += hits;
                }
            }
            black_box(n)
        })
    });
    g.bench_function(format!("decode_packed_{}B", packed.len()), |bch| {
        bch.iter(|| {
            let mut r = FrameReader::new(&packed[..], ReadMode::Strict);
            let mut n = 0u64;
            while let Some(rec) = r.read().unwrap() {
                if let Record::BlockDay(bd) = rec {
                    n += bd.entries.iter().map(|&(_, h)| h).sum::<u64>();
                }
            }
            black_box(n)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    ablation_set_difference,
    ablation_daybits_count,
    ablation_covering_mask,
    ablation_lpm,
    ablation_checksum,
    ablation_packed_records,
);
criterion_main!(benches);
