//! Criterion benchmarks of every analysis kernel, one group per paper
//! table/figure. Each runs against a fixed small universe so numbers
//! are comparable across changes.

use criterion::{criterion_group, criterion_main, Criterion};
use ipactive_bench::AnalysisCtx;
use ipactive_cdnsim::{monthly_counts, GrowthModel, Universe, UniverseConfig};
use ipactive_core::{
    blocks, census, change, churn, demographics, events, geo, hosts, timeline, traffic,
    visibility,
};
use ipactive_probe::ScanCampaign;
use ipactive_rir::YearMonth;
use std::hint::black_box;
use std::sync::{Arc, OnceLock};

struct Fixture {
    universe: Universe,
    daily: ipactive_core::DailyDataset,
    weekly: ipactive_core::WeeklyDataset,
    icmp: ipactive_net::AddrSet,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let universe = Universe::generate(UniverseConfig::small(0xBE7C4));
        let daily = universe.build_daily();
        let weekly = universe.build_weekly();
        let icmp = ScanCampaign::new(1, 8).run_union(&universe);
        Fixture { universe, daily, weekly, icmp }
    })
}

fn bench_fig01(c: &mut Criterion) {
    c.bench_function("fig01_monthly_counts_and_fit", |b| {
        b.iter(|| {
            let pts = monthly_counts(&GrowthModel::default());
            let fit = timeline::fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
            black_box(timeline::detect_stagnation(&pts, &fit, 0.5, 24))
        })
    });
}

fn bench_table1(c: &mut Criterion) {
    let f = fixture();
    let table = f.universe.bgp().base();
    c.bench_function("table1_daily_census", |b| {
        b.iter(|| black_box(census::daily_census(&f.daily, |blk| table.origin_of(blk.network()))))
    });
    c.bench_function("table1_weekly_census", |b| {
        b.iter(|| black_box(census::weekly_census(&f.weekly, |blk| table.origin_of(blk.network()))))
    });
}

fn bench_fig02(c: &mut Criterion) {
    let f = fixture();
    let cdn = f.daily.all_active();
    c.bench_function("fig02_visibility_splits", |b| {
        b.iter(|| {
            let s = visibility::split_addrs(&cdn, &f.icmp);
            let blocks = visibility::split_blocks(&cdn, &f.icmp);
            black_box((s, blocks))
        })
    });
}

fn bench_fig03(c: &mut Criterion) {
    let f = fixture();
    let cdn = f.daily.all_active();
    c.bench_function("fig03_geo_breakdowns", |b| {
        b.iter(|| {
            let by_rir = geo::by_rir(&cdn, &f.icmp, f.universe.delegations());
            let top = geo::top_countries(&cdn, &f.icmp, f.universe.delegations(), 11);
            black_box((by_rir, top))
        })
    });
}

fn bench_fig04(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig04a_daily_series", |b| {
        b.iter(|| black_box(churn::daily_series(&f.daily)))
    });
    c.bench_function("fig04b_window_sweep", |b| {
        b.iter(|| black_box(churn::window_sweep(&f.daily, &[1, 2, 4, 7, 14])))
    });
    c.bench_function("fig04c_year_drift", |b| {
        b.iter(|| black_box(churn::year_drift(&f.weekly)))
    });
}

fn bench_fig05(c: &mut Criterion) {
    let f = fixture();
    let table = f.universe.bgp().base();
    c.bench_function("fig05a_per_as_churn", |b| {
        b.iter(|| {
            black_box(churn::per_as_churn(&f.daily, 7, 50, |blk| {
                table.origin_of(blk.network())
            }))
        })
    });
    c.bench_function("fig05b_event_sizes_7d", |b| {
        b.iter(|| black_box(events::event_sizes(&f.daily, 7, events::EventDirection::Up)))
    });
    c.bench_function("fig05c_bgp_correlation_7d", |b| {
        b.iter(|| {
            black_box(events::bgp_correlation(
                &f.daily,
                7,
                f.universe.bgp(),
                f.universe.config().daily_offset as u16,
            ))
        })
    });
}

fn bench_table2(c: &mut Criterion) {
    let f = fixture();
    let weeks = f.weekly.num_weeks;
    c.bench_function("table2_long_term", |b| {
        b.iter(|| {
            black_box(churn::long_term(
                &f.weekly,
                0..4,
                weeks - 4..weeks,
                f.universe.bgp(),
                7,
            ))
        })
    });
}

fn bench_fig08(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig08a_change_detection", |b| {
        b.iter(|| black_box(change::detect(&f.daily, f.daily.num_days / 4, 0.25)))
    });
    c.bench_function("fig08b_fd_by_assignment", |b| {
        b.iter(|| black_box(blocks::fd_by_assignment(&f.daily, f.universe.ptr_table(), 16)))
    });
    c.bench_function("fig08c_stu_histogram", |b| {
        b.iter(|| black_box(blocks::stu_histogram_high_fd(&f.daily, 250, 10)))
    });
}

fn bench_fig09(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig09a_hits_by_days_active", |b| {
        b.iter(|| black_box(traffic::hits_by_days_active(&f.daily)))
    });
    c.bench_function("fig09b_cumulative_shares", |b| {
        b.iter(|| black_box(traffic::cumulative_shares(&f.daily)))
    });
    c.bench_function("fig09c_weekly_top_share", |b| {
        b.iter(|| black_box(traffic::weekly_top_share(&f.weekly, 0.1)))
    });
}

fn bench_fig10(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig10_ua_scatter_and_histogram", |b| {
        b.iter(|| {
            let pts = hosts::ua_scatter(&f.daily);
            let h = hosts::histogram2d(&pts, 8, 6);
            black_box((hosts::log_correlation(&pts), h))
        })
    });
}

fn bench_engine(c: &mut Criterion) {
    let f = fixture();
    let window = (f.daily.num_days / 4).max(2);
    c.bench_function("engine_event_sizes_uncached", |b| {
        // Every iteration rescans the matrix: the pre-engine cost of
        // one fig5b window pass.
        b.iter(|| black_box(events::event_sizes(&f.daily, window, events::EventDirection::Up)))
    });
    c.bench_function("engine_event_sizes_cached", |b| {
        // One shared AnalysisCtx across iterations: after the first,
        // every window union is a cache hit — the run_all steady state.
        let ctx: AnalysisCtx =
            AnalysisCtx::new(Arc::new(f.daily.clone()), Arc::new(f.weekly.clone()));
        b.iter(|| black_box(events::event_sizes(&ctx, window, events::EventDirection::Up)))
    });
    c.bench_function("engine_all_active_uncached", |b| {
        b.iter(|| black_box(f.daily.all_active()))
    });
    c.bench_function("engine_all_active_cached", |b| {
        let ctx: AnalysisCtx =
            AnalysisCtx::new(Arc::new(f.daily.clone()), Arc::new(f.weekly.clone()));
        b.iter(|| black_box(ctx.all_active()))
    });
}

fn bench_fig11_12(c: &mut Criterion) {
    let f = fixture();
    c.bench_function("fig11_demographics_cube", |b| {
        b.iter(|| {
            let feats = demographics::features(&f.daily);
            black_box(demographics::cube(&feats))
        })
    });
    c.bench_function("fig12_per_rir_grids", |b| {
        let feats = demographics::features(&f.daily);
        b.iter(|| black_box(demographics::per_rir(&feats, f.universe.delegations())))
    });
}

criterion_group!(
    benches,
    bench_fig01,
    bench_table1,
    bench_fig02,
    bench_fig03,
    bench_fig04,
    bench_fig05,
    bench_table2,
    bench_fig08,
    bench_fig09,
    bench_fig10,
    bench_fig11_12,
    bench_engine,
);
criterion_main!(benches);
