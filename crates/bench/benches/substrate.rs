//! Benchmarks of the data substrate: universe generation, dataset
//! builds, probing campaigns, and the framed log pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ipactive_cdnsim::{collect_daily, emit_daily_logs, Universe, UniverseConfig};
use ipactive_probe::{IcmpScanner, PortScanner};
use std::hint::black_box;
use std::sync::OnceLock;

fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| Universe::generate(UniverseConfig::tiny(0x5AB5)))
}

fn bench_generate(c: &mut Criterion) {
    c.bench_function("universe_generate_tiny", |b| {
        b.iter(|| black_box(Universe::generate(UniverseConfig::tiny(0x77))))
    });
}

fn bench_builds(c: &mut Criterion) {
    let u = universe();
    c.bench_function("build_daily_tiny", |b| b.iter(|| black_box(u.build_daily())));
    c.bench_function("build_weekly_tiny", |b| b.iter(|| black_box(u.build_weekly())));
}

fn bench_probing(c: &mut Criterion) {
    let u = universe();
    c.bench_function("icmp_single_scan", |b| {
        b.iter(|| black_box(IcmpScanner::new(1).scan(u, 0)))
    });
    c.bench_function("port_scan_any", |b| {
        b.iter(|| black_box(PortScanner::new().scan_any(u)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let u = universe();
    let mut encoded = Vec::new();
    emit_daily_logs(u, &mut encoded).unwrap();
    c.bench_function("logfmt_emit_daily", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            emit_daily_logs(u, &mut buf).unwrap();
            black_box(buf.len())
        })
    });
    c.bench_function("logfmt_collect_daily", |b| {
        b.iter(|| black_box(collect_daily(&encoded[..], u.config().daily_days).unwrap().1))
    });
}

criterion_group!(benches, bench_generate, bench_builds, bench_probing, bench_pipeline);
criterion_main!(benches);
