//! Benchmarks of the data substrate: universe generation, dataset
//! builds, probing campaigns, and the framed log pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use ipactive_cdnsim::{
    collect_daily, collect_daily_sharded, emit_daily_logs, emit_daily_shards, parallel_pipeline,
    Universe, UniverseConfig,
};
use ipactive_probe::{IcmpScanner, PortScanner};
use std::hint::black_box;
use std::sync::OnceLock;

fn universe() -> &'static Universe {
    static U: OnceLock<Universe> = OnceLock::new();
    U.get_or_init(|| Universe::generate(UniverseConfig::tiny(0x5AB5)))
}

fn bench_generate(c: &mut Criterion) {
    c.bench_function("universe_generate_tiny", |b| {
        b.iter(|| black_box(Universe::generate(UniverseConfig::tiny(0x77))))
    });
}

fn bench_builds(c: &mut Criterion) {
    let u = universe();
    c.bench_function("build_daily_tiny", |b| b.iter(|| black_box(u.build_daily())));
    c.bench_function("build_weekly_tiny", |b| b.iter(|| black_box(u.build_weekly())));
}

fn bench_probing(c: &mut Criterion) {
    let u = universe();
    c.bench_function("icmp_single_scan", |b| {
        b.iter(|| black_box(IcmpScanner::new(1).scan(u, 0)))
    });
    c.bench_function("port_scan_any", |b| {
        b.iter(|| black_box(PortScanner::new().scan_any(u)))
    });
}

fn bench_pipeline(c: &mut Criterion) {
    let u = universe();
    let mut encoded = Vec::new();
    emit_daily_logs(u, &mut encoded).unwrap();
    c.bench_function("logfmt_emit_daily", |b| {
        b.iter(|| {
            let mut buf = Vec::with_capacity(encoded.len());
            emit_daily_logs(u, &mut buf).unwrap();
            black_box(buf.len())
        })
    });
    c.bench_function("logfmt_collect_daily", |b| {
        b.iter(|| black_box(collect_daily(&encoded[..], u.config().daily_days).unwrap().1))
    });
}

/// The multi-collector scaling story: the same end-to-end pipeline at
/// one collector vs several, plus the isolated collector stage over
/// pre-encoded shards (where the scaling is purest — no generation
/// cost in the loop). On a ≥4-core machine `c4` beats `c1`.
fn bench_sharded_pipeline(c: &mut Criterion) {
    let u = universe();
    let mut group = c.benchmark_group("sharded_pipeline");
    for (workers, collectors) in [(1usize, 1usize), (4, 1), (4, 2), (4, 4)] {
        group.bench_function(format!("end_to_end_w{workers}_c{collectors}"), |b| {
            b.iter(|| black_box(parallel_pipeline(u, workers, collectors).1.totals))
        });
    }
    for collectors in [1usize, 2, 4] {
        let shards = emit_daily_shards(u, collectors).unwrap();
        group.bench_function(format!("collect_stage_c{collectors}"), |b| {
            b.iter(|| black_box(collect_daily_sharded(&shards, u.config().daily_days).1.totals))
        });
    }
    group.finish();
}

/// The log store's real-filesystem fast path. `LogStore` is generic
/// over its I/O plane; this group pins the cost of a store round-trip
/// on `RealFs` so a regression from the `Fs` indirection (which should
/// be zero-cost — the generic is monomorphized, the trait has no
/// dynamic dispatch) shows up as a diff against pre-refactor numbers.
fn bench_store(c: &mut Criterion) {
    use ipactive_cdnsim::{collect_from_store, persist_daily, persist_daily_atomic};
    use ipactive_logfmt::LogStore;

    let u = universe();
    let num_days = u.config().daily_days;
    let dir = std::env::temp_dir().join(format!("ipactive-bench-store-{}", std::process::id()));
    let mut group = c.benchmark_group("log_store");
    group.bench_function("persist_daily_realfs", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let store = LogStore::open(&dir).unwrap();
            persist_daily(u, &store).unwrap();
            black_box(store.days().unwrap().len())
        })
    });
    group.bench_function("persist_daily_atomic_realfs", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            let mut store = LogStore::open(&dir).unwrap();
            black_box(persist_daily_atomic(u, &mut store).unwrap())
        })
    });
    {
        let _ = std::fs::remove_dir_all(&dir);
        let store = LogStore::open(&dir).unwrap();
        persist_daily(u, &store).unwrap();
        group.bench_function("collect_from_store_realfs", |b| {
            b.iter(|| black_box(collect_from_store(&store, num_days).unwrap().1))
        });
        group.bench_function("fsck_dry_run_realfs", |b| {
            b.iter(|| {
                let report =
                    ipactive_logfmt::fsck(store.fs(), store.dir(), false).unwrap();
                black_box(report.is_healthy())
            })
        });
    }
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(
    benches,
    bench_generate,
    bench_builds,
    bench_probing,
    bench_pipeline,
    bench_sharded_pipeline,
    bench_store
);
criterion_main!(benches);
