//! `setops` — the tiered compressed set vs the sorted-Vec reference.
//!
//! Two passes share one synthetic workload (three densities chosen so
//! each chunk representation tier dominates one scenario):
//!
//! 1. A Criterion group `setops` timing union / intersect / difference
//!    / prefix counting for both backends at every density — the
//!    interactive `cargo bench` view.
//! 2. A recording pass that re-times the same operations (median of
//!    five), cross-checks the two backends element-for-element, builds
//!    the full-scale universe activity set on both backends, and
//!    writes the whole comparison — per-tier chunk census, resident
//!    bytes, wall milliseconds — to `BENCH_setops.json` (the artifact
//!    CI uploads next to `BENCH_repro.json`).
//!
//! `--test` (what `cargo test --benches` passes) switches to a
//! single-iteration smoke run at tiny scale with no file output.
//! `--scale tiny|small|full` overrides the recording-pass universe,
//! `--out FILE` the artifact path.

use criterion::Criterion;
use ipactive_bench::Scale;
use ipactive_net::{ActiveSet, Addr, Prefix, PrefixDensity, RefSet, TieredSet};
use std::hint::black_box;
use std::time::Instant;

/// One density scenario: every /24 chunk carries the same host
/// pattern, so the tiered set sits squarely in one representation
/// tier and the census in the JSON record names it.
struct Scenario {
    name: &'static str,
    /// Which tier the chunks of set `a` should all land in.
    expect_tier: &'static str,
    a: Vec<Addr>,
    b: Vec<Addr>,
}

/// Hosts per /24 for each density (sorted, deduplicated).
fn hosts(density: &str) -> Vec<u8> {
    match density {
        // <= 16 per chunk: the explicit sparse array tier.
        "small" => vec![3, 50, 97, 144, 191, 238],
        // Every other host: 128 addresses in 128 runs — dense bitmap.
        "medium" => (0..=254).step_by(2).collect(),
        // Fully lit: 256 addresses in one run — the run-list tier.
        "full" => (0..=255).collect(),
        _ => unreachable!(),
    }
}

fn addrs(first_block: u32, num_blocks: u32, hosts: &[u8]) -> Vec<Addr> {
    let mut out = Vec::with_capacity(num_blocks as usize * hosts.len());
    for blk in 0..num_blocks {
        let base = (0x0A_0000 + first_block + blk) << 8;
        for &h in hosts {
            out.push(Addr::new(base | h as u32));
        }
    }
    out
}

fn scenarios(num_blocks: u32) -> Vec<Scenario> {
    [("small", "sparse"), ("medium", "dense"), ("full", "runs")]
        .into_iter()
        .map(|(name, expect_tier)| Scenario {
            name,
            expect_tier,
            a: addrs(0, num_blocks, &hosts(name)),
            // Half the blocks overlap `a`, so union/intersect/difference
            // all have matching and non-matching chunks to merge.
            b: addrs(num_blocks / 2, num_blocks, &hosts(name)),
        })
        .collect()
}

/// The /16 and /24 probes the counting benchmarks sweep.
fn probe_prefixes(num_blocks: u32) -> Vec<Prefix> {
    let mut out = Vec::new();
    for blk in (0..num_blocks * 3 / 2).step_by(7) {
        let base = Addr::new((0x0A_0000 + blk) << 8);
        out.push(Prefix::new(base, 24));
        out.push(Prefix::new(base, 16));
    }
    out
}

/// Median wall-clock milliseconds of `f` over `reps` runs.
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|x, y| x.total_cmp(y));
    samples[samples.len() / 2]
}

fn backend_row<S: ActiveSet>(a: &S, b: &S, probes: &[Prefix], reps: usize) -> String {
    let union_ms = time_ms(reps, || a.union(b).len());
    let intersect_ms = time_ms(reps, || a.intersect(b).len());
    let difference_ms = time_ms(reps, || a.difference(b).len());
    let count_in_ms =
        time_ms(reps, || probes.iter().map(|&p| a.count_in(p)).sum::<usize>());
    format!(
        "{{\"memory_bytes\": {}, \"union_ms\": {:.4}, \"intersect_ms\": {:.4}, \
         \"difference_ms\": {:.4}, \"count_in_ms\": {:.4}}}",
        a.memory_bytes(),
        union_ms,
        intersect_ms,
        difference_ms,
        count_in_ms,
    )
}

fn main() {
    let mut args = std::env::args().skip(1);
    let mut test_mode = false;
    let mut scale: Option<Scale> = None;
    let mut out_path = "BENCH_setops.json".to_string();
    let mut seed: u64 = 2015;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--test" => test_mode = true,
            "--scale" => {
                scale = match args.next().as_deref() {
                    Some("tiny") => Some(Scale::Tiny),
                    Some("small") => Some(Scale::Small),
                    Some("full") => Some(Scale::Full),
                    _ => {
                        eprintln!("--scale needs tiny|small|full");
                        std::process::exit(2);
                    }
                };
            }
            "--out" => out_path = args.next().unwrap_or(out_path),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            // `cargo bench`/`cargo test` pass-throughs (`--bench`, filters).
            _ => {}
        }
    }
    let scale = scale.unwrap_or(if test_mode { Scale::Tiny } else { Scale::Full });
    let num_blocks: u32 = if test_mode { 64 } else { 2048 };
    let reps = if test_mode { 1 } else { 5 };

    let scns = scenarios(num_blocks);
    let probes = probe_prefixes(num_blocks);

    // Pass 1: the interactive Criterion group.
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("setops");
    for scn in &scns {
        let ta = TieredSet::from_sorted(scn.a.clone());
        let tb = TieredSet::from_sorted(scn.b.clone());
        let ra = RefSet::from_sorted_vec(scn.a.clone());
        let rb = RefSet::from_sorted_vec(scn.b.clone());
        g.bench_function(format!("union_tiered_{}", scn.name), |bch| {
            bch.iter(|| ta.union(&tb).len())
        });
        g.bench_function(format!("union_ref_{}", scn.name), |bch| {
            bch.iter(|| ra.union(&rb).len())
        });
        g.bench_function(format!("intersect_tiered_{}", scn.name), |bch| {
            bch.iter(|| ta.intersect(&tb).len())
        });
        g.bench_function(format!("intersect_ref_{}", scn.name), |bch| {
            bch.iter(|| ra.intersect(&rb).len())
        });
        g.bench_function(format!("count_in_tiered_{}", scn.name), |bch| {
            bch.iter(|| probes.iter().map(|&p| ta.count_in(p)).sum::<usize>())
        });
        g.bench_function(format!("count_in_ref_{}", scn.name), |bch| {
            bch.iter(|| probes.iter().map(|&p| ra.count_in(p)).sum::<usize>())
        });
        let density = ta.prefix_density();
        g.bench_function(format!("prefix_density_query_{}", scn.name), |bch| {
            bch.iter(|| probes.iter().map(|&p| density.count(p)).sum::<u64>())
        });
    }
    g.finish();

    // Pass 2: the JSON record (and a differential cross-check — the
    // bench refuses to record numbers for divergent backends).
    let mut rows = Vec::new();
    for scn in &scns {
        let ta = TieredSet::from_sorted(scn.a.clone());
        let tb = TieredSet::from_sorted(scn.b.clone());
        let ra = RefSet::from_sorted_vec(scn.a.clone());
        let rb = RefSet::from_sorted_vec(scn.b.clone());
        assert!(ta.union(&tb).iter().eq(ra.union(&rb).iter()), "{}: union diverged", scn.name);
        assert!(
            ta.intersect(&tb).iter().eq(ra.intersect(&rb).iter()),
            "{}: intersect diverged",
            scn.name
        );
        assert!(
            ta.difference(&tb).iter().eq(ra.difference(&rb).iter()),
            "{}: difference diverged",
            scn.name
        );
        for &p in &probes {
            assert_eq!(ta.count_in(p), ra.count_in(p), "{}: count_in({p}) diverged", scn.name);
        }
        let census = ta.repr_census();
        let density = PrefixDensity::from_set(&ta);
        let density_ms =
            time_ms(reps, || probes.iter().map(|&p| density.count(p)).sum::<u64>());
        rows.push(format!(
            "    {{\n      \"scenario\": \"{}\", \"dominant_tier\": \"{}\", \"addrs\": {},\n      \
             \"census\": {{\"sparse\": {}, \"runs\": {}, \"dense\": {}}},\n      \
             \"tiered\": {},\n      \"reference\": {},\n      \
             \"prefix_density_query_ms\": {:.4}, \"memory_ratio\": {:.4}\n    }}",
            scn.name,
            scn.expect_tier,
            ta.len(),
            census.sparse,
            census.runs,
            census.dense,
            backend_row(&ta, &tb, &probes, reps),
            backend_row(&ra, &rb, &probes, reps),
            density_ms,
            ta.memory_bytes() as f64 / ra.memory_bytes() as f64,
        ));
    }

    // Full-scale section: the exact activity set `repro --scale full`
    // memoizes, materialized on both backends.
    eprintln!("building {} universe for the resident-memory record ...", scale.name());
    let universe = ipactive_cdnsim::Universe::generate(scale.config(seed));
    let daily = universe.build_daily();
    let t = Instant::now();
    let tiered: TieredSet = daily.all_active_as();
    let tiered_build_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let reference: RefSet = daily.all_active_as();
    let ref_build_ms = t.elapsed().as_secs_f64() * 1e3;
    assert!(tiered.iter().eq(reference.iter()), "full-scale activity set diverged");
    let census = tiered.repr_census();
    let universe_row = format!(
        "  \"universe\": {{\n    \"scale\": \"{}\", \"seed\": {}, \"addrs\": {},\n    \
         \"census\": {{\"sparse\": {}, \"runs\": {}, \"dense\": {}}},\n    \
         \"tiered_memory_bytes\": {}, \"reference_memory_bytes\": {}, \"memory_ratio\": {:.4},\n    \
         \"tiered_build_ms\": {:.2}, \"reference_build_ms\": {:.2}\n  }}",
        scale.name(),
        seed,
        tiered.len(),
        census.sparse,
        census.runs,
        census.dense,
        tiered.memory_bytes(),
        reference.memory_bytes(),
        tiered.memory_bytes() as f64 / reference.memory_bytes() as f64,
        tiered_build_ms,
        ref_build_ms,
    );

    let json = format!(
        "{{\n  \"bench\": \"setops\",\n  \"blocks_per_scenario\": {num_blocks},\n  \
         \"scenarios\": [\n{}\n  ],\n{}\n}}\n",
        rows.join(",\n"),
        universe_row,
    );
    if test_mode {
        eprintln!("smoke mode: skipping {out_path}");
    } else {
        std::fs::write(&out_path, &json).expect("write BENCH_setops.json");
        eprintln!("set-ops record written to {out_path}");
    }
    println!("{json}");
}
