//! Property tests for the synthetic universe: structural invariants
//! that must hold for any seed and any (valid) scale knobs.

use ipactive_cdnsim::{Universe, UniverseConfig};
use ipactive_probe::ProbeTarget;
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = UniverseConfig> {
    (
        any::<u64>(),
        0.0f64..=0.3,  // restructure_rate
        0.0f64..=0.3,  // partial_lifespan_rate
        0.0f64..=0.5,  // bgp_visibility_rate
    )
        .prop_map(|(seed, restructure, lifespan, bgp_vis)| {
            let mut c = UniverseConfig::tiny(seed);
            c.restructure_rate = restructure;
            c.partial_lifespan_rate = lifespan;
            c.bgp_visibility_rate = bgp_vis;
            c
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn universe_structural_invariants(cfg in arb_config()) {
        let u = Universe::generate(cfg);
        // Blocks sorted and unique.
        prop_assert!(u.blocks.windows(2).all(|w| w[0].block < w[1].block));
        for (i, e) in u.blocks.iter().enumerate() {
            let a = &u.ases[e.as_index];
            // Ownership is consistent both ways.
            prop_assert!(a.region.contains(e.block.network()));
            prop_assert!(a.block_range.0 <= i && i < a.block_range.1);
            // Every block is delegated with matching registry data.
            let d = u.delegations().lookup(e.block.network());
            prop_assert!(d.is_some());
            prop_assert_eq!(d.unwrap().rir, a.rir);
            // Every block is routed to its owner at day 0.
            prop_assert_eq!(u.bgp().base().origin_of(e.block.addr(9)), Some(a.asn));
            // Lifecycle weeks are within the year.
            prop_assert!(e.alive_weeks.0 < e.alive_weeks.1);
            prop_assert!(e.alive_weeks.1 as usize <= u.config().weeks);
            // Restructure day inside the daily window.
            if let Some((day, _)) = e.restructure {
                prop_assert!(day >= u.config().daily_offset);
                prop_assert!(day < u.config().daily_offset + u.config().daily_days);
            }
        }
        // BGP events stay within the year.
        for ev in u.bgp().events() {
            prop_assert!((ev.day as usize) <= u.config().weeks * 7);
        }
    }

    #[test]
    fn datasets_respect_ground_truth(cfg in arb_config()) {
        let u = Universe::generate(cfg);
        let daily = u.build_daily();
        for rec in &daily.blocks {
            // Activity only in universe blocks.
            let entry = u
                .blocks
                .iter()
                .find(|e| e.block == rec.block);
            prop_assert!(entry.is_some(), "dataset block {} not in universe", rec.block);
            // Hits accounting: per-IP totals sum to the block total.
            let ip_sum: u64 = rec.ip_traffic.iter().map(|t| t.total_hits).sum();
            prop_assert_eq!(ip_sum, rec.total_hits);
            // days_active agrees with the bit rows.
            for t in &rec.ip_traffic {
                prop_assert_eq!(
                    t.days_active as u32,
                    rec.rows[t.host as usize].count()
                );
                prop_assert!(t.total_hits >= t.days_active as u64);
            }
            // UA uniques can never exceed samples.
            prop_assert!(rec.ua_unique as u64 <= rec.ua_samples);
        }
    }

    #[test]
    fn probe_target_is_in_bounds(cfg in arb_config()) {
        let u = Universe::generate(cfg);
        for block in u.candidate_blocks().into_iter().take(8) {
            for host in [0u8, 1, 127, 255] {
                let addr = block.addr(host);
                let p = u.icmp_response_probability(addr);
                prop_assert!((0.0..=1.0).contains(&p));
                // Routers and servers never overlap in one address.
                let router = u.is_router_interface(addr);
                let server = !u.open_services(addr).is_empty();
                prop_assert!(!(router && server));
            }
        }
    }

    #[test]
    fn weekly_contains_daily_window(cfg in arb_config()) {
        let u = Universe::generate(cfg);
        let daily = u.build_daily();
        let weekly = u.build_weekly();
        let w0 = u.config().daily_offset / 7;
        let w1 = (u.config().daily_offset + u.config().daily_days)
            .div_ceil(7)
            .min(weekly.num_weeks);
        let weekly_union = weekly.window_union(w0..w1);
        for addr in daily.all_active().iter() {
            prop_assert!(weekly_union.contains(addr));
        }
    }
}
