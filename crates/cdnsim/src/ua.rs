//! User-Agent string synthesis.
//!
//! The paper samples one in ~4K HTTP `User-Agent` headers and uses the
//! number of *distinct* strings per `/24` as a relative host count
//! (Section 6.3). The dataset layer stores 64-bit hashes (distinctness
//! is all the analyses need), but the strings themselves are modelled
//! here: every subscriber device renders a concrete, realistic header,
//! and the hash stored in the dataset is the FNV-1a hash of that
//! rendered string — so two devices collide exactly when their strings
//! are identical, as in reality.

use crate::behavior::SeedMixer;

/// Browser/OS templates for conventional devices (the "canonical case"
/// of the paper: browser + OS + platform).
const BROWSER_TEMPLATES: [&str; 6] = [
    "Mozilla/5.0 (Windows NT {v}.0; Win64; x64) AppleWebKit/537.36 Chrome/{v}{v}.0 Safari/537.36",
    "Mozilla/5.0 (Macintosh; Intel Mac OS X 10_{v}) AppleWebKit/600.{v} Safari/600.{v}",
    "Mozilla/5.0 (Windows NT 6.{v}; rv:{v}{v}.0) Gecko/20100101 Firefox/{v}{v}.0",
    "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 Chromium/{v}{v}.0",
    "Mozilla/5.0 (iPhone; CPU iPhone OS 9_{v} like Mac OS X) Version/9.{v} Mobile Safari/601.1",
    "Mozilla/5.0 (Linux; Android 5.{v}; SM-G{v}00) AppleWebKit/537.36 Mobile Chrome/{v}{v}.0",
];

/// App-style identifiers (the "much higher diversity in these strings"
/// the paper attributes to smartphone applications).
const APP_TEMPLATES: [&str; 8] = [
    "NewsReader/{v}.{v}.0 (iOS; in-app)",
    "WeatherNow/{v}.{v} CFNetwork/758.{v} Darwin/15.0.0",
    "ShopApp/{v}.{v}.{v} Android/5.{v}",
    "Mail/{v}.{v} (Mobile; rv:{v})",
    "VideoBox/{v}.0 (SmartTV; Tizen 2.{v})",
    "GameHub/{v}.{v} Unity/5.{v}.1",
    "PodCatcher/{v}.{v} (okhttp/3.{v})",
    "FitTracker/{v}.{v}.{v} (watchOS 2.{v})",
];

/// Crawler self-identifications (one string, huge volume — Figure 10's
/// bottom-right corner).
const BOT_TEMPLATES: [&str; 4] = [
    "SearchSpider/2.1 (+http://search.example/bot.html)",
    "IndexBot/1.0 (+http://crawler.example)",
    "FeedFetcher/3.3 (aggregator.example; 30 subscribers)",
    "ArchiveCrawler/0.9 (+http://archive.example/policy)",
];

fn fill(template: &str, seed: SeedMixer) -> String {
    // Replace each `{v}` with a digit derived from the seed path, so
    // the same (device, app) always renders the same string.
    let mut out = String::with_capacity(template.len());
    let mut i = 0u64;
    let mut rest = template;
    while let Some(pos) = rest.find("{v}") {
        out.push_str(&rest[..pos]);
        out.push(char::from(b'1' + (seed.child(i).value() % 9) as u8));
        rest = &rest[pos + 3..];
        i += 1;
    }
    out.push_str(rest);
    out
}

/// Renders the User-Agent string of one (subscriber, device, app)
/// combination. `app == 0` renders the device's browser; higher app
/// indices render app-specific identifiers.
pub fn render(subscriber_key: u64, device: u64, app: u64) -> String {
    let m = SeedMixer::new(subscriber_key).child(device);
    if app == 0 {
        let t = BROWSER_TEMPLATES[(m.value() % BROWSER_TEMPLATES.len() as u64) as usize];
        fill(t, m.child(0x0B))
    } else {
        let t = APP_TEMPLATES
            [((m.child(app).value()) % APP_TEMPLATES.len() as u64) as usize];
        fill(t, m.child(app).child(0x0A))
    }
}

/// Renders a crawler's User-Agent string.
pub fn render_bot(bot_key: u64) -> String {
    BOT_TEMPLATES[(bot_key % BOT_TEMPLATES.len() as u64) as usize].to_string()
}

/// FNV-1a hash of a User-Agent string — the form stored in log
/// records and datasets.
pub fn hash(ua: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in ua.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rendering_is_deterministic() {
        assert_eq!(render(42, 0, 0), render(42, 0, 0));
        assert_eq!(render(42, 1, 3), render(42, 1, 3));
        assert_eq!(render_bot(7), render_bot(7));
    }

    #[test]
    fn devices_and_apps_render_distinct_strings() {
        let mut seen = HashSet::new();
        for device in 0..3u64 {
            for app in 0..4u64 {
                seen.insert(render(99, device, app));
            }
        }
        // Some app collisions are allowed (shared templates), but the
        // population must be diverse.
        assert!(seen.len() >= 8, "only {} distinct strings", seen.len());
    }

    #[test]
    fn no_unfilled_placeholders() {
        for key in 0..50u64 {
            let ua = render(key, key % 3, key % 5);
            assert!(!ua.contains("{v}"), "unfilled template: {ua}");
            assert!(ua.is_ascii());
            assert!(!ua.is_empty());
        }
    }

    #[test]
    fn browsers_look_like_browsers_and_apps_like_apps() {
        // App 0 is always a Mozilla-style browser string.
        for key in 0..20u64 {
            assert!(render(key, 0, 0).starts_with("Mozilla/5.0"), "key {key}");
        }
        // Bots identify themselves with a crawler URL or product tag.
        for key in 0..8u64 {
            let b = render_bot(key);
            assert!(b.contains("example"), "bot {b}");
        }
    }

    #[test]
    fn hash_distinguishes_strings() {
        let a = hash("Mozilla/5.0 (X11; Linux x86_64)");
        let b = hash("Mozilla/5.0 (X11; Linux x86_65)");
        assert_ne!(a, b);
        assert_eq!(hash(""), 0xCBF2_9CE4_8422_2325);
        // Stable across calls.
        assert_eq!(hash("abc"), hash("abc"));
    }

    #[test]
    fn subscriber_population_hash_diversity() {
        // 100 subscribers × 2 devices × 3 apps: hashes should be
        // nearly collision-free.
        let mut hashes = HashSet::new();
        let mut strings = HashSet::new();
        for sub in 0..100u64 {
            let key = SeedMixer::new(sub).value();
            for device in 0..2 {
                for app in 0..3 {
                    let ua = render(key, device, app);
                    strings.insert(ua.clone());
                    hashes.insert(hash(&ua));
                }
            }
        }
        assert_eq!(hashes.len(), strings.len(), "hash collisions on distinct strings");
        assert!(strings.len() > 150, "only {} distinct strings", strings.len());
    }
}
