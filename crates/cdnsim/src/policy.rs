//! Address assignment policies and the per-day activity generator.
//!
//! Each `/24` block runs one policy; the policy decides, day by day,
//! which of the block's 256 addresses carry client traffic and how
//! much. The policies are the mechanisms whose fingerprints Section 5
//! of the paper reads off its activity matrices:
//!
//! * [`AssignmentPolicy::StaticSparse`] / `StaticDense` — Figure 6(a):
//!   fixed subscriber↔address mapping, horizontal activity bands.
//! * [`AssignmentPolicy::RoundRobin`] — Figure 6(b): an underutilized
//!   pool whose cursor walks the block, diagonal stripes.
//! * [`AssignmentPolicy::DhcpLong`] — Figure 6(c): sticky dynamic
//!   addresses with long leases.
//! * [`AssignmentPolicy::DhcpShort`] — Figure 6(d): ≤24h leases,
//!   daily reshuffle, near-complete filling.
//! * [`AssignmentPolicy::Gateway`] — CGN/proxy front addresses:
//!   always-on, huge traffic, very high User-Agent diversity
//!   (Figures 9/10's top-right corner).
//! * [`AssignmentPolicy::BotFarm`] — crawler addresses: huge traffic,
//!   one User-Agent (Figure 10's bottom-right corner).
//! * [`AssignmentPolicy::ServerFarm`] / `RouterInfra` / `NonWeb` —
//!   infrastructure invisible to the CDN but visible to probing
//!   (Figure 2(b)).

use crate::behavior::{lognormal, weekday_factor, SeedMixer};
use crate::config::CountryProfile;
use ipactive_net::AddrBits256;
use ipactive_probe::ServiceSet;
use rand::RngExt;

/// Assignment policy of one `/24` block.
#[derive(Debug, Clone, PartialEq)]
pub enum AssignmentPolicy {
    /// Allocated but unused space.
    Unused,
    /// Statically assigned, sparsely populated (e.g. small campus).
    StaticSparse {
        /// Number of subscribers (≪ 256).
        subscribers: u16,
    },
    /// Statically assigned, densely populated.
    StaticDense {
        /// Number of subscribers (≲ 256).
        subscribers: u16,
    },
    /// Dynamic pool assigned round-robin; underutilized pools show
    /// the Figure 6(b) diagonal pattern.
    RoundRobin {
        /// Concurrent subscribers per day (pool is the whole /24).
        subscribers: u16,
    },
    /// DHCP with ≤24h lease: fresh random addresses daily.
    DhcpShort {
        /// Subscriber population.
        subscribers: u16,
    },
    /// DHCP with a long lease: sticky mapping, occasional renumber.
    DhcpLong {
        /// Subscriber population.
        subscribers: u16,
        /// Days a subscriber keeps an address.
        hold_days: u16,
    },
    /// Carrier-grade NAT / proxy gateway front addresses.
    Gateway {
        /// Number of gateway addresses (from host 0 upward).
        gateways: u8,
        /// Users aggregated behind each gateway address.
        users_per_gateway: u32,
    },
    /// Crawler / bot farm.
    BotFarm {
        /// Number of bot addresses.
        bots: u8,
    },
    /// WWW/mail servers: no CDN client activity, probe-visible.
    ServerFarm {
        /// Number of server addresses.
        servers: u16,
    },
    /// Router interfaces: traceroute-visible, no client traffic.
    RouterInfra {
        /// Number of interface addresses.
        interfaces: u16,
    },
    /// Hosts active on the Internet but never talking to the CDN
    /// (the "unknown" slice of Figure 2(b)).
    NonWeb {
        /// Number of such hosts.
        hosts: u16,
    },
}

/// Who is behind an active address on a given day — drives User-Agent
/// sampling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HostPopulation {
    /// A single subscriber (possibly multi-device) keyed by a stable id.
    Subscriber(u64),
    /// A gateway aggregating `users` distinct users.
    Gateway {
        /// Stable base key; user `i` derives from `(base, i)`.
        base: u64,
        /// Aggregated user count.
        users: u32,
    },
    /// An automated client with a single User-Agent.
    Bot(u64),
}

/// One active address on one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayEntry {
    /// Host index within the block.
    pub host: u8,
    /// Successful requests issued that day.
    pub hits: u32,
    /// Population behind the address (for UA sampling).
    pub pop: HostPopulation,
}

/// Per-subscriber stable parameters, derived deterministically.
struct Subscriber {
    key: u64,
    base_rate: f64,
    intensity: f64,
    start_week: u16,
    end_week: u16,
}

fn subscriber(seed: SeedMixer, s: u16, weeks: usize) -> Subscriber {
    let m = seed.child(0x5B).child(s as u64);
    let key = m.value();
    // Activity propensity: most subscribers are online nearly every
    // day (always-on home routers, office networks), a tail is
    // intermittent — calibrated so aggregate daily churn lands near
    // the paper's ~8% (Figure 4(a)/(b)).
    let base_rate = 0.97 - 0.55 * m.child(1).unit().powf(2.2);
    // Traffic intensity: heavy-tailed, and *coupled to activity* —
    // heavy users are the ones online every day, which is what makes
    // Figure 9(a)'s median-hits curve rise with days active.
    let rate_boost = ((base_rate - 0.42) / 0.55).clamp(0.0, 1.0);
    let intensity =
        12.0 * (0.8 * m.child(2).normal()).exp() * (1.0 + 9.0 * rate_boost * rate_boost);
    // Subscriber lifespan: ~90% span the whole year, the rest join or
    // leave mid-year (long-term churn at single-address granularity).
    let roll = m.child(3).unit();
    let w = weeks as u16;
    let (start_week, end_week) = if roll < 0.90 {
        (0, w)
    } else if roll < 0.95 {
        ((m.child(4).unit() * (w as f64 * 0.8)) as u16 + 1, w)
    } else {
        (0, (m.child(5).unit() * (w as f64 * 0.8)) as u16 + 2)
    };
    Subscriber { key, base_rate, intensity, start_week, end_week }
}

fn online(sub: &Subscriber, seed: SeedMixer, s: u16, t: usize, institutional: bool) -> bool {
    let week = (t / 7) as u16;
    if week < sub.start_week || week >= sub.end_week {
        return false;
    }
    let p = sub.base_rate * weekday_factor(institutional, (t % 7) as u8);
    seed.child(0xD0).child(t as u64).child(s as u64).unit() < p
}

fn daily_hits(sub: &Subscriber, seed: SeedMixer, s: u16, t: usize) -> u32 {
    let mut rng = seed.child(0x417).child(t as u64).child(s as u64).rng();
    (lognormal(&mut rng, sub.intensity, 0.9).round() as u32).max(1)
}

/// A seeded permutation of 0..=255 (Fisher–Yates).
fn permutation(seed: SeedMixer) -> [u8; 256] {
    let mut perm = [0u8; 256];
    for (i, p) in perm.iter_mut().enumerate() {
        *p = i as u8;
    }
    let mut rng = seed.rng();
    for i in (1..256usize).rev() {
        let j = rng.random_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// A policy bound to a block seed with per-subscriber state
/// precomputed — the fast path used by the dataset builders, which
/// evaluate hundreds of days per block.
pub struct PolicySim {
    policy: AssignmentPolicy,
    seed: SeedMixer,
    institutional: bool,
    subs: Vec<Subscriber>,
}

impl PolicySim {
    /// Prepares the simulation state for one block.
    pub fn new(
        policy: AssignmentPolicy,
        seed: SeedMixer,
        institutional: bool,
        weeks: usize,
    ) -> PolicySim {
        let n_subs = match policy {
            AssignmentPolicy::StaticSparse { subscribers }
            | AssignmentPolicy::StaticDense { subscribers } => subscribers.min(256),
            AssignmentPolicy::RoundRobin { subscribers }
            | AssignmentPolicy::DhcpShort { subscribers }
            | AssignmentPolicy::DhcpLong { subscribers, .. } => subscribers,
            _ => 0,
        };
        let subs = (0..n_subs).map(|s| subscriber(seed, s, weeks)).collect();
        PolicySim { policy, seed, institutional, subs }
    }

    /// Generates the block's activity for absolute day `t`. Entries
    /// are host-deduplicated (shared addresses merge their hits).
    pub fn eval_day(&self, t: usize) -> Vec<DayEntry> {
        let seed = self.seed;
        let institutional = self.institutional;
        let mut acc: Vec<DayEntry> = Vec::new();
        let mut push = |host: u8, hits: u32, pop: HostPopulation| {
            if let Some(e) = acc.iter_mut().find(|e| e.host == host) {
                e.hits = e.hits.saturating_add(hits);
            } else {
                acc.push(DayEntry { host, hits, pop });
            }
        };
        match self.policy {
            AssignmentPolicy::Unused
            | AssignmentPolicy::ServerFarm { .. }
            | AssignmentPolicy::RouterInfra { .. }
            | AssignmentPolicy::NonWeb { .. } => {}
            AssignmentPolicy::StaticSparse { .. } | AssignmentPolicy::StaticDense { .. } => {
                for (s, sub) in self.subs.iter().enumerate() {
                    let s = s as u16;
                    if online(sub, seed, s, t, institutional) {
                        // Stable spread over the block (coprime stride).
                        let host = ((s as u32 * 151 + 7) % 256) as u8;
                        push(host, daily_hits(sub, seed, s, t), HostPopulation::Subscriber(sub.key));
                    }
                }
            }
            AssignmentPolicy::RoundRobin { subscribers } => {
                // The pool cursor creeps a few addresses per day,
                // producing the slow diagonal stripes of Figure 6(b)
                // (a fast cursor would look like daily reassignment).
                let mut idx = 0u32;
                let expected: u32 = (subscribers as f64 * 0.8) as u32 + 1;
                let step = (expected / 16).max(1);
                let cursor = (t as u32 * step) % 256;
                for (s, sub) in self.subs.iter().enumerate() {
                    let s = s as u16;
                    if online(sub, seed, s, t, institutional) {
                        let host = ((cursor + idx) % 256) as u8;
                        idx += 1;
                        push(host, daily_hits(sub, seed, s, t), HostPopulation::Subscriber(sub.key));
                    }
                }
            }
            AssignmentPolicy::DhcpShort { .. } => {
                let perm = permutation(seed.child(0xDA11).child(t as u64));
                let mut idx = 0usize;
                for (s, sub) in self.subs.iter().enumerate() {
                    let s = s as u16;
                    if online(sub, seed, s, t, institutional) {
                        let host = perm[idx % 256];
                        idx += 1;
                        push(host, daily_hits(sub, seed, s, t), HostPopulation::Subscriber(sub.key));
                    }
                }
            }
            AssignmentPolicy::DhcpLong { hold_days, .. } => {
                let hold = hold_days.max(1) as usize;
                for (s, sub) in self.subs.iter().enumerate() {
                    let s = s as u16;
                    if online(sub, seed, s, t, institutional) {
                        let phase = (sub.key % hold as u64) as usize;
                        let epoch = (t + phase) / hold;
                        // Sticky leases: most expiries renew in place;
                        // only ~15% of them hand out a new address
                        // (Figure 6(c): "some IP addresses having
                        // almost continuous activity").
                        let mut renumber_epoch = epoch;
                        while renumber_epoch > 0
                            && seed
                                .child(0x4E4E)
                                .child(s as u64)
                                .child(renumber_epoch as u64)
                                .unit()
                                >= 0.15
                        {
                            renumber_epoch -= 1;
                        }
                        let host = (seed
                            .child(0xD1C)
                            .child(s as u64)
                            .child(renumber_epoch as u64)
                            .value()
                            % 256) as u8;
                        push(host, daily_hits(sub, seed, s, t), HostPopulation::Subscriber(sub.key));
                    }
                }
            }
            AssignmentPolicy::Gateway { gateways, users_per_gateway } => {
                for g in 0..gateways {
                    let m = seed.child(0x6A7E).child(g as u64);
                    let base = m.value();
                    // Aggregate traffic of many users; never a zero
                    // day. Gateway populations grow through the year —
                    // the mechanism behind the paper's traffic
                    // consolidation trend (Figure 9(c)).
                    let mut rng = m.child(t as u64).rng();
                    let per_user = 8.0 * weekday_factor(false, (t % 7) as u8);
                    let growth = 1.0 + 0.35 * (t as f64 / 364.0).min(1.0);
                    let hits = lognormal(
                        &mut rng,
                        users_per_gateway as f64 * per_user * growth,
                        0.25,
                    );
                    push(
                        g,
                        (hits.round() as u32).max(1),
                        HostPopulation::Gateway { base, users: users_per_gateway },
                    );
                }
            }
            AssignmentPolicy::BotFarm { bots } => {
                for bt in 0..bots {
                    let m = seed.child(0xB07).child(bt as u64);
                    if m.child(t as u64).unit() < 0.97 {
                        let mut rng = m.child(t as u64).child(1).rng();
                        let hits = lognormal(&mut rng, 25_000.0, 0.5);
                        push(bt, (hits.round() as u32).max(1), HostPopulation::Bot(m.value()));
                    }
                }
            }
        }
        acc
    }
}

impl AssignmentPolicy {
    /// Whether the policy ever produces CDN client traffic.
    pub fn cdn_active(&self) -> bool {
        !matches!(
            self,
            AssignmentPolicy::Unused
                | AssignmentPolicy::ServerFarm { .. }
                | AssignmentPolicy::RouterInfra { .. }
                | AssignmentPolicy::NonWeb { .. }
        )
    }

    /// One-shot convenience around [`PolicySim`]: generates the
    /// block's activity for absolute day `t`.
    pub fn eval_day(
        &self,
        seed: SeedMixer,
        institutional: bool,
        weeks: usize,
        t: usize,
    ) -> Vec<DayEntry> {
        PolicySim::new(self.clone(), seed, institutional, weeks).eval_day(t)
    }

    /// Precomputes the block's probe behaviour: per-host ICMP response
    /// probabilities, exposed services, and router-interface flags.
    pub fn probe_profile(&self, seed: SeedMixer, country: &CountryProfile) -> BlockProbeProfile {
        let mut icmp = Box::new([0f32; 256]);
        let mut services = Vec::new();
        let mut routers = AddrBits256::new();
        // Client-address responsiveness has two *persistent* gates —
        // NAT/firewall suppression and whether the address is actually
        // handed out — plus the per-probe country response rate. The
        // gates are per-host coins (not per-scan probabilities):
        // repeated scans of the same month see the same assignment, so
        // a scan campaign must not "discover" the unassigned tail of a
        // pool.
        let client_prob = |s: u16, occupancy: f64| -> f32 {
            let m = seed.child(0x1C3).child(s as u64);
            // NAT-suppressed hosts and addresses not handed out during
            // the scan period are equally silent.
            if m.unit() < country.nat_rate || m.child(9).unit() >= occupancy {
                0.0
            } else {
                country.icmp_base as f32
            }
        };
        match *self {
            AssignmentPolicy::Unused => {}
            AssignmentPolicy::StaticSparse { subscribers }
            | AssignmentPolicy::StaticDense { subscribers } => {
                for s in 0..subscribers.min(256) {
                    let host = ((s as u32 * 151 + 7) % 256) as usize;
                    let sub = subscriber(seed, s, 52);
                    icmp[host] = client_prob(s, sub.base_rate.max(0.4));
                }
            }
            AssignmentPolicy::RoundRobin { subscribers } => {
                let occupancy = (subscribers as f64 * 0.6 / 256.0).min(1.0);
                for host in 0..256u16 {
                    icmp[host as usize] = client_prob(host, occupancy);
                }
            }
            AssignmentPolicy::DhcpShort { subscribers } => {
                let occupancy = (subscribers as f64 * 0.6 / 256.0).min(1.0);
                for host in 0..256u16 {
                    icmp[host as usize] = client_prob(host, occupancy);
                }
            }
            AssignmentPolicy::DhcpLong { subscribers, .. } => {
                let occupancy = (subscribers as f64 * 0.6 / 256.0).min(1.0);
                for host in 0..256u16 {
                    icmp[host as usize] = client_prob(host, occupancy);
                }
            }
            AssignmentPolicy::Gateway { gateways, .. } => {
                for g in 0..gateways {
                    icmp[g as usize] = 0.9;
                }
            }
            AssignmentPolicy::BotFarm { bots } => {
                for bt in 0..bots {
                    icmp[bt as usize] = 0.8;
                }
            }
            AssignmentPolicy::ServerFarm { servers } => {
                for s in 0..servers.min(256) {
                    let host = ((s as u32 * 151 + 7) % 256) as usize;
                    icmp[host] = 0.85;
                    let set = if seed.child(0x5E4).child(s as u64).unit() < 0.7 {
                        ServiceSet::web()
                    } else {
                        ServiceSet::mail()
                    };
                    services.push((host as u8, set));
                }
            }
            AssignmentPolicy::RouterInfra { interfaces } => {
                for i in 0..interfaces.min(256) {
                    let host = ((i as u32 * 151 + 7) % 256) as usize;
                    icmp[host] = 0.95;
                    routers.set(host as u8);
                }
            }
            AssignmentPolicy::NonWeb { hosts } => {
                for h in 0..hosts.min(256) {
                    let host = ((h as u32 * 151 + 7) % 256) as usize;
                    icmp[host] = (country.icmp_base * 0.7) as f32;
                }
            }
        }
        BlockProbeProfile { icmp, services, routers }
    }
}

/// Probe-facing ground truth of one block.
#[derive(Debug, Clone)]
pub struct BlockProbeProfile {
    /// Per-host ICMP response probability.
    pub icmp: Box<[f32; 256]>,
    /// `(host, services)` pairs for server hosts.
    pub services: Vec<(u8, ServiceSet)>,
    /// Router interface hosts.
    pub routers: AddrBits256,
}

impl BlockProbeProfile {
    /// Services of a host (empty when not a server).
    pub fn services_of(&self, host: u8) -> ServiceSet {
        self.services
            .iter()
            .find(|(h, _)| *h == host)
            .map(|&(_, s)| s)
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> SeedMixer {
        SeedMixer::new(0xFEED)
    }

    fn country() -> CountryProfile {
        crate::config::COUNTRY_PROFILES[0]
    }

    #[test]
    fn unused_and_infra_produce_no_traffic() {
        for p in [
            AssignmentPolicy::Unused,
            AssignmentPolicy::ServerFarm { servers: 10 },
            AssignmentPolicy::RouterInfra { interfaces: 4 },
            AssignmentPolicy::NonWeb { hosts: 9 },
        ] {
            assert!(!p.cdn_active());
            assert!(p.eval_day(seed(), false, 52, 5).is_empty());
        }
    }

    #[test]
    fn eval_is_deterministic() {
        let p = AssignmentPolicy::DhcpShort { subscribers: 120 };
        let a = p.eval_day(seed(), false, 52, 17);
        let b = p.eval_day(seed(), false, 52, 17);
        assert_eq!(a, b);
        assert!(!a.is_empty());
    }

    #[test]
    fn static_policy_is_sticky() {
        let p = AssignmentPolicy::StaticSparse { subscribers: 30 };
        // Hosts active on day 3 that are also active on day 40 must map
        // to identical (host, key) pairs: the mapping never moves.
        let d3 = p.eval_day(seed(), false, 52, 3);
        let d40 = p.eval_day(seed(), false, 52, 40);
        for e3 in &d3 {
            if let Some(e40) = d40.iter().find(|e| e.host == e3.host) {
                assert_eq!(e3.pop, e40.pop, "host {} switched subscriber", e3.host);
            }
        }
        // FD over many days stays ≤ subscriber count.
        let mut seen = std::collections::HashSet::new();
        for t in 0..60 {
            for e in p.eval_day(seed(), false, 52, t) {
                seen.insert(e.host);
            }
        }
        assert!(seen.len() <= 30);
        assert!(seen.len() >= 20, "most subscribers should appear: {}", seen.len());
    }

    #[test]
    fn dhcp_short_fills_the_block() {
        let p = AssignmentPolicy::DhcpShort { subscribers: 180 };
        let mut seen = std::collections::HashSet::new();
        for t in 0..60 {
            for e in p.eval_day(seed(), false, 52, t) {
                seen.insert(e.host);
            }
        }
        // Daily reshuffle over 60 days must cycle essentially the
        // whole /24 (the paper's FD > 250 signature).
        assert!(seen.len() > 250, "filling degree {}", seen.len());
    }

    #[test]
    fn dhcp_long_moves_slowly() {
        let p = AssignmentPolicy::DhcpLong { subscribers: 100, hold_days: 30 };
        // Count distinct hosts day-over-day for one subscriber-rich
        // window: consecutive days should mostly reuse addresses.
        let d10 = p.eval_day(seed(), false, 52, 10);
        let d11 = p.eval_day(seed(), false, 52, 11);
        let hosts10: std::collections::HashSet<u8> = d10.iter().map(|e| e.host).collect();
        let overlap = d11.iter().filter(|e| hosts10.contains(&e.host)).count();
        assert!(
            overlap * 2 > d11.len(),
            "long leases should keep most addresses: {overlap}/{}",
            d11.len()
        );
    }

    #[test]
    fn round_robin_cursor_advances() {
        let p = AssignmentPolicy::RoundRobin { subscribers: 40 };
        let d0: Vec<u8> = p.eval_day(seed(), false, 52, 0).iter().map(|e| e.host).collect();
        let d1: Vec<u8> = p.eval_day(seed(), false, 52, 1).iter().map(|e| e.host).collect();
        assert!(!d0.is_empty() && !d1.is_empty());
        // Different cursor ⇒ different host ranges on consecutive days.
        assert_ne!(d0[0], d1[0]);
    }

    #[test]
    fn gateways_are_always_on_and_heavy() {
        let p = AssignmentPolicy::Gateway { gateways: 3, users_per_gateway: 1000 };
        for t in 0..30 {
            let day = p.eval_day(seed(), false, 52, t);
            assert_eq!(day.len(), 3, "day {t}");
            for e in &day {
                assert!(e.hits > 2_000, "gateway hits {} too small", e.hits);
                assert!(matches!(e.pop, HostPopulation::Gateway { users: 1000, .. }));
            }
        }
    }

    #[test]
    fn bots_have_bot_population() {
        let p = AssignmentPolicy::BotFarm { bots: 2 };
        let day = p.eval_day(seed(), false, 52, 9);
        assert!(!day.is_empty());
        for e in &day {
            assert!(matches!(e.pop, HostPopulation::Bot(_)));
            assert!(e.hits > 4_000);
        }
    }

    #[test]
    fn institutional_blocks_rest_on_weekends() {
        let p = AssignmentPolicy::StaticDense { subscribers: 200 };
        let mut weekday_total = 0usize;
        let mut weekend_total = 0usize;
        for t in 0..56 {
            let n = p.eval_day(seed(), true, 52, t).len();
            if t % 7 >= 5 {
                weekend_total += n;
            } else {
                weekday_total += n;
            }
        }
        // 40 weekday slots vs 16 weekend slots; normalize per-day.
        let wd = weekday_total as f64 / 40.0;
        let we = weekend_total as f64 / 16.0;
        assert!(we < wd * 0.6, "weekend {we:.1} vs weekday {wd:.1}");
    }

    #[test]
    fn probe_profile_matches_policy() {
        let c = country();
        let p = AssignmentPolicy::RouterInfra { interfaces: 5 };
        let prof = p.probe_profile(seed(), &c);
        assert_eq!(prof.routers.count(), 5);
        for host in prof.routers.iter() {
            assert!(prof.icmp[host as usize] > 0.9);
        }
        let p = AssignmentPolicy::ServerFarm { servers: 8 };
        let prof = p.probe_profile(seed(), &c);
        assert_eq!(prof.services.len(), 8);
        let (h, set) = prof.services[0];
        assert!(!set.is_empty());
        assert!(!prof.services_of(h).is_empty());
        assert!(prof.services_of(h.wrapping_add(1)).is_empty());
        let p = AssignmentPolicy::Unused;
        let prof = p.probe_profile(seed(), &c);
        assert!(prof.icmp.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn nat_suppresses_client_icmp() {
        // With nat_rate = 1.0 every client host must be ICMP-silent.
        let mut c = country();
        c.nat_rate = 1.0;
        let p = AssignmentPolicy::DhcpShort { subscribers: 200 };
        let prof = p.probe_profile(seed(), &c);
        assert!(prof.icmp.iter().all(|&p| p == 0.0));
    }

    #[test]
    fn shared_hosts_merge_hits() {
        // DhcpLong with many subscribers per 256 hosts will collide;
        // entries must be host-unique.
        let p = AssignmentPolicy::DhcpLong { subscribers: 400, hold_days: 7 };
        let day = p.eval_day(seed(), false, 52, 3);
        let mut hosts: Vec<u8> = day.iter().map(|e| e.host).collect();
        let before = hosts.len();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), before, "duplicate host entries");
    }
}
