//! Universe construction and dataset generation.

use crate::behavior::SeedMixer;
use crate::config::{AsKind, CountryProfile, UniverseConfig, COUNTRY_PROFILES};
use crate::policy::{AssignmentPolicy, BlockProbeProfile, HostPopulation, PolicySim};
use ipactive_bgp::{Asn, BgpEvent, BgpEventKind, BgpTimeline, RoutingTable};
use ipactive_core::{BlockRecord, DailyDataset, IpTraffic, WeeklyDataset};
use ipactive_dns::{NamingScheme, PtrTable};
use ipactive_net::{Addr, Block24, DayBits, Prefix};
use ipactive_probe::{ProbeTarget, ServiceSet};
use ipactive_rir::{CountryCode, Delegation, DelegationDb, Rir};
use rand::RngExt;
use std::collections::HashSet;

/// One Autonomous System of the synthetic Internet.
#[derive(Debug, Clone)]
pub struct AsEntry {
    /// The AS number.
    pub asn: Asn,
    /// Network kind (drives policy mix and rhythms).
    pub kind: AsKind,
    /// Registration country.
    pub country: CountryCode,
    /// The registry the AS's space comes from.
    pub rir: Rir,
    /// The AS's contiguous address region.
    pub region: Prefix,
    /// Index range of the AS's blocks in [`Universe::blocks`].
    pub block_range: (usize, usize),
}

/// One `/24` block of the synthetic Internet.
#[derive(Debug, Clone)]
pub struct BlockEntry {
    /// The block.
    pub block: Block24,
    /// Index of the owning AS in [`Universe::ases`].
    pub as_index: usize,
    /// Assignment policy at the start of the year.
    pub policy: AssignmentPolicy,
    /// Mid-window policy change: `(absolute_day, new_policy)`.
    pub restructure: Option<(usize, AssignmentPolicy)>,
    /// Weeks during which the block is in operation (half-open).
    pub alive_weeks: (u16, u16),
    /// A connectivity outage: `(first_dark_absolute_day, length_days)`.
    pub outage: Option<(usize, usize)>,
    pub(crate) seed: SeedMixer,
    pub(crate) probe: BlockProbeProfile,
}

/// The synthetic Internet: ASes, blocks, registry data, reverse DNS,
/// the BGP timeline — plus generators for the paper's two datasets.
#[derive(Debug)]
pub struct Universe {
    config: UniverseConfig,
    /// All ASes.
    pub ases: Vec<AsEntry>,
    /// All blocks, sorted by block id.
    pub blocks: Vec<BlockEntry>,
    delegations: DelegationDb,
    ptr: PtrTable,
    bgp: BgpTimeline,
}

/// Ground-truth `/24` counts per policy family
/// (see [`Universe::population_summary`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PopulationSummary {
    /// Allocated but unused blocks.
    pub unused: u32,
    /// Statically assigned blocks.
    pub static_blocks: u32,
    /// Dynamically assigned blocks (round-robin / DHCP).
    pub dynamic_blocks: u32,
    /// CGN/proxy gateway blocks.
    pub gateway_blocks: u32,
    /// Crawler blocks.
    pub bot_blocks: u32,
    /// Server blocks.
    pub server_blocks: u32,
    /// Router-interface blocks.
    pub router_blocks: u32,
    /// Active-but-not-WWW blocks.
    pub nonweb_blocks: u32,
    /// Blocks with a mid-window policy change.
    pub restructured: u32,
    /// Blocks with an injected outage.
    pub with_outage: u32,
}

impl PopulationSummary {
    /// Total blocks summarized.
    pub fn total(&self) -> u32 {
        self.unused
            + self.static_blocks
            + self.dynamic_blocks
            + self.gateway_blocks
            + self.bot_blocks
            + self.server_blocks
            + self.router_blocks
            + self.nonweb_blocks
    }
}

/// `/8` base octet per RIR for the synthetic address plan.
fn rir_base_octet(rir: Rir) -> u32 {
    match rir {
        Rir::Arin => 20,
        Rir::Ripe => 62,
        Rir::Apnic => 101,
        Rir::Lacnic => 177,
        Rir::Afrinic => 196,
    }
}

/// Blocks per AS region (a /18).
const REGION_BLOCKS: u32 = 64;

fn pick_country(m: SeedMixer) -> &'static CountryProfile {
    let total: u32 = COUNTRY_PROFILES.iter().map(|c| c.weight).sum();
    let mut roll = (m.unit() * total as f64) as u32;
    for c in &COUNTRY_PROFILES {
        if roll < c.weight {
            return c;
        }
        roll -= c.weight;
    }
    &COUNTRY_PROFILES[0]
}

fn draw_policy(kind: AsKind, m: SeedMixer) -> AssignmentPolicy {
    let roll = m.unit();
    let mut rng = m.child(1).rng();
    match kind {
        AsKind::ResidentialIsp => {
            if roll < 0.32 {
                AssignmentPolicy::DhcpShort { subscribers: rng.random_range(255..470) }
            } else if roll < 0.64 {
                AssignmentPolicy::DhcpLong {
                    subscribers: rng.random_range(90..240),
                    hold_days: *[21u16, 30, 45][rng.random_range(0..3)..][..1]
                        .first()
                        .unwrap(),
                }
            } else if roll < 0.70 {
                AssignmentPolicy::RoundRobin { subscribers: rng.random_range(25..130) }
            } else if roll < 0.82 {
                AssignmentPolicy::StaticSparse { subscribers: rng.random_range(8..70) }
            } else if roll < 0.90 {
                AssignmentPolicy::Gateway {
                    gateways: rng.random_range(1..6),
                    users_per_gateway: rng.random_range(150..1200),
                }
            } else {
                AssignmentPolicy::Unused
            }
        }
        AsKind::CellularIsp => {
            if roll < 0.62 {
                AssignmentPolicy::Gateway {
                    gateways: rng.random_range(2..8),
                    users_per_gateway: rng.random_range(400..2500),
                }
            } else if roll < 0.75 {
                AssignmentPolicy::DhcpShort { subscribers: rng.random_range(280..460) }
            } else {
                AssignmentPolicy::Unused
            }
        }
        AsKind::University => {
            if roll < 0.35 {
                AssignmentPolicy::StaticSparse { subscribers: rng.random_range(10..70) }
            } else if roll < 0.55 {
                AssignmentPolicy::StaticDense { subscribers: rng.random_range(120..230) }
            } else if roll < 0.63 {
                AssignmentPolicy::RoundRobin { subscribers: rng.random_range(30..120) }
            } else if roll < 0.85 {
                AssignmentPolicy::DhcpLong {
                    subscribers: rng.random_range(90..220),
                    hold_days: 30,
                }
            } else {
                AssignmentPolicy::ServerFarm { servers: rng.random_range(4..40) }
            }
        }
        AsKind::Enterprise => {
            if roll < 0.48 {
                AssignmentPolicy::StaticSparse { subscribers: rng.random_range(8..60) }
            } else if roll < 0.62 {
                AssignmentPolicy::ServerFarm { servers: rng.random_range(4..30) }
            } else if roll < 0.70 {
                AssignmentPolicy::NonWeb { hosts: rng.random_range(6..24) }
            } else {
                AssignmentPolicy::Unused
            }
        }
        AsKind::Hosting => {
            if roll < 0.45 {
                AssignmentPolicy::ServerFarm { servers: rng.random_range(20..120) }
            } else if roll < 0.65 {
                AssignmentPolicy::BotFarm { bots: rng.random_range(1..5) }
            } else if roll < 0.75 {
                AssignmentPolicy::NonWeb { hosts: rng.random_range(6..24) }
            } else {
                AssignmentPolicy::Unused
            }
        }
        AsKind::Infrastructure => {
            if roll < 0.55 {
                AssignmentPolicy::RouterInfra { interfaces: rng.random_range(8..48) }
            } else if roll < 0.75 {
                AssignmentPolicy::NonWeb { hosts: rng.random_range(6..24) }
            } else {
                AssignmentPolicy::Unused
            }
        }
    }
}

fn ptr_scheme(policy: &AssignmentPolicy, domain: String, m: SeedMixer) -> NamingScheme {
    let roll = m.unit();
    match policy {
        AssignmentPolicy::StaticSparse { .. } | AssignmentPolicy::StaticDense { .. } => {
            if roll < 0.72 {
                NamingScheme::StaticKeyword { domain }
            } else if roll < 0.88 {
                NamingScheme::Opaque { domain }
            } else {
                NamingScheme::None
            }
        }
        AssignmentPolicy::RoundRobin { .. }
        | AssignmentPolicy::DhcpShort { .. }
        | AssignmentPolicy::DhcpLong { .. } => {
            if roll < 0.48 {
                NamingScheme::DynamicKeyword { domain }
            } else if roll < 0.72 {
                NamingScheme::PoolKeyword { domain }
            } else if roll < 0.90 {
                NamingScheme::Opaque { domain }
            } else {
                NamingScheme::None
            }
        }
        AssignmentPolicy::Gateway { .. }
        | AssignmentPolicy::BotFarm { .. }
        | AssignmentPolicy::ServerFarm { .. } => NamingScheme::Opaque { domain },
        _ => NamingScheme::None,
    }
}

impl Universe {
    /// Builds the universe structure (ASes, blocks, registries, PTR,
    /// BGP). Deterministic in the config (and in particular its seed).
    pub fn generate(config: UniverseConfig) -> Universe {
        config.validate();
        let root = SeedMixer::new(config.seed);
        let mut ases = Vec::new();
        let mut blocks: Vec<BlockEntry> = Vec::new();
        let mut delegations = DelegationDb::new();
        let mut ptr = PtrTable::new();
        let mut base_table = RoutingTable::new();
        let mut pending_events: Vec<BgpEvent> = Vec::new();
        let mut region_cursor = [0u32; 5];
        let year_days = config.weeks * 7;
        let mut as_counter = 0u64;

        for &(kind, count) in &config.as_counts {
            for _ in 0..count {
                let as_seed = root.child(0xA5).child(as_counter);
                let asn = Asn(64_496 + as_counter as u32);
                let country = pick_country(as_seed.child(1));
                let rir = country.rir;
                // Carve the AS's /18 region out of its RIR's /8.
                let cursor = &mut region_cursor[rir.index()];
                assert!(*cursor < (1 << 10), "RIR {rir} address plan exhausted");
                let region_base = (rir_base_octet(rir) << 24) | (*cursor << 14);
                *cursor += 1;
                let region = Prefix::new(Addr::new(region_base), 18);
                delegations.insert(Delegation {
                    prefix: region,
                    rir,
                    country: CountryCode::new(country.code),
                });

                // Block count: log-normal-ish around the configured mean.
                let n_blocks = ((config.mean_blocks_per_as
                    * (0.7 * as_seed.child(2).normal()).exp())
                .round() as u32)
                    .clamp(1, REGION_BLOCKS);
                // Announce only the covering prefix of the blocks in
                // use — registries delegate generously, but routing
                // advertises what is deployed (plus rounding up to a
                // power of two, as CIDR forces).
                let announced_len = 24 - (32 - (n_blocks.max(1) - 1).leading_zeros()) as u8;
                base_table.announce(Prefix::new(Addr::new(region_base), announced_len), asn);
                let first_block = blocks.len();
                let domain = format!("as{}.{}.example", asn.0, country.code.to_lowercase());
                for b in 0..n_blocks {
                    let block = Block24::new((region_base >> 8) + b);
                    let bseed = as_seed.child(0xB10C).child(b as u64);
                    let policy = draw_policy(kind, bseed.child(1));

                    // Year-scale lifecycle.
                    let mut alive = (0u16, config.weeks as u16);
                    let life_roll = bseed.child(2).unit();
                    if life_roll < config.partial_lifespan_rate {
                        let edge = bseed.child(3).unit();
                        let w = config.weeks as u16;
                        if edge < 0.5 {
                            alive = (((bseed.child(4).unit() * (w as f64 * 0.7)) as u16) + 1, w);
                        } else {
                            alive = (0, ((bseed.child(5).unit() * (w as f64 * 0.7)) as u16)
                                .max(2));
                        }
                    }

                    // Mid-window restructure (only meaningful where
                    // there is client activity to change).
                    let restructure = if policy.cdn_active()
                        && bseed.child(6).unit() < config.restructure_rate
                    {
                        let span = config.daily_days;
                        let at = config.daily_offset
                            + (span as f64 * (0.2 + 0.6 * bseed.child(7).unit())) as usize;
                        let new_policy = draw_policy(kind, bseed.child(8));
                        Some((at, new_policy))
                    } else {
                        None
                    };

                    // Connectivity outage inside the daily window
                    // (2..=6 dark days), independent of policy.
                    let outage = if policy.cdn_active()
                        && bseed.child(15).unit() < config.outage_rate
                    {
                        let len = 2 + (bseed.child(16).unit() * 5.0) as usize;
                        let latest = config.daily_days.saturating_sub(len + 2);
                        let at = config.daily_offset
                            + 1
                            + (bseed.child(17).unit() * latest.max(1) as f64) as usize;
                        Some((at, len))
                    } else {
                        None
                    };

                    // BGP visibility of lifecycle edges.
                    let vis = bseed.child(9).unit() < config.bgp_visibility_rate;
                    if alive.0 > 0 && vis {
                        pending_events.push(BgpEvent {
                            day: alive.0 * 7,
                            prefix: block.prefix(),
                            kind: BgpEventKind::Announce { origin: asn },
                        });
                    }
                    if (alive.1 as usize) < config.weeks && vis {
                        // Announce the /24 explicitly so the withdrawal
                        // is observable.
                        base_table.announce(block.prefix(), asn);
                        pending_events.push(BgpEvent {
                            day: alive.1 * 7,
                            prefix: block.prefix(),
                            kind: BgpEventKind::Withdraw,
                        });
                    }
                    // Restructure occasionally visible as origin change.
                    if let Some((at, _)) = restructure {
                        if bseed.child(10).unit() < config.bgp_visibility_rate {
                            pending_events.push(BgpEvent {
                                day: at as u16,
                                prefix: block.prefix(),
                                kind: BgpEventKind::OriginChange {
                                    to: Asn(asn.0 ^ 0x1_0000),
                                },
                            });
                        }
                    }
                    // Background routing noise on steady blocks.
                    if bseed.child(11).unit() < 0.01 {
                        let day = (bseed.child(12).unit() * (year_days as f64 - 2.0)) as u16 + 1;
                        pending_events.push(BgpEvent {
                            day,
                            prefix: block.prefix(),
                            kind: BgpEventKind::OriginChange { to: Asn(asn.0 ^ 0x2_0000) },
                        });
                    }

                    ptr.set_scheme(block, ptr_scheme(&policy, domain.clone(), bseed.child(13)));
                    // Probing happens during the daily window (the
                    // paper's scans are from October, inside its
                    // Aug–Dec window); a block retired or not yet
                    // deployed then has nothing to answer.
                    let scan_week = ((config.daily_offset + config.daily_days / 2) / 7) as u16;
                    let probe = if alive.0 <= scan_week && scan_week < alive.1 {
                        policy.probe_profile(bseed.child(14), country)
                    } else {
                        AssignmentPolicy::Unused.probe_profile(bseed.child(14), country)
                    };
                    blocks.push(BlockEntry {
                        block,
                        as_index: ases.len(),
                        policy,
                        restructure,
                        alive_weeks: alive,
                        outage,
                        seed: bseed,
                        probe,
                    });
                }
                ases.push(AsEntry {
                    asn,
                    kind,
                    country: CountryCode::new(country.code),
                    rir,
                    region,
                    block_range: (first_block, blocks.len()),
                });
                as_counter += 1;
            }
        }

        blocks.sort_by_key(|b| b.block);
        // Re-point AS block ranges after the sort via lookup; ranges
        // remain contiguous because each AS owns a contiguous region.
        let mut by_as: Vec<(usize, usize)> = vec![(usize::MAX, 0); ases.len()];
        for (i, b) in blocks.iter().enumerate() {
            let slot = &mut by_as[b.as_index];
            slot.0 = slot.0.min(i);
            slot.1 = slot.1.max(i + 1);
        }
        for (a, range) in ases.iter_mut().zip(by_as) {
            if range.0 != usize::MAX {
                a.block_range = range;
            }
        }

        pending_events.sort_by_key(|e| e.day);
        let mut bgp = BgpTimeline::new(base_table);
        for e in pending_events {
            bgp.push(e);
        }

        Universe { config, ases, blocks, delegations, ptr, bgp }
    }

    /// Ground-truth population summary: `/24` counts per policy
    /// family. Useful for report headers and sanity checks.
    pub fn population_summary(&self) -> PopulationSummary {
        let mut s = PopulationSummary::default();
        for e in &self.blocks {
            match e.policy {
                AssignmentPolicy::Unused => s.unused += 1,
                AssignmentPolicy::StaticSparse { .. } | AssignmentPolicy::StaticDense { .. } => {
                    s.static_blocks += 1
                }
                AssignmentPolicy::RoundRobin { .. }
                | AssignmentPolicy::DhcpShort { .. }
                | AssignmentPolicy::DhcpLong { .. } => s.dynamic_blocks += 1,
                AssignmentPolicy::Gateway { .. } => s.gateway_blocks += 1,
                AssignmentPolicy::BotFarm { .. } => s.bot_blocks += 1,
                AssignmentPolicy::ServerFarm { .. } => s.server_blocks += 1,
                AssignmentPolicy::RouterInfra { .. } => s.router_blocks += 1,
                AssignmentPolicy::NonWeb { .. } => s.nonweb_blocks += 1,
            }
            if e.restructure.is_some() {
                s.restructured += 1;
            }
            if e.outage.is_some() {
                s.with_outage += 1;
            }
        }
        s
    }

    /// The generation config.
    pub fn config(&self) -> &UniverseConfig {
        &self.config
    }

    /// The RIR delegation database.
    pub fn delegations(&self) -> &DelegationDb {
        &self.delegations
    }

    /// The reverse-DNS table.
    pub fn ptr_table(&self) -> &PtrTable {
        &self.ptr
    }

    /// The BGP timeline (day axis: 0 .. weeks×7).
    pub fn bgp(&self) -> &BgpTimeline {
        &self.bgp
    }

    /// The AS owning `block`, if it is part of the universe.
    pub fn as_of_block(&self, block: Block24) -> Option<&AsEntry> {
        self.blocks
            .binary_search_by_key(&block, |b| b.block)
            .ok()
            .map(|i| &self.ases[self.blocks[i].as_index])
    }

    fn entry_of(&self, block: Block24) -> Option<&BlockEntry> {
        self.blocks
            .binary_search_by_key(&block, |b| b.block)
            .ok()
            .map(|i| &self.blocks[i])
    }

    fn block_alive(&self, e: &BlockEntry, t: usize) -> bool {
        let week = (t / 7) as u16;
        week >= e.alive_weeks.0 && week < e.alive_weeks.1
    }

    /// Generates the daily dataset (the paper's 112-day per-day view),
    /// evaluating every block in parallel.
    pub fn build_daily(&self) -> DailyDataset {
        let cfg = &self.config;
        let records = parallel_map(&self.blocks, |e| self.block_daily(e));
        let mut blocks: Vec<BlockRecord> = records.into_iter().flatten().collect();
        blocks.sort_by_key(|r| r.block);
        DailyDataset { num_days: cfg.daily_days, blocks, coverage: None }
    }

    /// Prepares the (pre-restructure, post-restructure) simulators of
    /// a block.
    pub(crate) fn block_sims(&self, e: &BlockEntry) -> (PolicySim, Option<(usize, PolicySim)>) {
        let inst = self.ases[e.as_index].kind.institutional();
        let sim1 = PolicySim::new(e.policy.clone(), e.seed, inst, self.config.weeks);
        let sim2 = e.restructure.as_ref().map(|(d, p)| {
            (*d, PolicySim::new(p.clone(), e.seed.child(0x7E57), inst, self.config.weeks))
        });
        (sim1, sim2)
    }

    /// A block's activity on absolute day `t`: lifecycle gating plus
    /// the applicable policy simulator. Shared by the direct builders
    /// and the log pipeline so both produce identical datasets.
    pub(crate) fn entries_on(
        &self,
        e: &BlockEntry,
        sims: &(PolicySim, Option<(usize, PolicySim)>),
        t: usize,
    ) -> Vec<crate::policy::DayEntry> {
        if !self.block_alive(e, t) {
            return Vec::new();
        }
        if let Some((start, len)) = e.outage {
            if t >= start && t < start + len {
                return Vec::new(); // connectivity lost: nothing reaches the CDN
            }
        }
        match &sims.1 {
            Some((cd, s2)) if t >= *cd => s2.eval_day(t),
            _ => sims.0.eval_day(t),
        }
    }

    /// The User-Agent hashes sampled for one active (address, day)
    /// entry — 1 in `ua_sample_rate` hits, Poisson-thinned.
    pub(crate) fn ua_samples_for(
        &self,
        e: &BlockEntry,
        t: usize,
        entry: &crate::policy::DayEntry,
    ) -> Vec<u64> {
        let lambda = entry.hits as f64 / self.config.ua_sample_rate as f64;
        let mut rng = e
            .seed
            .child(0x0A9E)
            .child(t as u64)
            .child(entry.host as u64)
            .rng();
        let k = crate::behavior::poisson(&mut rng, lambda);
        (0..k).map(|_| sample_ua(&entry.pop, &mut rng)).collect()
    }

    /// Expands one block's activity on dataset day `d` (0-based within
    /// the daily window) into raw per-request log events — the
    /// pre-aggregation form of the same data [`Universe::build_daily`]
    /// summarizes (see [`crate::requests`]).
    pub fn raw_requests(&self, block: Block24, d: usize) -> Vec<crate::requests::RawRequest> {
        assert!(d < self.config.daily_days, "day outside the daily window");
        let Some(e) = self.entry_of(block) else { return Vec::new() };
        let sims = self.block_sims(e);
        let t = self.config.daily_offset + d;
        let kind = self.ases[e.as_index].kind;
        let mut out = Vec::new();
        for entry in self.entries_on(e, &sims, t) {
            let shape = match entry.pop {
                HostPopulation::Bot(_) => crate::requests::DiurnalShape::Flat,
                _ if kind.institutional() => crate::requests::DiurnalShape::Institutional,
                _ => crate::requests::DiurnalShape::Residential,
            };
            out.extend(crate::requests::expand_with_shape(
                e.seed.child(0x4EA),
                d as u16,
                block.addr(entry.host),
                entry.hits,
                shape,
            ));
        }
        out.sort_unstable_by_key(|r| r.time_s);
        out
    }

    fn block_daily(&self, e: &BlockEntry) -> Option<BlockRecord> {
        let cfg = &self.config;
        let sims = self.block_sims(e);
        let mut rows: Box<[DayBits; 256]> = Box::new([DayBits::new(); 256]);
        let mut daily: Vec<Vec<u32>> = vec![Vec::new(); 256];
        let mut totals = [0u64; 256];
        let mut total_hits = 0u64;
        let mut ua_samples = 0u64;
        let mut ua_hashes: HashSet<u64> = HashSet::new();
        for d in 0..cfg.daily_days {
            let t = cfg.daily_offset + d;
            for entry in self.entries_on(e, &sims, t) {
                let h = entry.host as usize;
                rows[h].set(d);
                daily[h].push(entry.hits);
                totals[h] += entry.hits as u64;
                total_hits += entry.hits as u64;
                for ua in self.ua_samples_for(e, t, &entry) {
                    ua_samples += 1;
                    ua_hashes.insert(ua);
                }
            }
        }
        let mut ip_traffic = Vec::new();
        for h in 0..256usize {
            if rows[h].is_empty() {
                continue;
            }
            let mut d = daily[h].clone();
            d.sort_unstable();
            ip_traffic.push(IpTraffic {
                host: h as u8,
                days_active: rows[h].count() as u8,
                total_hits: totals[h],
                median_daily_hits: d[d.len() / 2],
            });
        }
        if ip_traffic.is_empty() {
            return None;
        }
        Some(BlockRecord {
            block: e.block,
            rows,
            total_hits,
            ua_samples,
            ua_unique: ua_hashes.len() as u32,
            ip_traffic,
        })
    }

    /// Generates the weekly dataset (the paper's 52-week year view),
    /// evaluating every block in parallel.
    pub fn build_weekly(&self) -> WeeklyDataset {
        let cfg = &self.config;
        let per_block = parallel_map(&self.blocks, |e| self.block_weekly(e));
        let mut blocks = Vec::new();
        let mut week_hits: Vec<Vec<u64>> = vec![Vec::new(); cfg.weeks];
        for item in per_block.into_iter().flatten() {
            let (block, rows, hits) = item;
            blocks.push((block, rows));
            for (w, mut h) in hits.into_iter().enumerate() {
                week_hits[w].append(&mut h);
            }
        }
        blocks.sort_by_key(|(b, _)| *b);
        // Canonical order, matching WeeklyDatasetBuilder::finish — so
        // direct builds and collector outputs compare by `==`.
        for week in &mut week_hits {
            week.sort_unstable();
        }
        WeeklyDataset { num_weeks: cfg.weeks, blocks, week_hits, coverage: None }
    }

    #[allow(clippy::type_complexity)]
    fn block_weekly(
        &self,
        e: &BlockEntry,
    ) -> Option<(Block24, Box<[u64; 256]>, Vec<Vec<u64>>)> {
        let cfg = &self.config;
        let sims = self.block_sims(e);
        let mut rows: Box<[u64; 256]> = Box::new([0u64; 256]);
        let mut week_hits: Vec<Vec<u64>> = vec![Vec::new(); cfg.weeks];
        let mut any = false;
        for (w, week_slot) in week_hits.iter_mut().enumerate() {
            let mut acc = [0u64; 256];
            for dow in 0..7usize {
                let t = w * 7 + dow;
                for entry in self.entries_on(e, &sims, t) {
                    acc[entry.host as usize] += entry.hits as u64;
                }
            }
            for (h, &hits) in acc.iter().enumerate() {
                if hits > 0 {
                    rows[h] |= 1u64 << w;
                    week_slot.push(hits);
                    any = true;
                }
            }
        }
        if any {
            Some((e.block, rows, week_hits))
        } else {
            None
        }
    }
}

/// Samples one User-Agent hash for the population behind an address:
/// picks a (device, app) of the subscriber, renders the concrete
/// header string (see [`crate::ua`]), and hashes it — so distinctness
/// in the dataset reflects distinctness of actual strings.
fn sample_ua(pop: &HostPopulation, rng: &mut rand::rngs::StdRng) -> u64 {
    fn subscriber_ua(key: u64, rng: &mut rand::rngs::StdRng) -> u64 {
        // 1–3 devices per subscriber, a browser plus 0–4 app UAs each.
        let devices = 1 + (key % 3);
        let dev = rng.random_range(0..devices);
        let apps = 1 + ((key >> 8) % 5);
        let app = rng.random_range(0..apps);
        crate::ua::hash(&crate::ua::render(key, dev, app))
    }
    match *pop {
        HostPopulation::Subscriber(key) => subscriber_ua(key, rng),
        HostPopulation::Gateway { base, users } => {
            let user = rng.random_range(0..users.max(1) as u64);
            subscriber_ua(SeedMixer::new(base).child(user).value(), rng)
        }
        HostPopulation::Bot(key) => crate::ua::hash(&crate::ua::render_bot(key)),
    }
}

/// Runs `f` over `items` on a small thread pool (crossbeam scoped
/// threads), preserving order.
fn parallel_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let threads = threads.min(items.len().max(1)).min(16);
    if threads <= 1 || items.len() < 8 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    let out_chunks: Vec<&mut [Option<R>]> = out.chunks_mut(chunk).collect();
    crossbeam::scope(|scope| {
        for (slice, outs) in items.chunks(chunk).zip(out_chunks) {
            let f = &f;
            scope.spawn(move |_| {
                for (item, slot) in slice.iter().zip(outs.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("worker thread panicked");
    out.into_iter().map(|o| o.expect("all slots filled")).collect()
}

impl ProbeTarget for Universe {
    fn icmp_response_probability(&self, addr: Addr) -> f64 {
        self.entry_of(Block24::of(addr))
            .map(|e| e.probe.icmp[addr.host_index() as usize] as f64)
            .unwrap_or(0.0)
    }

    fn open_services(&self, addr: Addr) -> ServiceSet {
        self.entry_of(Block24::of(addr))
            .map(|e| e.probe.services_of(addr.host_index()))
            .unwrap_or_default()
    }

    fn is_router_interface(&self, addr: Addr) -> bool {
        self.entry_of(Block24::of(addr))
            .map(|e| e.probe.routers.get(addr.host_index()))
            .unwrap_or(false)
    }

    fn candidate_blocks(&self) -> Vec<Block24> {
        self.blocks.iter().map(|b| b.block).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Universe {
        Universe::generate(UniverseConfig::tiny(0xBEEF))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = tiny();
        let b = tiny();
        assert_eq!(a.blocks.len(), b.blocks.len());
        assert_eq!(a.ases.len(), b.ases.len());
        let da = a.build_daily();
        let db = b.build_daily();
        assert_eq!(da.total_active(), db.total_active());
        assert_eq!(da.blocks.len(), db.blocks.len());
        for (x, y) in da.blocks.iter().zip(db.blocks.iter()) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.total_hits, y.total_hits);
            assert_eq!(x.ua_unique, y.ua_unique);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Universe::generate(UniverseConfig::tiny(1));
        let b = Universe::generate(UniverseConfig::tiny(2));
        let (da, db) = (a.build_daily(), b.build_daily());
        assert_ne!(
            (da.total_active(), da.blocks.len()),
            (db.total_active(), db.blocks.len())
        );
    }

    #[test]
    fn blocks_are_sorted_and_owned() {
        let u = tiny();
        assert!(u.blocks.windows(2).all(|w| w[0].block < w[1].block));
        for (i, e) in u.blocks.iter().enumerate() {
            let a = &u.ases[e.as_index];
            assert!(a.region.contains(e.block.network()), "block outside AS region");
            let (lo, hi) = a.block_range;
            assert!(lo <= i && i < hi, "block range mismatch");
        }
        // as_of_block agrees.
        let e = &u.blocks[0];
        assert_eq!(u.as_of_block(e.block).unwrap().asn, u.ases[e.as_index].asn);
        assert!(u.as_of_block(Block24::new(1)).is_none());
    }

    #[test]
    fn delegations_cover_every_block() {
        let u = tiny();
        for e in &u.blocks {
            let d = u.delegations().lookup(e.block.network());
            assert!(d.is_some(), "block {} undelegated", e.block);
            let a = &u.ases[e.as_index];
            assert_eq!(d.unwrap().rir, a.rir);
            assert_eq!(d.unwrap().country, a.country);
        }
    }

    #[test]
    fn bgp_base_routes_every_block() {
        let u = tiny();
        let table = u.bgp().base();
        for e in &u.blocks {
            let origin = table.origin_of(e.block.addr(1));
            assert_eq!(origin, Some(u.ases[e.as_index].asn));
        }
    }

    #[test]
    fn daily_dataset_respects_window_and_activity() {
        let u = tiny();
        let ds = u.build_daily();
        assert_eq!(ds.num_days, u.config().daily_days);
        assert!(ds.total_active() > 50, "tiny universe too quiet: {}", ds.total_active());
        // Only CDN-active policies may appear.
        for rec in &ds.blocks {
            let e = u.entry_of(rec.block).unwrap();
            let active_any = e.policy.cdn_active()
                || e.restructure.as_ref().map(|(_, p)| p.cdn_active()).unwrap_or(false);
            assert!(active_any, "CDN-inactive block {} in dataset", rec.block);
        }
    }

    #[test]
    fn weekly_dataset_spans_year() {
        let u = tiny();
        let ws = u.build_weekly();
        assert_eq!(ws.num_weeks, u.config().weeks);
        assert!(ws.total_active() > 50);
        // Weekly activity must exist in most weeks.
        let active_weeks = (0..ws.num_weeks)
            .filter(|&w| !ws.week_hits[w].is_empty())
            .count();
        assert!(active_weeks > ws.num_weeks / 2);
    }

    #[test]
    fn weekly_and_daily_agree_where_they_overlap() {
        let u = tiny();
        let ds = u.build_daily();
        let ws = u.build_weekly();
        // Daily window [offset, offset+days) maps to weeks
        // offset/7 .. (offset+days)/7. An address active in the daily
        // dataset must be active in the covering weekly range.
        let daily_union = ds.all_active();
        let w0 = u.config().daily_offset / 7;
        let w1 = (u.config().daily_offset + u.config().daily_days).div_ceil(7);
        let weekly_union = ws.window_union(w0..w1.min(ws.num_weeks));
        for addr in daily_union.iter() {
            assert!(weekly_union.contains(addr), "daily-active {addr} missing weekly");
        }
    }

    #[test]
    fn probe_target_is_consistent_with_ground_truth() {
        let u = tiny();
        let mut any_router = false;
        let mut any_server = false;
        for e in &u.blocks {
            match e.policy {
                AssignmentPolicy::RouterInfra { .. } => {
                    any_router = true;
                    let hosts: Vec<u8> = e.probe.routers.iter().collect();
                    assert!(!hosts.is_empty());
                    for h in hosts {
                        assert!(u.is_router_interface(e.block.addr(h)));
                    }
                }
                AssignmentPolicy::ServerFarm { .. } => {
                    any_server = true;
                    let (h, _) = e.probe.services[0];
                    assert!(!u.open_services(e.block.addr(h)).is_empty());
                }
                _ => {}
            }
        }
        assert!(any_router, "tiny universe should include router infra");
        assert!(any_server, "tiny universe should include servers");
        // Unknown space never responds.
        assert_eq!(u.icmp_response_probability(Addr::new(1)), 0.0);
        assert!(!u.is_router_interface(Addr::new(1)));
        assert!(u.open_services(Addr::new(1)).is_empty());
    }

    #[test]
    fn population_summary_accounts_for_every_block() {
        let u = tiny();
        let s = u.population_summary();
        assert_eq!(s.total() as usize, u.blocks.len());
        assert!(s.dynamic_blocks > 0);
        assert!(s.router_blocks > 0);
        assert!(s.restructured as usize <= u.blocks.len());
    }

    #[test]
    fn raw_requests_match_aggregates() {
        let u = tiny();
        let ds = u.build_daily();
        let rec = ds.blocks.iter().max_by_key(|r| r.total_hits).unwrap();
        // Pick a day the block is active on.
        let d = (0..u.config().daily_days)
            .find(|&d| rec.active_on(d) > 0)
            .expect("active day exists");
        let raw = u.raw_requests(rec.block, d);
        // Per-address counts must equal the aggregated hits that day.
        let agg = crate::requests::aggregate(raw.clone());
        let mut expected = 0u64;
        for (i, bits) in rec.rows.iter().enumerate() {
            if bits.get(d) {
                let t = rec.ip_traffic.iter().find(|t| t.host == i as u8).unwrap();
                let count = agg
                    .get(&(d as u16, rec.block.addr(i as u8)))
                    .copied()
                    .unwrap_or(0) as u64;
                assert!(count > 0, "active addr with no raw requests");
                let _ = t;
                expected += count;
            }
        }
        assert_eq!(raw.len() as u64, expected);
        // Arrival order.
        assert!(raw.windows(2).all(|w| w[0].time_s <= w[1].time_s));
        // Outside the universe: empty.
        assert!(u.raw_requests(Block24::new(1), 0).is_empty());
    }

    #[test]
    fn outages_go_dark_and_are_detectable() {
        let mut cfg = UniverseConfig::small(0x0D0);
        cfg.outage_rate = 0.3;
        let u = Universe::generate(cfg);
        let with_outage: Vec<_> = u.blocks.iter().filter(|e| e.outage.is_some()).collect();
        assert!(!with_outage.is_empty(), "no outages injected");
        let ds = u.build_daily();
        let mut verified = 0;
        for e in &with_outage {
            let Some(rec) = ds.block(e.block) else { continue };
            let (start, len) = e.outage.unwrap();
            let rel = start - u.config().daily_offset;
            for d in rel..rel + len {
                assert_eq!(rec.active_on(d), 0, "block {} day {d} not dark", e.block);
            }
            verified += 1;
        }
        assert!(verified > 0);
        // The detector recovers at least some of them.
        let found = ipactive_core::outages::detect(
            &ds,
            &ipactive_core::outages::OutageParams::default(),
        );
        assert!(!found.is_empty(), "detector found nothing");
    }

    #[test]
    fn restructures_exist_at_configured_rate() {
        let mut cfg = UniverseConfig::small(3);
        cfg.restructure_rate = 0.5;
        let u = Universe::generate(cfg);
        let active: Vec<_> = u.blocks.iter().filter(|b| b.policy.cdn_active()).collect();
        let restructured = active.iter().filter(|b| b.restructure.is_some()).count();
        let frac = restructured as f64 / active.len() as f64;
        assert!((0.3..0.7).contains(&frac), "restructure fraction {frac}");
        // Change day inside the daily window.
        for b in &u.blocks {
            if let Some((d, _)) = b.restructure {
                assert!(d >= u.config().daily_offset);
                assert!(d < u.config().daily_offset + u.config().daily_days);
            }
        }
    }

    #[test]
    fn partial_lifespans_and_bgp_events() {
        let mut cfg = UniverseConfig::small(5);
        cfg.partial_lifespan_rate = 0.4;
        cfg.bgp_visibility_rate = 0.5;
        let u = Universe::generate(cfg);
        let partial = u
            .blocks
            .iter()
            .filter(|b| b.alive_weeks != (0, u.config().weeks as u16))
            .count();
        assert!(partial > 0);
        assert!(!u.bgp().events().is_empty());
        // Events are day-ordered (BgpTimeline::push would have panicked
        // otherwise); spot-check the first is within the year.
        assert!((u.bgp().events()[0].day as usize) < u.config().weeks * 7);
    }
}
