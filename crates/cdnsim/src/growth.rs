//! The multi-year growth model behind Figure 1.
//!
//! Figure 1 plots monthly unique active IPv4 addresses 2008–2016:
//! near-perfect linear growth (≈ 8M new addresses per month) that
//! abruptly stagnates in 2014 as the usable free pool dries up. The
//! model is mechanistic at the population level: a linearly growing
//! demand curve serviced from a finite address supply; once the
//! readily assignable pool is consumed, growth collapses onto a slow
//! saturation toward a ceiling, with mild seasonality and observation
//! noise throughout.

use crate::behavior::SeedMixer;
use ipactive_core::timeline::GrowthPoint;
use ipactive_rir::YearMonth;

/// Parameters of the growth model.
#[derive(Debug, Clone, Copy)]
pub struct GrowthModel {
    /// RNG seed for noise.
    pub seed: u64,
    /// First plotted month.
    pub start: YearMonth,
    /// Number of months to generate.
    pub months: u32,
    /// Active addresses at `start`.
    pub base: f64,
    /// Linear growth per month before exhaustion.
    pub slope: f64,
    /// The month growth stagnates (paper: January 2014).
    pub exhaustion: YearMonth,
    /// Ceiling as a multiple of the level at exhaustion.
    pub ceiling_factor: f64,
    /// Relative observation noise (std dev as a fraction of level).
    pub noise: f64,
}

impl Default for GrowthModel {
    fn default() -> Self {
        GrowthModel {
            seed: 2016,
            start: YearMonth::new(2008, 1),
            months: 97, // through January 2016
            base: 250.0e6,
            slope: 8.2e6,
            exhaustion: YearMonth::new(2014, 1),
            ceiling_factor: 1.045,
            noise: 0.006,
        }
    }
}

/// Generates the monthly series.
pub fn monthly_counts(model: &GrowthModel) -> Vec<GrowthPoint> {
    let mix = SeedMixer::new(model.seed);
    let exhaustion_m = model.exhaustion.months_since(model.start).max(0) as u32;
    let level_at_exhaustion = model.base + model.slope * exhaustion_m as f64;
    let ceiling = level_at_exhaustion * model.ceiling_factor;
    (0..model.months)
        .map(|m| {
            let month = model.start.plus_months(m);
            let trend = if m <= exhaustion_m {
                model.base + model.slope * m as f64
            } else {
                // Saturation: exponential approach to the ceiling.
                let k = 0.08;
                let dt = (m - exhaustion_m) as f64;
                ceiling - (ceiling - level_at_exhaustion) * (-k * dt).exp()
            };
            // Mild seasonality (northern-hemisphere dips in summer).
            let season = 1.0 + 0.004 * ((m as f64) * core::f64::consts::TAU / 12.0).sin();
            let noise = 1.0 + model.noise * mix.child(m as u64).normal();
            GrowthPoint { month, active: (trend * season * noise).max(0.0) as u64 }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_core::stats::LinearFit;
    use ipactive_core::timeline;

    #[test]
    fn shape_matches_figure1() {
        let pts = monthly_counts(&GrowthModel::default());
        assert_eq!(pts.len(), 97);
        assert_eq!(pts[0].month, YearMonth::new(2008, 1));
        // Pre-2014 linear fit is strong and close to the slope.
        let fit = timeline::fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        assert!(fit.r2 > 0.99, "r2 {}", fit.r2);
        assert!((fit.slope - 8.2e6).abs() < 0.6e6, "slope {}", fit.slope);
        // 2015 sits far below the extrapolation: stagnation.
        let gap = timeline::stagnation_gap(&pts, &fit, YearMonth::new(2015, 12)).unwrap();
        assert!(gap > 0.1, "gap {gap}");
        // Level plateaus near 1.04x of the exhaustion point (~840M → ~880M).
        let last = pts.last().unwrap().active as f64;
        assert!((8.4e8..9.6e8).contains(&last), "plateau {last}");
    }

    #[test]
    fn detects_stagnation_in_2014() {
        let pts = monthly_counts(&GrowthModel::default());
        let fit = timeline::fit_until(&pts, YearMonth::new(2014, 1)).unwrap();
        let onset = timeline::detect_stagnation(&pts, &fit, 0.5, 24).unwrap();
        assert!(onset.year == 2014 || (onset.year == 2015 && onset.month <= 3), "onset {onset}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = monthly_counts(&GrowthModel::default());
        let b = monthly_counts(&GrowthModel::default());
        assert_eq!(a, b);
        let c = monthly_counts(&GrowthModel { seed: 1, ..GrowthModel::default() });
        assert_ne!(a, c);
    }

    #[test]
    fn custom_linear_only_model_never_stagnates() {
        let model = GrowthModel {
            exhaustion: YearMonth::new(2030, 1), // beyond the series
            ..GrowthModel::default()
        };
        let pts = monthly_counts(&model);
        let fit = LinearFit::fit(
            &pts.iter()
                .enumerate()
                .map(|(i, p)| (i as f64, p.active as f64))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        assert!(fit.r2 > 0.99);
        assert!(timeline::detect_stagnation(&pts, &fit, 0.5, 24).is_none());
    }
}
