//! Supervision layer for the sharded collection pipeline: crash
//! recovery, bounded replay with deterministic backoff, dead-letter
//! quarantine, and coverage-aware graceful degradation.
//!
//! The PR-1 pipeline already *tolerates* damage (skipped frames,
//! abandoned streams), but tolerance alone silently biases every
//! downstream census/churn analysis: a shard that dies mid-stream
//! simply vanishes from the dataset with nothing but a counter to show
//! for it. The supervisor closes that gap with the discipline Dainotti
//! et al. ("Lost in Space", IMC 2014) demand of unreliable telemetry —
//! account for what was lost, don't absorb it:
//!
//! * **Checkpointed replay.** Edge workers retain their per-shard
//!   buffers ([`emit_daily_shard_buffers`]); each buffer is decoded
//!   into a *fresh* builder inside `catch_unwind` and merged into the
//!   shard accumulator only after a fully clean decode. The merge
//!   boundary is the checkpoint: a crashed or corrupt attempt never
//!   contaminates the accumulator, so a retry replays from the last
//!   good state by construction.
//! * **Deterministic backoff.** Retry delays are exponential with
//!   seeded jitter ([`RetryPolicy::backoff`]) — a pure function of
//!   `(seed, shard, buffer, attempt)`, never wall-clock randomness, so
//!   fault runs replay bit-identically.
//! * **Fault injection as a library.** [`FaultPlan`] injects collector
//!   crashes on the Nth buffer, deterministic frame corruption,
//!   dropped buffers, and stalled collectors (modeled as the watchdog
//!   firing after [`RetryPolicy::stall_timeout`]) — first-class API,
//!   not test-only code, so operators can drill recovery paths.
//! * **Graceful degradation.** When retries are exhausted the run
//!   still completes: the final attempt salvages every frame that
//!   survives CRC, quarantines the rest as [`DeadLetter`]s with
//!   shard/buffer/offset provenance, and the returned dataset carries
//!   an [`ipactive_core::Coverage`] grid reporting per-shard
//!   completeness < 1.0 for exactly the shards that lost data.

use crate::pipeline::{
    assemble_report, collector_span_path, emit_block_daily, emit_block_weekly, fold_daily,
    shard_of, validate_topology, PipelineReport, ShardMeters,
};
use crate::universe::Universe;
use ipactive_core::{
    Coverage, DailyDataset, DailyDatasetBuilder, WeeklyDataset, WeeklyDatasetBuilder,
};
use ipactive_logfmt::{FrameReader, FrameWriter, QuarantinedFrame, ReadMode, Record};
use ipactive_obs::{Event, EventKind, Registry, TraceContext, TraceId};
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

/// Metric prefix for supervised daily-cadence runs.
pub const SUPERVISOR_DAILY_PREFIX: &str = "supervisor.daily";

/// Metric prefix for supervised weekly-cadence runs.
pub const SUPERVISOR_WEEKLY_PREFIX: &str = "supervisor.weekly";

/// SplitMix64 step — the same finalizer the pipeline's [`shard_of`]
/// uses, reused here so every supervised decision (jitter, corruption
/// sites, crash points) is a pure function of its inputs.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Folds shard and buffer indices into one seed word.
fn mix(shard: usize, buffer: usize) -> u64 {
    splitmix(((shard as u64) << 32) ^ buffer as u64)
}

/// Payload type carried by the panics the Crash fault injects. Private
/// to this module, so no other code in the process can produce it —
/// which is what lets [`quiet_injected_panics`] suppress exactly these
/// panics and nothing else.
struct InjectedCrash;

/// Installs (once, process-wide) a panic hook that swallows the panics
/// the Crash fault injects: they are always contained by
/// `catch_unwind` and reported through the supervisor's outcome
/// accounting, so the default hook's stderr backtrace is pure noise.
/// The suppression is scoped by payload *type*, not message text:
/// only panics carrying the module-private [`InjectedCrash`] payload
/// are silenced, so even though the hook stays installed, it can never
/// hide a genuine panic from the host process. Everything else
/// forwards to the previously-installed hook.
fn quiet_injected_panics() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedCrash>().is_none() {
                previous(info);
            }
        }));
    });
}

/// Bounded-retry policy with deterministic, seeded backoff.
///
/// Backoff is exponential (`base_backoff * 2^(attempt-1)`) plus jitter
/// drawn from a SplitMix64 stream keyed on `(seed, shard, buffer,
/// attempt)`, capped at `max_backoff`. Two runs with the same policy
/// produce the same delays — no wall-clock randomness anywhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (so `max_retries + 1` attempts
    /// total per buffer).
    pub max_retries: u32,
    /// Base delay before the first retry; doubles each retry.
    pub base_backoff: Duration,
    /// Upper bound on any single delay.
    pub max_backoff: Duration,
    /// Watchdog deadline a stalled collector is charged with (the
    /// stall fault models the watchdog firing after this long).
    pub stall_timeout: Duration,
    /// Seed for the jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            stall_timeout: Duration::from_millis(100),
            seed: 0x5EED_CAFE,
        }
    }
}

impl RetryPolicy {
    /// A policy that retries without sleeping — for tests and replay,
    /// where the backoff schedule matters but real delay does not.
    pub fn instant(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// The delay before `attempt` (1-based retry index; attempt 0 is
    /// the initial try and never waits). Deterministic in all inputs.
    pub fn backoff(&self, shard: usize, buffer: usize, attempt: u32) -> Duration {
        if attempt == 0 || self.base_backoff.is_zero() {
            return Duration::ZERO;
        }
        // Coordinator reassignment can drive attempt counts far past
        // anything in-process supervision produced, so every step here
        // must saturate: the doubling shift is capped, the multiply
        // saturates, the jitter span truncation is floored away from
        // zero (a `% 0` is a panic), and the final add saturates
        // before the cap is applied.
        let exp = self.base_backoff.saturating_mul(1u32 << (attempt - 1).min(16));
        let span = (self.base_backoff.as_nanos() as u64).max(1);
        let jitter = splitmix(self.seed ^ mix(shard, buffer) ^ u64::from(attempt)) % span;
        exp.saturating_add(Duration::from_nanos(jitter)).min(self.max_backoff)
    }
}

/// The failure modes the injection layer can impose on a delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The collector panics partway through decoding the buffer.
    Crash,
    /// The buffer arrives with deterministically corrupted bytes (the
    /// retained edge copy stays pristine, so a transient fault heals
    /// on replay).
    Corrupt,
    /// The buffer never arrives.
    Drop,
    /// The collector hangs on the buffer until the supervisor's
    /// watchdog fires ([`RetryPolicy::stall_timeout`]); modeled as a
    /// deterministic timeout so fault runs stay replayable.
    Stall,
}

/// One injected fault, targeted at a `(shard, buffer)` delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Collector shard the fault strikes.
    pub shard: usize,
    /// Index of the shard buffer (delivery) the fault strikes.
    pub buffer: usize,
    /// What goes wrong.
    pub kind: FaultKind,
    /// How many attempts the fault persists for: the fault fires while
    /// `attempt < persist_attempts`, so `1` is transient (first try
    /// fails, first retry succeeds) and [`Fault::PERMANENT`] never
    /// clears.
    pub persist_attempts: u32,
}

impl Fault {
    /// `persist_attempts` value for a fault that never clears.
    pub const PERMANENT: u32 = u32::MAX;

    /// Whether the fault fires on the given (0-based) attempt.
    fn active(&self, attempt: u32) -> bool {
        attempt < self.persist_attempts
    }
}

/// A deterministic, seeded fault-injection plan — the library-level
/// chaos harness. The seed drives every derived choice (corruption
/// sites, crash points), so one plan replays identically forever.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for fault-derived randomness (corruption sites, crash
    /// points).
    pub seed: u64,
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// The empty plan: nothing fails.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// An empty plan with a seed for fault-derived randomness.
    pub fn new(seed: u64) -> FaultPlan {
        FaultPlan { seed, faults: Vec::new() }
    }

    /// Adds one fault (builder style).
    pub fn with_fault(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The faults in the plan.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// Scatters `count` pseudorandom faults over a `shards ×
    /// buffers_per_shard` delivery grid — kinds and persistence drawn
    /// deterministically from `seed`. Roughly a quarter of the faults
    /// are permanent; the rest clear after one or two attempts.
    pub fn scatter(seed: u64, shards: usize, buffers_per_shard: usize, count: usize) -> FaultPlan {
        let mut plan = FaultPlan::new(seed);
        let mut state = splitmix(seed ^ 0xFA17);
        for i in 0..count {
            state = splitmix(state.wrapping_add(i as u64 + 1));
            let shard = (state % shards.max(1) as u64) as usize;
            state = splitmix(state);
            let buffer = (state % buffers_per_shard.max(1) as u64) as usize;
            state = splitmix(state);
            let kind = match state % 4 {
                0 => FaultKind::Crash,
                1 => FaultKind::Corrupt,
                2 => FaultKind::Drop,
                _ => FaultKind::Stall,
            };
            state = splitmix(state);
            let persist_attempts =
                if state % 4 == 0 { Fault::PERMANENT } else { 1 + (state % 2) as u32 };
            plan = plan.with_fault(Fault { shard, buffer, kind, persist_attempts });
        }
        plan
    }

    /// The first fault targeting a `(shard, buffer)` delivery, if any.
    pub fn fault_for(&self, shard: usize, buffer: usize) -> Option<&Fault> {
        self.faults.iter().find(|f| f.shard == shard && f.buffer == buffer)
    }
}

/// Deterministically corrupts a copy of `buf`: roughly one byte per 64
/// flipped, at sites drawn from the plan seed and the delivery
/// coordinates. The original stays pristine — which is exactly why a
/// transient corrupt fault heals on replay.
fn corrupt_copy(buf: &[u8], seed: u64, shard: usize, buffer: usize) -> Vec<u8> {
    let mut dirty = buf.to_vec();
    if dirty.is_empty() {
        return dirty;
    }
    let flips = (dirty.len() / 64).max(4);
    let mut state = splitmix(seed ^ mix(shard, buffer));
    for _ in 0..flips {
        state = splitmix(state);
        let pos = (state % dirty.len() as u64) as usize;
        let mask = (state >> 32) as u8 | 1; // never a zero mask
        dirty[pos] ^= mask;
    }
    dirty
}

/// The fate of one buffer delivery under supervision.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BufferOutcome {
    /// Collector shard the buffer belonged to.
    pub shard: usize,
    /// Index of the buffer within its shard.
    pub buffer: usize,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Total backoff the retries were scheduled to wait.
    pub backoff: Duration,
    /// Fraction of the buffer's records that reached the dataset:
    /// `1.0` for a clean decode (possibly after retries), `0.0` for a
    /// buffer lost outright, in between for a salvage decode of a
    /// permanently damaged stream. Skipped frames, decode errors, and
    /// frames swallowed by resync scans (one charged per resync — a
    /// lower bound, since a desync's true toll is unknowable) all
    /// count against the fraction.
    pub completeness: f64,
    /// The injected fault, if the plan targeted this delivery.
    pub fault: Option<FaultKind>,
}

impl BufferOutcome {
    /// Whether the buffer made it into the dataset in full.
    pub fn succeeded(&self) -> bool {
        self.completeness == 1.0
    }

    /// Whether the buffer succeeded only after at least one retry.
    pub fn recovered(&self) -> bool {
        self.succeeded() && self.attempts > 1
    }
}

/// Supervision summary for one collector shard.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardOutcome {
    /// The shard index.
    pub shard: usize,
    /// Per-buffer fates, in delivery order.
    pub buffers: Vec<BufferOutcome>,
}

impl ShardOutcome {
    /// Mean completeness over the shard's buffers (`1.0` when the
    /// shard had nothing to deliver).
    pub fn completeness(&self) -> f64 {
        if self.buffers.is_empty() {
            return 1.0;
        }
        self.buffers.iter().map(|b| b.completeness).sum::<f64>() / self.buffers.len() as f64
    }

    /// Retries this shard consumed across all buffers.
    pub fn retries(&self) -> u64 {
        self.buffers.iter().map(|b| u64::from(b.attempts.saturating_sub(1))).sum()
    }
}

/// An undecodable frame captured with full provenance: which shard,
/// which buffer delivery, and where in that buffer's byte stream.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadLetter {
    /// Collector shard that received the damaged frame.
    pub shard: usize,
    /// Buffer index within the shard.
    pub buffer: usize,
    /// The quarantined frame (stream offset, captured bytes, reason).
    pub frame: QuarantinedFrame,
}

/// Full accounting of a supervised run.
#[derive(Debug, Clone)]
pub struct SupervisedReport {
    /// The underlying pipeline report (per-collector counters reflect
    /// what actually reached the dataset, including salvage decodes).
    pub report: PipelineReport,
    /// Per-shard supervision outcomes, indexed by shard.
    pub outcomes: Vec<ShardOutcome>,
    /// Every frame that could not be decoded, with provenance.
    pub quarantine: Vec<DeadLetter>,
    /// The completeness grid also attached to the returned dataset.
    pub coverage: Coverage,
}

impl SupervisedReport {
    /// Total retries across all shards.
    pub fn retries(&self) -> u64 {
        self.outcomes.iter().map(|o| o.retries()).sum()
    }

    /// Whether every buffer reached the dataset in full.
    pub fn fully_recovered(&self) -> bool {
        self.coverage.is_complete()
    }
}

/// What one decode attempt observed.
#[derive(Default)]
struct AttemptResult {
    records: u64,
    skipped: u64,
    resyncs: u64,
    decode_error: bool,
    quarantine: Vec<QuarantinedFrame>,
}

/// Cadence-generic fold target: the supervisor logic is identical for
/// daily and weekly runs; only the builder differs.
trait Sink: Send + Sized {
    type Out: Send;
    fn new(slots: usize) -> Self;
    fn fold(&mut self, record: Record);
    fn merge(&mut self, other: Self);
    fn finish(self, coverage: Coverage) -> Self::Out;
}

struct DailySink(DailyDatasetBuilder);

impl Sink for DailySink {
    type Out = DailyDataset;
    fn new(slots: usize) -> Self {
        DailySink(DailyDatasetBuilder::new(slots))
    }
    fn fold(&mut self, record: Record) {
        fold_daily(record, &mut self.0);
    }
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }
    fn finish(self, coverage: Coverage) -> DailyDataset {
        self.0.finish().with_coverage(coverage)
    }
}

struct WeeklySink(WeeklyDatasetBuilder);

impl Sink for WeeklySink {
    type Out = WeeklyDataset;
    fn new(slots: usize) -> Self {
        WeeklySink(WeeklyDatasetBuilder::new(slots))
    }
    fn fold(&mut self, record: Record) {
        if let Record::Hits { day, addr, hits } = record {
            self.0.record_week(day as usize, addr, hits);
        }
    }
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }
    fn finish(self, coverage: Coverage) -> WeeklyDataset {
        self.0.finish().with_coverage(coverage)
    }
}

/// Serializes the universe's daily logs the way `workers` edge threads
/// would: each worker slice produces one buffer per collector shard,
/// and `result[shard]` lists that shard's buffers in worker order.
/// These retained buffers are what [`supervised_collect_daily`]
/// replays on retry.
pub fn emit_daily_shard_buffers(
    universe: &Universe,
    workers: usize,
    collectors: usize,
) -> io::Result<Vec<Vec<Vec<u8>>>> {
    emit_shard_buffers(universe, workers, collectors, emit_block_daily)
}

/// Weekly counterpart of [`emit_daily_shard_buffers`].
pub fn emit_weekly_shard_buffers(
    universe: &Universe,
    workers: usize,
    collectors: usize,
) -> io::Result<Vec<Vec<Vec<u8>>>> {
    emit_shard_buffers(universe, workers, collectors, emit_block_weekly)
}

fn emit_shard_buffers(
    universe: &Universe,
    workers: usize,
    collectors: usize,
    emit: impl Fn(&Universe, &crate::universe::BlockEntry, &mut FrameWriter<Vec<u8>>) -> io::Result<()>,
) -> io::Result<Vec<Vec<Vec<u8>>>> {
    validate_topology(workers, collectors)?;
    let chunk = universe.blocks.len().div_ceil(workers).max(1);
    let mut out: Vec<Vec<Vec<u8>>> = vec![Vec::new(); collectors];
    for worker_blocks in universe.blocks.chunks(chunk) {
        let mut writers: Vec<FrameWriter<Vec<u8>>> =
            (0..collectors).map(|_| FrameWriter::new(Vec::new())).collect();
        for e in worker_blocks {
            emit(universe, e, &mut writers[shard_of(e.block, collectors)])?;
        }
        for (c, writer) in writers.into_iter().enumerate() {
            out[c].push(writer.finish()?);
        }
    }
    Ok(out)
}

/// Decodes one attempt's view of a buffer into a fresh sink. Runs
/// tolerantly; quarantine capture is enabled only when the caller is
/// on its salvage (final) attempt.
fn drain_attempt<S: Sink>(buf: &[u8], slots: usize, capture: bool) -> (S, AttemptResult) {
    let mut reader = FrameReader::new(buf, ReadMode::Tolerant).capture_quarantine(capture);
    let mut sink = S::new(slots);
    let mut res = AttemptResult::default();
    loop {
        match reader.read() {
            Ok(Some(record)) => {
                res.records += 1;
                sink.fold(record);
            }
            Ok(None) => break,
            Err(_) => {
                res.decode_error = true;
                break;
            }
        }
    }
    res.skipped = reader.skipped();
    res.resyncs = reader.resyncs();
    res.quarantine = reader.take_quarantine();
    (sink, res)
}

/// The stable lowercase token a fault kind carries in journal event
/// details (`None` decodes that still came up dirty say "dirty").
/// Salt for per-shard collection trace ids, folded with an FNV-1a
/// hash of the metric prefix so the daily and weekly cadences of the
/// same seeded run mint distinct traces.
const TRACE_SALT: u64 = 0x5C01_1EC7;

/// FNV-1a over the prefix bytes — a stable, dependency-free way to
/// tell `supervisor.daily` traces from `supervisor.weekly` ones.
fn prefix_salt(prefix: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in prefix.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn fault_detail(kind: Option<FaultKind>) -> &'static str {
    match kind {
        Some(FaultKind::Crash) => "crash",
        Some(FaultKind::Corrupt) => "corrupt",
        Some(FaultKind::Drop) => "drop",
        Some(FaultKind::Stall) => "stall",
        None => "dirty",
    }
}

/// Supervises one buffer delivery: bounded attempts, checkpointed
/// merge (only a fully clean decode — or the terminal salvage — ever
/// touches `acc`), dead-lettering on exhaustion. Every retry and every
/// dead-lettered frame is also recorded in the registry journal with
/// shard/buffer/offset provenance.
#[allow(clippy::too_many_arguments)]
fn supervise_buffer<S: Sink>(
    shard: usize,
    buffer: usize,
    buf: &[u8],
    slots: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
    prefix: &str,
    acc: &mut S,
    meters: &ShardMeters,
    letters: &mut Vec<DeadLetter>,
) -> BufferOutcome {
    let registry = meters.registry().clone();
    let fault = plan.fault_for(shard, buffer).copied();
    let fault_kind = fault.map(|f| f.kind);
    let max_attempts = policy.max_retries.saturating_add(1);
    let mut backoff = Duration::ZERO;
    let lost = |attempts: u32, backoff: Duration| {
        registry.counter(format!("{prefix}.lost_buffers")).inc();
        registry.emit(
            Event::new(EventKind::Quarantine)
                .shard(shard as u32)
                .offset(buffer as u64)
                .attempt(attempts.saturating_sub(1))
                .detail(format!("buffer lost: {}", fault_detail(fault_kind))),
        );
        BufferOutcome {
            shard,
            buffer,
            attempts,
            backoff,
            completeness: 0.0,
            fault: fault_kind,
        }
    };
    for attempt in 0..max_attempts {
        if attempt > 0 {
            let delay = policy.backoff(shard, buffer, attempt);
            backoff += delay;
            registry.counter(format!("{prefix}.retries")).inc();
            registry.emit(
                Event::new(EventKind::Retry)
                    .shard(shard as u32)
                    .offset(buffer as u64)
                    .attempt(attempt)
                    .detail(fault_detail(fault_kind)),
            );
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let final_attempt = attempt + 1 == max_attempts;
        let active = fault.filter(|f| f.active(attempt)).map(|f| f.kind);
        match active {
            // The buffer never arrives this attempt; nothing to decode.
            Some(FaultKind::Drop) => {
                if final_attempt {
                    return lost(attempt + 1, backoff);
                }
            }
            // The collector hangs; the supervisor's watchdog fires
            // after `stall_timeout` and the attempt is charged as a
            // timeout. Modeled deterministically (no real thread race)
            // so fault runs replay bit-identically.
            Some(FaultKind::Stall) => {
                if final_attempt {
                    return lost(attempt + 1, backoff);
                }
            }
            // The collector genuinely panics mid-decode; catch_unwind
            // contains it and the partial attempt sink is discarded —
            // the checkpoint (the shard accumulator) never saw it.
            Some(FaultKind::Crash) => {
                quiet_injected_panics();
                let fuse = splitmix(plan.seed ^ mix(shard, buffer)) % 17;
                let crashed = catch_unwind(AssertUnwindSafe(|| {
                    let mut attempt_sink = S::new(slots);
                    let mut reader = FrameReader::new(buf, ReadMode::Tolerant);
                    let mut folded = 0u64;
                    while let Ok(Some(record)) = reader.read() {
                        attempt_sink.fold(record);
                        folded += 1;
                        if folded > fuse {
                            std::panic::panic_any(InjectedCrash);
                        }
                    }
                    std::panic::panic_any(InjectedCrash);
                }));
                debug_assert!(crashed.is_err());
                if final_attempt {
                    return lost(attempt + 1, backoff);
                }
            }
            // Corrupt delivery or (possibly) clean decode — both run
            // the same attempt machinery; a corrupt fault just swaps
            // in a deterministically damaged copy of the wire bytes.
            Some(FaultKind::Corrupt) | None => {
                let dirty;
                let data: &[u8] = if active == Some(FaultKind::Corrupt) {
                    dirty = corrupt_copy(buf, plan.seed, shard, buffer);
                    &dirty
                } else {
                    buf
                };
                let attempt_run = catch_unwind(AssertUnwindSafe(|| {
                    drain_attempt::<S>(data, slots, final_attempt)
                }));
                let Ok((sink, res)) = attempt_run else {
                    // A genuine decode panic: contained, partial state
                    // discarded, attempt charged.
                    if final_attempt {
                        return lost(attempt + 1, backoff);
                    }
                    continue;
                };
                // A resync means the reader lost framing and silently
                // swallowed at least one frame while scanning for the
                // next sync byte — `skipped` does not move, so a decode
                // with resyncs is lossy even when nothing else fired.
                let clean = res.skipped == 0 && res.resyncs == 0 && !res.decode_error;
                if clean {
                    acc.merge(sink);
                    meters.add_clean_records(res.records);
                    return BufferOutcome {
                        shard,
                        buffer,
                        attempts: attempt + 1,
                        backoff,
                        completeness: 1.0,
                        fault: fault_kind,
                    };
                }
                if final_attempt {
                    // Salvage: retries are exhausted, so keep every
                    // record that survived CRC and dead-letter the
                    // frames that did not.
                    acc.merge(sink);
                    meters.add_salvage(res.records, res.skipped, res.resyncs, res.decode_error);
                    let quarantined = registry.counter(format!("{prefix}.quarantined_frames"));
                    for frame in res.quarantine {
                        quarantined.inc();
                        registry.emit(
                            Event::new(EventKind::Quarantine)
                                .shard(shard as u32)
                                .offset(frame.offset)
                                .attempt(attempt)
                                .detail(format!("{:?}", frame.reason)),
                        );
                        letters.push(DeadLetter { shard, buffer, frame });
                    }
                    // Each resync is charged as (at least) one frame
                    // lost to the desync scan; the true count is
                    // unknowable, so this lower-bounds the loss rather
                    // than ignoring it.
                    let failed = res.skipped + res.resyncs + u64::from(res.decode_error);
                    let total = res.records + failed;
                    let completeness =
                        if total == 0 { 0.0 } else { res.records as f64 / total as f64 };
                    return BufferOutcome {
                        shard,
                        buffer,
                        attempts: attempt + 1,
                        backoff,
                        completeness,
                        fault: fault_kind,
                    };
                }
                // Dirty decode with retries left: discard the partial
                // sink (checkpoint isolation) and replay the buffer.
            }
        }
    }
    unreachable!("attempt loop always returns on its final attempt")
}

/// Supervises one shard: buffers are processed in delivery order, each
/// through the bounded-retry machinery, into one shard accumulator.
/// All accounting goes through the shard's registry meters; the
/// collector span carries the shard's wall time.
fn supervise_shard<S: Sink>(
    shard: usize,
    buffers: &[Vec<u8>],
    slots: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
    registry: &Registry,
    prefix: &str,
) -> (S, ShardOutcome, Vec<DeadLetter>) {
    let _span = registry.span(collector_span_path(prefix, shard));
    let meters = ShardMeters::new(registry, prefix, shard);
    // One trace per (cadence, shard), minted from the fault plan's
    // seed: the span tree is a pure function of (seed, topology,
    // plan), so reruns — at any thread count — produce identical
    // trace bytes.
    let trace = TraceId::mint(plan.seed ^ TRACE_SALT ^ prefix_salt(prefix), shard as u64);
    let ctx = registry.trace_span(
        TraceContext::root(trace),
        "collect.shard",
        format!("{prefix} shard {shard}"),
    );
    let mut acc = S::new(slots);
    let mut letters = Vec::new();
    let mut outcomes = Vec::with_capacity(buffers.len());
    for (buffer, buf) in buffers.iter().enumerate() {
        meters.count_buffer(buf.len());
        let injected = plan.fault_for(shard, buffer).map(|f| fault_detail(Some(f.kind)));
        registry.trace_span(
            ctx,
            "collect.buffer",
            format!("buffer {buffer} bytes {} fault {}", buf.len(), injected.unwrap_or("none")),
        );
        outcomes.push(supervise_buffer(
            shard, buffer, buf, slots, policy, plan, prefix, &mut acc, &meters, &mut letters,
        ));
    }
    (acc, ShardOutcome { shard, buffers: outcomes }, letters)
}

/// The generic supervised collector: one thread per shard, each
/// running [`supervise_shard`]; partials merge in shard order (the
/// builder merge is order-insensitive, shards are block-disjoint) and
/// the per-shard completeness fractions become the dataset's
/// [`Coverage`].
fn supervised_collect<S: Sink>(
    shard_buffers: &[Vec<Vec<u8>>],
    slots: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
    registry: &Registry,
    prefix: &str,
) -> io::Result<(S::Out, SupervisedReport)> {
    validate_topology(1, shard_buffers.len())?;
    let start = Instant::now();
    let results = crossbeam::scope(|scope| {
        let handles: Vec<_> = shard_buffers
            .iter()
            .enumerate()
            .map(|(shard, buffers)| {
                scope.spawn(move |_| {
                    supervise_shard::<S>(shard, buffers, slots, policy, plan, registry, prefix)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("supervised shard thread panicked"))
            .collect::<Vec<_>>()
    })
    .expect("supervisor scope panicked");

    let mut merged: Option<S> = None;
    let mut outcomes = Vec::with_capacity(results.len());
    let mut quarantine = Vec::new();
    let mut fractions = Vec::with_capacity(results.len());
    for (sink, outcome, letters) in results {
        fractions.push(outcome.completeness());
        outcomes.push(outcome);
        quarantine.extend(letters);
        match &mut merged {
            None => merged = Some(sink),
            Some(acc) => acc.merge(sink),
        }
    }
    let coverage = Coverage::from_shard_fractions(&fractions, slots);
    let report = assemble_report(registry, prefix, shard_buffers.len(), 0, start.elapsed());
    let dataset = merged
        .expect("validate_topology guarantees at least one shard")
        .finish(coverage.clone());
    Ok((dataset, SupervisedReport { report, outcomes, quarantine, coverage }))
}

/// Runs the supervised daily collector over retained shard buffers
/// (from [`emit_daily_shard_buffers`]): bounded retries with
/// deterministic backoff, checkpointed replay, dead-letter quarantine,
/// and a [`Coverage`]-annotated dataset that degrades gracefully when
/// retries are exhausted.
///
/// When every fault is transient the output is bit-identical to the
/// fault-free run and its coverage is complete; the differential suite
/// in `tests/supervisor.rs` pins this across the fault × topology
/// grid.
pub fn supervised_collect_daily(
    shard_buffers: &[Vec<Vec<u8>>],
    num_days: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
) -> io::Result<(DailyDataset, SupervisedReport)> {
    supervised_collect_daily_obs(shard_buffers, num_days, policy, plan, &Registry::new())
}

/// [`supervised_collect_daily`] with an explicit [`Registry`]:
/// counters land under `supervisor.daily.*`, every retry and
/// dead-letter is journaled with shard/buffer/offset provenance, and
/// the returned report is a view over the registry snapshot.
pub fn supervised_collect_daily_obs(
    shard_buffers: &[Vec<Vec<u8>>],
    num_days: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
    registry: &Registry,
) -> io::Result<(DailyDataset, SupervisedReport)> {
    supervised_collect::<DailySink>(
        shard_buffers,
        num_days,
        policy,
        plan,
        registry,
        SUPERVISOR_DAILY_PREFIX,
    )
}

/// Recovers a [`DailyDataset`] from a (possibly crash-damaged) log
/// store: runs an `fsck` verification pass over the store's
/// manifests, footers, and frames, folds every surviving record, and
/// returns the dataset annotated with the per-day completeness grid
/// the fsck report established — the store-backed analogue of the
/// buffer-level supervised collectors above. The report itself is
/// returned alongside so callers can log quarantine provenance or
/// decide to re-run `fsck --repair` out of band.
///
/// The pass is strictly read-only; repairs are an explicit operator
/// action (`inspect fsck --repair`), never a side effect of
/// collection.
pub fn recover_daily_from_store<F: ipactive_logfmt::Fs>(
    store: &ipactive_logfmt::LogStore<F>,
    num_days: usize,
) -> Result<(DailyDataset, ipactive_logfmt::FsckReport), ipactive_logfmt::StoreError> {
    let (dataset, _stats, report) =
        crate::pipeline::collect_from_store_checked(store, num_days)?;
    Ok((dataset, report))
}

/// Weekly counterpart of [`supervised_collect_daily`].
pub fn supervised_collect_weekly(
    shard_buffers: &[Vec<Vec<u8>>],
    num_weeks: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
) -> io::Result<(WeeklyDataset, SupervisedReport)> {
    supervised_collect_weekly_obs(shard_buffers, num_weeks, policy, plan, &Registry::new())
}

/// [`supervised_collect_weekly`] with an explicit [`Registry`];
/// metrics land under `supervisor.weekly.*`.
pub fn supervised_collect_weekly_obs(
    shard_buffers: &[Vec<Vec<u8>>],
    num_weeks: usize,
    policy: &RetryPolicy,
    plan: &FaultPlan,
    registry: &Registry,
) -> io::Result<(WeeklyDataset, SupervisedReport)> {
    supervised_collect::<WeeklySink>(
        shard_buffers,
        num_weeks,
        policy,
        plan,
        registry,
        SUPERVISOR_WEEKLY_PREFIX,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;
    use crate::pipeline::collect_daily_sharded;

    fn universe() -> Universe {
        Universe::generate(UniverseConfig::tiny(0x5EED))
    }

    #[test]
    fn fault_free_run_is_complete_and_equals_unsupervised() {
        let u = universe();
        let num_days = u.config().daily_days;
        let buffers = emit_daily_shard_buffers(&u, 3, 2).unwrap();
        let (supervised, sup_report) = supervised_collect_daily(
            &buffers,
            num_days,
            &RetryPolicy::instant(2),
            &FaultPlan::none(),
        )
        .unwrap();
        // Same shard function, same blocks — the single-buffer shard
        // emitter must produce the same dataset.
        let shards = crate::pipeline::emit_daily_shards(&u, 2).unwrap();
        let (unsupervised, _) = collect_daily_sharded(&shards, num_days);
        assert_eq!(supervised, unsupervised);
        assert!(sup_report.fully_recovered());
        assert_eq!(sup_report.retries(), 0);
        assert!(sup_report.quarantine.is_empty());
        let coverage = supervised.coverage.expect("supervised runs carry coverage");
        assert!(coverage.is_complete());
        assert_eq!(coverage.num_shards(), 2);
    }

    #[test]
    fn transient_crash_recovers_bit_identically() {
        let u = universe();
        let num_days = u.config().daily_days;
        let buffers = emit_daily_shard_buffers(&u, 2, 2).unwrap();
        let policy = RetryPolicy::instant(2);
        let (clean, _) =
            supervised_collect_daily(&buffers, num_days, &policy, &FaultPlan::none()).unwrap();
        let plan = FaultPlan::new(7).with_fault(Fault {
            shard: 1,
            buffer: 0,
            kind: FaultKind::Crash,
            persist_attempts: 2,
        });
        let (healed, report) =
            supervised_collect_daily(&buffers, num_days, &policy, &plan).unwrap();
        assert_eq!(healed, clean);
        assert!(report.fully_recovered());
        assert_eq!(report.retries(), 2);
        assert!(report.outcomes[1].buffers[0].recovered());
    }

    #[test]
    fn permanent_drop_degrades_exactly_one_shard() {
        let u = universe();
        let num_days = u.config().daily_days;
        let buffers = emit_daily_shard_buffers(&u, 1, 3).unwrap();
        let plan = FaultPlan::new(9).with_fault(Fault {
            shard: 2,
            buffer: 0,
            kind: FaultKind::Drop,
            persist_attempts: Fault::PERMANENT,
        });
        let (dataset, report) =
            supervised_collect_daily(&buffers, num_days, &RetryPolicy::instant(1), &plan)
                .unwrap();
        let coverage = dataset.coverage.expect("coverage attached");
        assert_eq!(coverage.degraded_shards(), vec![2]);
        assert_eq!(coverage.shard(2), 0.0);
        assert_eq!(coverage.shard(0), 1.0);
        assert!(!report.fully_recovered());
        assert!(report.outcomes[2].completeness() < 1.0);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let policy = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
            ..RetryPolicy::default()
        };
        let a: Vec<_> = (0..6).map(|n| policy.backoff(3, 1, n)).collect();
        let b: Vec<_> = (0..6).map(|n| policy.backoff(3, 1, n)).collect();
        assert_eq!(a, b, "same inputs, same schedule");
        assert_eq!(a[0], Duration::ZERO);
        assert!(a[1] >= Duration::from_millis(2));
        assert!(a.iter().all(|&d| d <= Duration::from_millis(9)));
        assert_ne!(
            policy.backoff(3, 1, 1),
            policy.backoff(4, 1, 1),
            "jitter separates shards"
        );
    }

    /// Attempt counts from coordinator reassignment storms reach far
    /// past the in-process retry bound; every arithmetic step must
    /// saturate instead of panicking, and the cap must still hold.
    #[test]
    fn backoff_saturates_at_extreme_attempts_and_bases() {
        let policy = RetryPolicy {
            max_retries: u32::MAX,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
            ..RetryPolicy::default()
        };
        for attempt in [63, 64, 1000, u32::MAX] {
            let d = policy.backoff(0, 0, attempt);
            assert!(d <= policy.max_backoff, "attempt {attempt} exceeded the cap: {d:?}");
            assert!(d >= Duration::from_millis(1), "attempt {attempt} lost the floor: {d:?}");
        }
        // A pathological base near Duration::MAX: the exponential term
        // saturates and the jitter add must not overflow the Duration.
        let huge = RetryPolicy {
            base_backoff: Duration::MAX,
            max_backoff: Duration::MAX,
            ..RetryPolicy::default()
        };
        assert_eq!(huge.backoff(1, 2, 63), Duration::MAX);
        // Deterministic at the edge, like everywhere else.
        assert_eq!(policy.backoff(3, 1, 63), policy.backoff(3, 1, 63));
    }

    #[test]
    fn scatter_is_deterministic() {
        let a = FaultPlan::scatter(42, 4, 3, 8);
        let b = FaultPlan::scatter(42, 4, 3, 8);
        assert_eq!(a, b);
        assert_eq!(a.faults().len(), 8);
        assert!(a.faults().iter().all(|f| f.shard < 4 && f.buffer < 3));
        let c = FaultPlan::scatter(43, 4, 3, 8);
        assert_ne!(a, c, "different seed, different plan");
    }

    #[test]
    fn journal_events_agree_with_the_report() {
        use ipactive_obs::SnapshotMode;
        let u = universe();
        let num_days = u.config().daily_days;
        let buffers = emit_daily_shard_buffers(&u, 2, 3).unwrap();
        let plan = FaultPlan::scatter(0xBEEF, 3, 2, 6);
        let reg = Registry::new();
        let (_, report) = supervised_collect_daily_obs(
            &buffers,
            num_days,
            &RetryPolicy::instant(2),
            &plan,
            &reg,
        )
        .unwrap();
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        // Retry accounting: outcome math, the counter, and the journal
        // all describe the same run.
        assert_eq!(report.retries(), snap.counter("supervisor.daily.retries"));
        assert_eq!(report.retries(), snap.events_of(EventKind::Retry).count() as u64);
        // Every dead letter has a matching quarantine event (lost
        // buffers add their own quarantine events on top).
        assert_eq!(
            report.quarantine.len() as u64,
            snap.counter("supervisor.daily.quarantined_frames")
        );
        assert!(
            snap.events_of(EventKind::Quarantine).count() as u64
                >= report.quarantine.len() as u64
        );
        // The report's per-collector stats are exactly the registry's.
        for (i, s) in report.report.per_collector.iter().enumerate() {
            assert_eq!(
                s.records_read,
                snap.counter(&format!("supervisor.daily.shard.{i}.records"))
            );
        }
    }

    #[test]
    fn zero_shards_is_a_proper_error() {
        let err = supervised_collect_daily(
            &[],
            7,
            &RetryPolicy::instant(0),
            &FaultPlan::none(),
        )
        .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn store_recovery_is_atomic_across_a_mid_commit_crash() {
        use crate::config::UniverseConfig;
        use crate::pipeline::persist_daily_atomic;
        use ipactive_logfmt::{CrashStyle, Inject, LogStore, SimFs};
        use std::path::PathBuf;

        let u1 = universe();
        let u2 = Universe::generate(UniverseConfig::tiny(0xD00D));
        let num_days = u1.config().daily_days;
        assert_eq!(num_days, u2.config().daily_days);
        let dir = PathBuf::from("/store");

        // First run commits durably; a second run (different universe,
        // same day range) is cut down by a power loss mid-commit.
        let fs = SimFs::new();
        {
            let mut store = LogStore::open_on(fs.clone(), &dir).unwrap();
            persist_daily_atomic(&u1, &mut store).unwrap();
        }
        let at_op = fs.ops() + 5;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        {
            let mut store = LogStore::open_on(fs.clone(), &dir).unwrap();
            let _ = persist_daily_atomic(&u2, &mut store);
        }
        assert!(fs.powered_off(), "the scheduled cut never fired");
        let rebooted = fs.crash(CrashStyle::Torn { seed: 7 });

        // Recovery sees exactly one of the two runs, whole, with
        // complete coverage — the crash cannot manufacture a blend.
        let store = LogStore::open_on(rebooted.clone(), &dir).unwrap();
        let (recovered, report) = recover_daily_from_store(&store, num_days).unwrap();
        let coverage = recovered.coverage.as_ref().expect("recovery must annotate coverage");
        assert!(coverage.is_complete(), "report:\n{}", report.render());
        let matches_u1 = recovered == u1.build_daily();
        let matches_u2 = recovered == u2.build_daily();
        assert!(
            matches_u1 ^ matches_u2,
            "recovered dataset must equal exactly one committed run \
             (u1: {matches_u1}, u2: {matches_u2})"
        );

        // An fsck repair pass (sweeping the crash's orphans) changes
        // nothing about what recovery reads.
        ipactive_logfmt::fsck(&rebooted, &dir, true).unwrap();
        let store = LogStore::open_on(rebooted.clone(), &dir).unwrap();
        let (again, report) = recover_daily_from_store(&store, num_days).unwrap();
        assert!(report.is_healthy(), "repair did not converge:\n{}", report.render());
        assert_eq!(again, recovered);
    }
}
