//! Deterministic randomness and behavioural distributions.
//!
//! Everything in the universe derives from one `u64` seed through
//! [`SeedMixer`], so a `(seed, entity, day)` triple always produces
//! the same draw — generation is reproducible and parallelizable in
//! any order.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// SplitMix64-style seed mixing: cheap, well-dispersed derivation of
/// child seeds from a parent seed and tag values.
#[derive(Debug, Clone, Copy)]
pub struct SeedMixer(u64);

impl SeedMixer {
    /// Wraps a root seed.
    pub fn new(seed: u64) -> Self {
        SeedMixer(seed)
    }

    /// The wrapped seed value.
    pub fn seed(self) -> u64 {
        self.0
    }

    /// Derives a child mixer tagged by `tag`.
    pub fn child(self, tag: u64) -> SeedMixer {
        SeedMixer(splitmix(self.0 ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }

    /// An RNG for this node of the derivation tree.
    pub fn rng(self) -> StdRng {
        StdRng::seed_from_u64(splitmix(self.0))
    }

    /// A single `u64` draw without constructing an RNG.
    pub fn value(self) -> u64 {
        splitmix(self.0)
    }

    /// A uniform draw in `[0, 1)` without constructing an RNG.
    pub fn unit(self) -> f64 {
        (self.value() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl SeedMixer {
    /// A standard-normal draw derived from this node (Box–Muller over
    /// two child draws) — for when constructing an RNG is overkill.
    pub fn normal(self) -> f64 {
        let u1 = self.child(0xA1).unit().max(f64::MIN_POSITIVE);
        let u2 = self.child(0xA2).unit();
        (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos()
    }
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a log-normal variate with the given *median* and log-space
/// sigma, via Box–Muller. Implemented here to keep the dependency set
/// to `rand` alone (the `rand_distr` crate is not part of the
/// project's approved set).
pub fn lognormal(rng: &mut StdRng, median: f64, sigma: f64) -> f64 {
    let (u1, u2): (f64, f64) = (rng.random(), rng.random());
    let u1 = u1.max(f64::MIN_POSITIVE); // guard log(0)
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
    median * (sigma * z).exp()
}

/// Samples a Poisson variate. Uses Knuth's method for small `lambda`
/// and a normal approximation above 64 (adequate for UA-sample counts).
pub fn poisson(rng: &mut StdRng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 64.0 {
        let limit = (-lambda).exp();
        let mut product: f64 = rng.random();
        let mut count = 0u64;
        while product > limit {
            count += 1;
            product *= rng.random::<f64>();
        }
        count
    } else {
        let (u1, u2): (f64, f64) = (rng.random(), rng.random());
        let u1 = u1.max(f64::MIN_POSITIVE);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
        (lambda + lambda.sqrt() * z).round().max(0.0) as u64
    }
}

/// Day-of-week activity multiplier. `dow` 0..=6 with 5 and 6 as the
/// weekend. Residential users are slightly *more* active on weekends;
/// institutional networks much less — the CDN-wide aggregate dips on
/// weekends as in Figure 4(a) because institutions and offices go
/// quiet.
pub fn weekday_factor(institutional: bool, dow: u8) -> f64 {
    debug_assert!(dow < 7);
    let weekend = dow >= 5;
    match (institutional, weekend) {
        (true, true) => 0.55,
        (true, false) => 1.0,
        (false, true) => 0.92,
        (false, false) => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixer_is_deterministic_and_disperses() {
        let m = SeedMixer::new(7);
        assert_eq!(m.child(1).value(), m.child(1).value());
        assert_ne!(m.child(1).value(), m.child(2).value());
        assert_ne!(SeedMixer::new(7).value(), SeedMixer::new(8).value());
        let u = m.child(3).unit();
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn child_chains_differ_by_path() {
        let m = SeedMixer::new(1);
        assert_ne!(m.child(1).child(2).value(), m.child(2).child(1).value());
    }

    #[test]
    fn lognormal_median_is_roughly_right() {
        let mut rng = SeedMixer::new(99).rng();
        let mut v: Vec<f64> = (0..4001).map(|_| lognormal(&mut rng, 100.0, 1.0)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        assert!((60.0..170.0).contains(&median), "median {median}");
        // Heavy tail: p99 well above the median.
        assert!(v[(v.len() * 99) / 100] > 4.0 * median);
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = SeedMixer::new(5).rng();
        for &lambda in &[0.5f64, 4.0, 30.0, 200.0] {
            let n = 3000;
            let total: u64 = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15 + 0.1,
                "lambda {lambda}, mean {mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn weekday_factors_shape() {
        assert!(weekday_factor(true, 6) < weekday_factor(true, 2));
        assert!(weekday_factor(false, 6) > weekday_factor(true, 6));
        assert_eq!(weekday_factor(false, 0), 1.0);
    }
}
