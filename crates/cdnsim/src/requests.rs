//! Raw request-level log events.
//!
//! The paper's pipeline starts from individual HTTP transactions:
//! "each time a client fetches a Web object from a CDN edge server, a
//! log entry is created, which is then processed and aggregated"
//! (Section 3.2). The dataset layer works on the *aggregated* form
//! (per-address daily hit counts); this module models the step before
//! it — expanding an address's day into individual timestamped
//! requests with a diurnal arrival profile, and folding raw requests
//! back into the aggregate. The two directions are exact inverses,
//! which the tests pin down.

use crate::behavior::SeedMixer;
use ipactive_net::Addr;
use rand::RngExt;
use std::collections::HashMap;

/// One raw CDN log entry: a successful WWW transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawRequest {
    /// Observation day.
    pub day: u16,
    /// Seconds since the day's midnight (0..86400).
    pub time_s: u32,
    /// The client address.
    pub addr: Addr,
    /// Bytes served for the object.
    pub bytes: u32,
}

/// A diurnal arrival-time shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiurnalShape {
    /// Home users: evening peak, deep night trough.
    Residential,
    /// Offices and campuses: business-hours plateau, quiet evenings.
    Institutional,
    /// Automation: essentially flat around the clock.
    Flat,
}

fn normalize(raw: [f64; 24]) -> [f64; 24] {
    let total: f64 = raw.iter().sum();
    let mut out = [0.0; 24];
    for (o, r) in out.iter_mut().zip(raw.iter()) {
        *o = r / total;
    }
    out
}

/// Relative request intensity by hour of day for a shape, normalized
/// to sum to 1.
pub fn profile_for(shape: DiurnalShape) -> [f64; 24] {
    match shape {
        DiurnalShape::Residential => normalize([
            0.55, 0.35, 0.25, 0.20, 0.20, 0.25, 0.40, 0.60, 0.80, 0.90, 0.95, 1.00, //
            1.00, 0.95, 0.95, 1.00, 1.10, 1.30, 1.60, 1.90, 2.00, 1.80, 1.40, 0.95,
        ]),
        DiurnalShape::Institutional => normalize([
            0.10, 0.08, 0.08, 0.08, 0.10, 0.15, 0.40, 1.00, 1.80, 2.10, 2.20, 2.10, //
            1.80, 2.00, 2.10, 2.00, 1.70, 1.20, 0.60, 0.35, 0.25, 0.20, 0.15, 0.12,
        ]),
        DiurnalShape::Flat => normalize([1.0; 24]),
    }
}

/// The residential curve (backwards-compatible default).
pub fn diurnal_profile() -> [f64; 24] {
    profile_for(DiurnalShape::Residential)
}

/// Expands an aggregated `(day, addr, hits)` observation into `hits`
/// individual requests with residentially distributed arrival times.
/// Deterministic in `(seed, day, addr)`.
pub fn expand(seed: SeedMixer, day: u16, addr: Addr, hits: u32) -> Vec<RawRequest> {
    expand_with_shape(seed, day, addr, hits, DiurnalShape::Residential)
}

/// [`expand`] with an explicit arrival-time shape.
pub fn expand_with_shape(
    seed: SeedMixer,
    day: u16,
    addr: Addr,
    hits: u32,
    shape: DiurnalShape,
) -> Vec<RawRequest> {
    let profile = profile_for(shape);
    let mut rng = seed
        .child(0x4E0)
        .child(day as u64)
        .child(addr.bits() as u64)
        .rng();
    let mut out = Vec::with_capacity(hits as usize);
    for _ in 0..hits {
        // Pick an hour by the diurnal weights, then a uniform offset.
        let mut roll: f64 = rng.random();
        let mut hour = 23;
        for (h, &w) in profile.iter().enumerate() {
            if roll < w {
                hour = h;
                break;
            }
            roll -= w;
        }
        let time_s = (hour as u32) * 3600 + rng.random_range(0..3600);
        // Object sizes: mostly small, occasional large fetches.
        let bytes = if rng.random::<f64>() < 0.05 {
            rng.random_range(100_000..2_000_000)
        } else {
            rng.random_range(500..50_000)
        };
        out.push(RawRequest { day, time_s, addr, bytes });
    }
    // Edge servers emit log lines in arrival order.
    out.sort_unstable_by_key(|r| r.time_s);
    out
}

/// Folds raw requests back into per-`(day, addr)` hit counts — the
/// collector's first aggregation stage. Order-independent.
pub fn aggregate(requests: impl IntoIterator<Item = RawRequest>) -> HashMap<(u16, Addr), u32> {
    let mut out = HashMap::new();
    for r in requests {
        *out.entry((r.day, r.addr)).or_insert(0u32) += 1;
    }
    out
}

/// Hourly request histogram — the diurnal view a per-request log
/// affords that daily aggregates cannot (the related work's "diurnal
/// activity patterns").
pub fn hourly_histogram(requests: &[RawRequest]) -> [u64; 24] {
    let mut out = [0u64; 24];
    for r in requests {
        out[(r.time_s / 3600).min(23) as usize] += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seed() -> SeedMixer {
        SeedMixer::new(0xAB)
    }

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn profile_is_a_distribution() {
        let p = diurnal_profile();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&w| w > 0.0));
        // Evening peak beats the small hours.
        assert!(p[20] > 3.0 * p[3]);
    }

    #[test]
    fn expansion_is_deterministic_and_exact() {
        let a = expand(seed(), 3, addr("10.0.0.1"), 100);
        let b = expand(seed(), 3, addr("10.0.0.1"), 100);
        assert_eq!(a, b);
        assert_eq!(a.len(), 100);
        assert!(a.windows(2).all(|w| w[0].time_s <= w[1].time_s), "arrival order");
        assert!(a.iter().all(|r| r.time_s < 86_400 && r.day == 3));
        // Different addresses expand differently.
        let c = expand(seed(), 3, addr("10.0.0.2"), 100);
        assert_ne!(a, c);
    }

    #[test]
    fn aggregate_inverts_expand() {
        let mut all = Vec::new();
        let inputs = [
            (0u16, addr("10.0.0.1"), 40u32),
            (0, addr("10.0.0.2"), 7),
            (1, addr("10.0.0.1"), 12),
        ];
        for &(day, a, hits) in &inputs {
            all.extend(expand(seed(), day, a, hits));
        }
        // Shuffle-ish: reverse, aggregation must not care about order.
        all.reverse();
        let agg = aggregate(all);
        assert_eq!(agg.len(), 3);
        for &(day, a, hits) in &inputs {
            assert_eq!(agg[&(day, a)], hits);
        }
    }

    #[test]
    fn hourly_histogram_tracks_the_profile() {
        // Many requests: evening bucket must dominate the night bucket.
        let reqs = expand(seed(), 0, addr("10.0.0.9"), 5_000);
        let h = hourly_histogram(&reqs);
        assert_eq!(h.iter().sum::<u64>(), 5_000);
        assert!(h[20] > 2 * h[3], "evening {} vs night {}", h[20], h[3]);
    }

    #[test]
    fn shapes_differ_where_expected() {
        let res = profile_for(DiurnalShape::Residential);
        let inst = profile_for(DiurnalShape::Institutional);
        let flat = profile_for(DiurnalShape::Flat);
        // Residential peaks in the evening; institutional at mid-day.
        assert!(res[20] > res[10]);
        assert!(inst[10] > inst[20]);
        assert!((flat[0] - 1.0 / 24.0).abs() < 1e-12);
        for p in [res, inst, flat] {
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        }
        // Expansion respects the shape.
        let reqs =
            expand_with_shape(SeedMixer::new(4), 0, addr("10.0.0.5"), 4_000, DiurnalShape::Institutional);
        let h = hourly_histogram(&reqs);
        assert!(h[10] > 3 * h[21], "midday {} vs evening {}", h[10], h[21]);
    }

    #[test]
    fn zero_hits_expand_to_nothing() {
        assert!(expand(seed(), 0, addr("10.0.0.1"), 0).is_empty());
        assert!(aggregate(Vec::new()).is_empty());
    }
}
