//! Universe configuration: scale knobs, AS mix, country profiles.

use ipactive_rir::Rir;

/// What kind of network an AS is — determines its block-policy mix,
/// user rhythm, and probe behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AsKind {
    /// Residential broadband ISP (DHCP pools, some CGN).
    ResidentialIsp,
    /// Cellular operator (almost everything behind CGN gateways).
    CellularIsp,
    /// University / academic network (lots of static space).
    University,
    /// Corporate enterprise network.
    Enterprise,
    /// Hosting / datacenter provider (servers, crawlers).
    Hosting,
    /// Backbone / infrastructure operator (routers, no WWW clients).
    Infrastructure,
}

impl AsKind {
    /// All kinds.
    pub const ALL: [AsKind; 6] = [
        AsKind::ResidentialIsp,
        AsKind::CellularIsp,
        AsKind::University,
        AsKind::Enterprise,
        AsKind::Hosting,
        AsKind::Infrastructure,
    ];

    /// Whether user activity follows institutional (weekday-heavy)
    /// rhythms.
    pub fn institutional(self) -> bool {
        matches!(self, AsKind::University | AsKind::Enterprise)
    }
}

/// Per-country modelling parameters.
#[derive(Debug, Clone, Copy)]
pub struct CountryProfile {
    /// ISO alpha-2 code.
    pub code: &'static str,
    /// The registry the country's space is delegated from.
    pub rir: Rir,
    /// Base probability that a reachable, unfirewalled host in this
    /// country answers ICMP (the paper observes ~80% in CN vs ~25% in
    /// JP, Section 3.4).
    pub icmp_base: f64,
    /// Probability that a client host sits behind a NAT/firewall that
    /// silently drops unsolicited probes.
    pub nat_rate: f64,
    /// Relative weight when assigning ASes to countries.
    pub weight: u32,
}

/// The modelled countries. Weights approximate the paper's Figure 3(b)
/// ordering; `icmp_base`/`nat_rate` reproduce its per-country ICMP
/// response-rate spread.
pub const COUNTRY_PROFILES: [CountryProfile; 16] = [
    CountryProfile { code: "US", rir: Rir::Arin, icmp_base: 0.75, nat_rate: 0.55, weight: 24 },
    CountryProfile { code: "CN", rir: Rir::Apnic, icmp_base: 0.92, nat_rate: 0.08, weight: 22 },
    CountryProfile { code: "JP", rir: Rir::Apnic, icmp_base: 0.45, nat_rate: 0.75, weight: 12 },
    CountryProfile { code: "BR", rir: Rir::Lacnic, icmp_base: 0.70, nat_rate: 0.50, weight: 10 },
    CountryProfile { code: "DE", rir: Rir::Ripe, icmp_base: 0.70, nat_rate: 0.50, weight: 9 },
    CountryProfile { code: "KR", rir: Rir::Apnic, icmp_base: 0.70, nat_rate: 0.50, weight: 7 },
    CountryProfile { code: "GB", rir: Rir::Ripe, icmp_base: 0.65, nat_rate: 0.55, weight: 7 },
    CountryProfile { code: "FR", rir: Rir::Ripe, icmp_base: 0.70, nat_rate: 0.50, weight: 7 },
    CountryProfile { code: "RU", rir: Rir::Ripe, icmp_base: 0.75, nat_rate: 0.40, weight: 6 },
    CountryProfile { code: "IT", rir: Rir::Ripe, icmp_base: 0.65, nat_rate: 0.55, weight: 5 },
    CountryProfile { code: "IN", rir: Rir::Apnic, icmp_base: 0.70, nat_rate: 0.55, weight: 5 },
    CountryProfile { code: "MX", rir: Rir::Lacnic, icmp_base: 0.65, nat_rate: 0.55, weight: 4 },
    CountryProfile { code: "AR", rir: Rir::Lacnic, icmp_base: 0.65, nat_rate: 0.55, weight: 3 },
    CountryProfile { code: "ZA", rir: Rir::Afrinic, icmp_base: 0.55, nat_rate: 0.60, weight: 3 },
    CountryProfile { code: "NG", rir: Rir::Afrinic, icmp_base: 0.45, nat_rate: 0.70, weight: 3 },
    CountryProfile { code: "EG", rir: Rir::Afrinic, icmp_base: 0.50, nat_rate: 0.65, weight: 3 },
];

/// Scale and behaviour knobs for [`crate::Universe::generate`].
///
/// Presets trade realism volume for speed:
/// * [`UniverseConfig::tiny`] — unit tests (tens of blocks, instant).
/// * [`UniverseConfig::small`] — integration tests and examples.
/// * [`UniverseConfig::default_scale`] — the figure-regeneration
///   harness (thousands of blocks; seconds in release builds).
#[derive(Debug, Clone)]
pub struct UniverseConfig {
    /// Root seed; equal configs with equal seeds generate identical
    /// universes and datasets.
    pub seed: u64,
    /// ASes of each kind: (kind, count).
    pub as_counts: [(AsKind, u32); 6],
    /// Mean `/24` blocks per AS (log-normal-ish spread around it).
    pub mean_blocks_per_as: f64,
    /// Days in the daily dataset window (paper: 112; must be ≤ 128).
    pub daily_days: usize,
    /// Weeks in the weekly dataset (paper: 52; must be ≤ 64).
    pub weeks: usize,
    /// Absolute day (0-based within the year) the daily window starts
    /// (paper: Aug 17 ≈ day 224 = week 32).
    pub daily_offset: usize,
    /// One of every `ua_sample_rate` hits records a User-Agent sample
    /// (paper: 4096 ≈ "1 out of 4K").
    pub ua_sample_rate: u32,
    /// Fraction of blocks that switch assignment policy mid-window
    /// (drives Figures 7/8(a); paper finds ≈ 9.8% major change).
    pub restructure_rate: f64,
    /// Fraction of blocks with a partial-year lifespan (drives the
    /// year-scale appear/disappear churn of Figure 4(c)/Table 2).
    pub partial_lifespan_rate: f64,
    /// Probability that a block lifecycle edge (activation/retirement)
    /// is visible in BGP (Table 2 shows ~90% of long-term churn is
    /// invisible to BGP).
    pub bgp_visibility_rate: f64,
    /// Fraction of blocks that suffer one multi-day outage inside the
    /// daily window (connectivity loss, not reconfiguration — the
    /// related-work reliability thread).
    pub outage_rate: f64,
}

impl UniverseConfig {
    fn base(seed: u64) -> Self {
        UniverseConfig {
            seed,
            as_counts: [
                (AsKind::ResidentialIsp, 0),
                (AsKind::CellularIsp, 0),
                (AsKind::University, 0),
                (AsKind::Enterprise, 0),
                (AsKind::Hosting, 0),
                (AsKind::Infrastructure, 0),
            ],
            mean_blocks_per_as: 6.0,
            daily_days: 112,
            weeks: 52,
            daily_offset: 224,
            ua_sample_rate: 4096,
            restructure_rate: 0.10,
            partial_lifespan_rate: 0.15,
            bgp_visibility_rate: 0.12,
            outage_rate: 0.02,
        }
    }

    /// Minimal universe for unit tests: a handful of ASes, a short
    /// window, aggressive UA sampling so small traffic still yields
    /// samples.
    pub fn tiny(seed: u64) -> Self {
        let mut c = Self::base(seed);
        c.as_counts = [
            (AsKind::ResidentialIsp, 2),
            (AsKind::CellularIsp, 1),
            (AsKind::University, 1),
            (AsKind::Enterprise, 1),
            (AsKind::Hosting, 1),
            (AsKind::Infrastructure, 1),
        ];
        c.mean_blocks_per_as = 3.0;
        c.daily_days = 28;
        c.weeks = 12;
        c.daily_offset = 28;
        c.ua_sample_rate = 64;
        c
    }

    /// Mid-size universe: fast enough for integration tests and
    /// examples in debug builds, large enough for stable statistics.
    pub fn small(seed: u64) -> Self {
        let mut c = Self::base(seed);
        c.as_counts = [
            (AsKind::ResidentialIsp, 14),
            (AsKind::CellularIsp, 4),
            (AsKind::University, 6),
            (AsKind::Enterprise, 8),
            (AsKind::Hosting, 5),
            (AsKind::Infrastructure, 3),
        ];
        c.mean_blocks_per_as = 5.0;
        c.daily_days = 56;
        c.weeks = 26;
        c.daily_offset = 112;
        c.ua_sample_rate = 512;
        c
    }

    /// The full-scale preset used by the figure-regeneration harness:
    /// the paper's 112-day/52-week geometry over a few thousand `/24`
    /// blocks.
    pub fn default_scale(seed: u64) -> Self {
        let mut c = Self::base(seed);
        c.as_counts = [
            (AsKind::ResidentialIsp, 110),
            (AsKind::CellularIsp, 30),
            (AsKind::University, 45),
            (AsKind::Enterprise, 60),
            (AsKind::Hosting, 35),
            (AsKind::Infrastructure, 20),
        ];
        c.mean_blocks_per_as = 7.0;
        c
    }

    /// Returns the config with every AS count multiplied by `factor`
    /// (rounded, at least one AS of each kind that had any) — the
    /// single dial for "the same world, bigger".
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        for (_, n) in &mut self.as_counts {
            if *n > 0 {
                *n = ((*n as f64 * factor).round() as u32).max(1);
            }
        }
        self
    }

    /// Total configured AS count.
    pub fn total_ases(&self) -> u32 {
        self.as_counts.iter().map(|&(_, n)| n).sum()
    }

    /// Validates internal consistency (panics on violation). Called by
    /// `Universe::generate`.
    pub fn validate(&self) {
        assert!(self.daily_days >= 2 && self.daily_days <= 128, "daily window out of range");
        assert!(self.weeks >= 2 && self.weeks <= 64, "weeks out of range");
        assert!(
            self.daily_offset + self.daily_days <= self.weeks * 7,
            "daily window must fit inside the weekly year"
        );
        assert!(self.ua_sample_rate >= 1);
        assert!((0.0..=1.0).contains(&self.restructure_rate));
        assert!((0.0..=1.0).contains(&self.partial_lifespan_rate));
        assert!((0.0..=1.0).contains(&self.bgp_visibility_rate));
        assert!((0.0..=1.0).contains(&self.outage_rate));
        assert!(self.total_ases() > 0, "universe needs at least one AS");
        assert!(self.mean_blocks_per_as >= 1.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        UniverseConfig::tiny(1).validate();
        UniverseConfig::small(1).validate();
        UniverseConfig::default_scale(1).validate();
    }

    #[test]
    fn preset_scales_are_ordered() {
        let t = UniverseConfig::tiny(1).total_ases();
        let s = UniverseConfig::small(1).total_ases();
        let d = UniverseConfig::default_scale(1).total_ases();
        assert!(t < s && s < d);
    }

    #[test]
    #[should_panic(expected = "daily window must fit")]
    fn validate_rejects_overhanging_daily_window() {
        let mut c = UniverseConfig::tiny(1);
        c.daily_offset = 80;
        c.validate();
    }

    #[test]
    fn scaled_multiplies_as_counts() {
        let base = UniverseConfig::small(1);
        let double = UniverseConfig::small(1).scaled(2.0);
        assert_eq!(double.total_ases(), 2 * base.total_ases());
        // Tiny factors never zero out a populated kind.
        let shrunk = UniverseConfig::small(1).scaled(0.01);
        assert!(shrunk.as_counts.iter().all(|&(_, n)| n >= 1));
        shrunk.validate();
    }

    #[test]
    fn country_profiles_cover_all_rirs() {
        for rir in Rir::ALL {
            assert!(
                COUNTRY_PROFILES.iter().any(|c| c.rir == rir),
                "no country for {rir}"
            );
        }
        // Codes are unique.
        let mut codes: Vec<&str> = COUNTRY_PROFILES.iter().map(|c| c.code).collect();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), COUNTRY_PROFILES.len());
        // Probabilities are sane.
        for c in COUNTRY_PROFILES {
            assert!((0.0..=1.0).contains(&c.icmp_base));
            assert!((0.0..=1.0).contains(&c.nat_rate));
            assert!(c.weight > 0);
        }
    }

    #[test]
    fn institutional_kinds() {
        assert!(AsKind::University.institutional());
        assert!(AsKind::Enterprise.institutional());
        assert!(!AsKind::ResidentialIsp.institutional());
        assert!(!AsKind::CellularIsp.institutional());
    }
}
