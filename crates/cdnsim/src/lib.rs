//! # ipactive-cdnsim
//!
//! The synthetic-Internet + CDN-observatory substrate.
//!
//! The paper's raw material — a year of per-address request logs from
//! a global CDN — is proprietary. This crate builds its structural
//! equivalent: a deterministic generative model of Autonomous Systems,
//! address blocks, assignment policies (static, round-robin pools,
//! DHCP with short and long leases, carrier-grade-NAT gateways,
//! crawler farms, server/router infrastructure) and subscriber
//! behaviour (weekday/weekend rhythms, subscriber churn, heavy-tailed
//! traffic, multi-device User-Agent populations). The model *implements
//! the operational practices* whose fingerprints the paper reads off
//! its data, so every analysis in `ipactive-core` recovers those
//! fingerprints from generated datasets rather than having them
//! hard-coded.
//!
//! Entry point: [`Universe::generate`] with a [`UniverseConfig`], then
//! [`Universe::build_daily`] / [`Universe::build_weekly`] for the two
//! paper datasets; the universe also exposes the RIR delegation
//! database, reverse-DNS table, BGP timeline, and implements
//! [`ipactive_probe::ProbeTarget`] for the scanners.
//!
//! ```
//! use ipactive_cdnsim::{Universe, UniverseConfig};
//!
//! let uni = Universe::generate(UniverseConfig::tiny(42));
//! let daily = uni.build_daily();
//! assert!(daily.total_active() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod config;
mod growth;
mod pipeline;
mod policy;
pub mod requests;
mod supervisor;
pub mod ua;
mod universe;

pub use behavior::SeedMixer;
pub use config::{AsKind, CountryProfile, UniverseConfig, COUNTRY_PROFILES};
pub use growth::{monthly_counts, GrowthModel};
pub use pipeline::{
    collect_daily, collect_daily_sharded, collect_daily_sharded_obs, collect_from_store,
    collect_from_store_checked, collect_weekly, collect_weekly_from_store,
    collect_weekly_sharded, collect_weekly_sharded_obs, emit_daily_logs, emit_daily_logs_packed,
    emit_daily_shards, emit_weekly_logs, emit_weekly_shards, parallel_pipeline,
    parallel_pipeline_obs, parallel_pipeline_weekly, parallel_pipeline_weekly_obs, persist_daily,
    persist_daily_atomic, shard_of, slot_batches_from_buffers, validate_topology, CollectorStats,
    PipelineReport, PipelineStats, DAILY_PREFIX, WEEKLY_PREFIX,
};
pub use supervisor::{
    emit_daily_shard_buffers, emit_weekly_shard_buffers, recover_daily_from_store,
    supervised_collect_daily, supervised_collect_daily_obs, supervised_collect_weekly,
    supervised_collect_weekly_obs, BufferOutcome, DeadLetter, Fault, FaultKind, FaultPlan,
    RetryPolicy, ShardOutcome, SupervisedReport, SUPERVISOR_DAILY_PREFIX,
    SUPERVISOR_WEEKLY_PREFIX,
};
pub use policy::{AssignmentPolicy, DayEntry, HostPopulation, PolicySim};
pub use universe::{AsEntry, BlockEntry, PopulationSummary, Universe};
