//! The log collection pipeline: edge serialization → framed wire
//! format → collector aggregation.
//!
//! Mirrors the paper's data path ("a log entry is created, which is
//! then processed and aggregated through a distributed data collection
//! framework", Section 3.2): edge workers serialize per-address daily
//! aggregates into the `ipactive-logfmt` framed stream; a collector
//! decodes and folds them into a [`DailyDataset`]. The pipeline and
//! the direct [`Universe::build_daily`] generator produce *identical*
//! datasets — a property the tests pin down — so analyses don't care
//! which path produced their input.

use crate::universe::Universe;
use ipactive_core::{DailyDataset, DailyDatasetBuilder};
use ipactive_logfmt::{FrameReader, FrameWriter, ReadMode, Record};
use parking_lot::Mutex;
use std::io::{self, Read, Write};

/// Counters from a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Records written by the edge side.
    pub records_written: u64,
    /// Records accepted by the collector.
    pub records_read: u64,
    /// Damaged frames skipped by the collector (tolerant mode).
    pub frames_skipped: u64,
    /// Bytes moved over the "wire".
    pub bytes: u64,
}

/// Serializes the universe's daily-window logs into `out`.
///
/// Records are emitted block-major (each block's days consecutively);
/// day indices are carried in every record, so the collector is
/// order-independent. Returns the number of records written.
pub fn emit_daily_logs<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    let mut writer = FrameWriter::new(out);
    let cfg = universe.config();
    for e in &universe.blocks {
        let sims = universe.block_sims(e);
        for d in 0..cfg.daily_days {
            let t = cfg.daily_offset + d;
            for entry in universe.entries_on(e, &sims, t) {
                let addr = e.block.addr(entry.host);
                writer.write(&Record::Hits { day: d as u16, addr, hits: entry.hits as u64 })?;
                for ua in universe.ua_samples_for(e, t, &entry) {
                    writer.write(&Record::UaSample { day: d as u16, addr, ua_hash: ua })?;
                }
            }
        }
    }
    let written = writer.frames_written() + 1; // +1 for the Finish frame
    writer.finish()?;
    Ok(written)
}

/// Like [`emit_daily_logs`], but batches each block's day into one
/// packed [`Record::BlockDay`] frame instead of per-address records
/// (UA samples stay per-record). Collectors decode both forms into
/// identical datasets; the packed stream is several times smaller —
/// see the `ablation_packed_records` benchmark.
pub fn emit_daily_logs_packed<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    use ipactive_logfmt::BlockDay;
    let mut writer = FrameWriter::new(out);
    let cfg = universe.config();
    for e in &universe.blocks {
        let sims = universe.block_sims(e);
        for d in 0..cfg.daily_days {
            let t = cfg.daily_offset + d;
            let mut entries: Vec<(u8, u64)> = Vec::new();
            for entry in universe.entries_on(e, &sims, t) {
                entries.push((entry.host, entry.hits as u64));
                for ua in universe.ua_samples_for(e, t, &entry) {
                    writer.write(&Record::UaSample {
                        day: d as u16,
                        addr: e.block.addr(entry.host),
                        ua_hash: ua,
                    })?;
                }
            }
            if entries.is_empty() {
                continue;
            }
            entries.sort_unstable_by_key(|&(h, _)| h);
            writer.write(&Record::BlockDay(Box::new(BlockDay::new(
                d as u16,
                e.block,
                entries,
            ))))?;
        }
    }
    let written = writer.frames_written() + 1;
    writer.finish()?;
    Ok(written)
}

/// Persists the universe's daily logs into a [`ipactive_logfmt::LogStore`] directory,
/// one packed file per observation day — the durable variant of
/// [`emit_daily_logs_packed`].
pub fn persist_daily(
    universe: &Universe,
    store: &ipactive_logfmt::LogStore,
) -> Result<(), ipactive_logfmt::StoreError> {
    use ipactive_logfmt::BlockDay;
    let cfg = universe.config();
    for d in 0..cfg.daily_days {
        let t = cfg.daily_offset + d;
        let mut records = Vec::new();
        for e in &universe.blocks {
            let sims = universe.block_sims(e);
            let mut entries: Vec<(u8, u64)> = Vec::new();
            for entry in universe.entries_on(e, &sims, t) {
                entries.push((entry.host, entry.hits as u64));
                for ua in universe.ua_samples_for(e, t, &entry) {
                    records.push(Record::UaSample {
                        day: d as u16,
                        addr: e.block.addr(entry.host),
                        ua_hash: ua,
                    });
                }
            }
            if !entries.is_empty() {
                entries.sort_unstable_by_key(|&(h, _)| h);
                records.push(Record::BlockDay(Box::new(BlockDay::new(
                    d as u16,
                    e.block,
                    entries,
                ))));
            }
        }
        store.write_day(d as u16, &records)?;
    }
    Ok(())
}

/// Rebuilds a [`DailyDataset`] from a [`ipactive_logfmt::LogStore`] directory,
/// tolerating damaged days (lost frames are counted, never decoded
/// wrongly).
pub fn collect_from_store(
    store: &ipactive_logfmt::LogStore,
    num_days: usize,
) -> Result<(DailyDataset, PipelineStats), ipactive_logfmt::StoreError> {
    let mut builder = DailyDatasetBuilder::new(num_days);
    let mut stats = PipelineStats::default();
    stats.frames_skipped = store.for_each_day(|_, records| {
        for record in records {
            stats.records_read += 1;
            match record {
                Record::Hits { day, addr, hits } => {
                    builder.record_hits(day as usize, addr, hits)
                }
                Record::UaSample { day, addr, ua_hash } => {
                    builder.record_ua(day as usize, addr, ua_hash)
                }
                Record::BlockDay(bd) => {
                    for rec in bd.unpack() {
                        if let Record::Hits { day, addr, hits } = rec {
                            builder.record_hits(day as usize, addr, hits);
                        }
                    }
                }
                Record::DayStart { .. } | Record::Finish => {}
            }
        }
    })?;
    Ok((builder.finish(), stats))
}

/// Serializes the universe's *weekly* view into `out`: one
/// [`Record::Hits`] per active `(address, week)` whose `day` field
/// carries the week index (the framing layer is cadence-agnostic;
/// [`collect_weekly`] interprets it back). Returns records written.
pub fn emit_weekly_logs<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    let mut writer = FrameWriter::new(out);
    let cfg = universe.config();
    for e in &universe.blocks {
        let sims = universe.block_sims(e);
        for w in 0..cfg.weeks {
            let mut acc = [0u64; 256];
            for dow in 0..7usize {
                for entry in universe.entries_on(e, &sims, w * 7 + dow) {
                    acc[entry.host as usize] += entry.hits as u64;
                }
            }
            for (host, &hits) in acc.iter().enumerate() {
                if hits > 0 {
                    writer.write(&Record::Hits {
                        day: w as u16,
                        addr: e.block.addr(host as u8),
                        hits,
                    })?;
                }
            }
        }
    }
    let written = writer.frames_written() + 1;
    writer.finish()?;
    Ok(written)
}

/// Decodes a weekly log stream (as from [`emit_weekly_logs`]) into a
/// [`ipactive_core::WeeklyDataset`].
pub fn collect_weekly<R: Read>(
    input: R,
    num_weeks: usize,
) -> Result<(ipactive_core::WeeklyDataset, PipelineStats), ipactive_logfmt::FrameError> {
    let mut reader = FrameReader::new(input, ReadMode::Tolerant);
    let mut builder = ipactive_core::WeeklyDatasetBuilder::new(num_weeks);
    let mut stats = PipelineStats::default();
    while let Some(record) = reader.read()? {
        stats.records_read += 1;
        if let Record::Hits { day, addr, hits } = record {
            builder.record_week(day as usize, addr, hits);
        }
    }
    stats.frames_skipped = reader.skipped();
    Ok((builder.finish(), stats))
}

/// Decodes a framed log stream into a [`DailyDataset`].
///
/// Runs in tolerant mode: damaged frames are counted and skipped, not
/// fatal — matching how a production collector survives partial edge
/// failures.
pub fn collect_daily<R: Read>(
    input: R,
    num_days: usize,
) -> Result<(DailyDataset, PipelineStats), ipactive_logfmt::FrameError> {
    let mut reader = FrameReader::new(input, ReadMode::Tolerant);
    let mut builder = DailyDatasetBuilder::new(num_days);
    let mut stats = PipelineStats::default();
    while let Some(record) = reader.read()? {
        stats.records_read += 1;
        match record {
            Record::Hits { day, addr, hits } => builder.record_hits(day as usize, addr, hits),
            Record::UaSample { day, addr, ua_hash } => {
                builder.record_ua(day as usize, addr, ua_hash)
            }
            Record::BlockDay(bd) => {
                for rec in bd.unpack() {
                    if let Record::Hits { day, addr, hits } = rec {
                        builder.record_hits(day as usize, addr, hits);
                    }
                }
            }
            Record::DayStart { .. } | Record::Finish => {}
        }
    }
    stats.frames_skipped = reader.skipped();
    Ok((builder.finish(), stats))
}

/// Runs the full pipeline with `workers` edge threads feeding one
/// collector over a bounded channel, using the framed wire format for
/// every hop — the multi-threaded equivalent of
/// [`emit_daily_logs`] + [`collect_daily`].
pub fn parallel_pipeline(
    universe: &Universe,
    workers: usize,
) -> (DailyDataset, PipelineStats) {
    assert!(workers >= 1);
    let cfg = universe.config();
    let num_days = cfg.daily_days;
    let stats = Mutex::new(PipelineStats::default());
    let (tx, rx) = crossbeam::channel::bounded::<Vec<u8>>(workers * 2);

    let chunk = universe.blocks.len().div_ceil(workers).max(1);
    let dataset = crossbeam::scope(|scope| {
        // Edge workers: serialize their block shard into one buffer.
        for shard in universe.blocks.chunks(chunk) {
            let tx = tx.clone();
            let stats = &stats;
            scope.spawn(move |_| {
                let mut buf = Vec::new();
                {
                    let mut writer = FrameWriter::new(&mut buf);
                    for e in shard {
                        let sims = universe.block_sims(e);
                        for d in 0..num_days {
                            let t = universe.config().daily_offset + d;
                            for entry in universe.entries_on(e, &sims, t) {
                                let addr = e.block.addr(entry.host);
                                writer
                                    .write(&Record::Hits {
                                        day: d as u16,
                                        addr,
                                        hits: entry.hits as u64,
                                    })
                                    .expect("vec write");
                                for ua in universe.ua_samples_for(e, t, &entry) {
                                    writer
                                        .write(&Record::UaSample {
                                            day: d as u16,
                                            addr,
                                            ua_hash: ua,
                                        })
                                        .expect("vec write");
                                    }
                            }
                        }
                    }
                    let mut s = stats.lock();
                    s.records_written += writer.frames_written();
                    writer.finish().expect("vec flush");
                }
                let mut s = stats.lock();
                s.bytes += buf.len() as u64;
                tx.send(buf).expect("collector alive");
            });
        }
        drop(tx);

        // Collector: decode each shard stream, fold into one builder.
        let mut builder = DailyDatasetBuilder::new(num_days);
        for buf in rx.iter() {
            let mut reader = FrameReader::new(&buf[..], ReadMode::Tolerant);
            while let Some(record) = reader.read().expect("clean in-memory stream") {
                let mut s = stats.lock();
                s.records_read += 1;
                drop(s);
                match record {
                    Record::Hits { day, addr, hits } => {
                        builder.record_hits(day as usize, addr, hits)
                    }
                    Record::UaSample { day, addr, ua_hash } => {
                        builder.record_ua(day as usize, addr, ua_hash)
                    }
                    Record::BlockDay(bd) => {
                        for rec in bd.unpack() {
                            if let Record::Hits { day, addr, hits } = rec {
                                builder.record_hits(day as usize, addr, hits);
                            }
                        }
                    }
                    Record::DayStart { .. } | Record::Finish => {}
                }
            }
            let mut s = stats.lock();
            s.frames_skipped += reader.skipped();
        }
        builder.finish()
    })
    .expect("pipeline thread panicked");

    (dataset, stats.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;

    fn universe() -> Universe {
        Universe::generate(UniverseConfig::tiny(0x100))
    }

    fn assert_datasets_equal(a: &DailyDataset, b: &DailyDataset) {
        assert_eq!(a.num_days, b.num_days);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.rows, y.rows, "activity matrix mismatch in {}", x.block);
            assert_eq!(x.total_hits, y.total_hits);
            assert_eq!(x.ua_samples, y.ua_samples);
            assert_eq!(x.ua_unique, y.ua_unique);
            assert_eq!(x.ip_traffic, y.ip_traffic);
        }
    }

    #[test]
    fn wire_roundtrip_equals_direct_build() {
        let u = universe();
        let direct = u.build_daily();
        let mut buf = Vec::new();
        let written = emit_daily_logs(&u, &mut buf).unwrap();
        assert!(written > 0);
        let (collected, stats) = collect_daily(&buf[..], u.config().daily_days).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_eq!(stats.records_read + 1, written); // Finish frame not counted as read
        assert_datasets_equal(&direct, &collected);
    }

    #[test]
    fn parallel_pipeline_equals_direct_build() {
        let u = universe();
        let direct = u.build_daily();
        let (collected, stats) = parallel_pipeline(&u, 4);
        assert_datasets_equal(&direct, &collected);
        assert_eq!(stats.records_written, stats.records_read);
        assert!(stats.bytes > 0);
        assert_eq!(stats.frames_skipped, 0);
    }

    #[test]
    fn packed_stream_collects_identically() {
        let u = universe();
        let mut flat = Vec::new();
        let mut packed = Vec::new();
        emit_daily_logs(&u, &mut flat).unwrap();
        emit_daily_logs_packed(&u, &mut packed).unwrap();
        assert!(
            packed.len() < flat.len(),
            "packed {} must beat flat {}",
            packed.len(),
            flat.len()
        );
        let (a, _) = collect_daily(&flat[..], u.config().daily_days).unwrap();
        let (b, _) = collect_daily(&packed[..], u.config().daily_days).unwrap();
        assert_datasets_equal(&a, &b);
    }

    #[test]
    fn log_store_roundtrip_equals_direct_build() {
        let u = universe();
        let dir = std::env::temp_dir().join(format!(
            "ipactive-pipeline-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ipactive_logfmt::LogStore::open(&dir).unwrap();
        persist_daily(&u, &store).unwrap();
        assert_eq!(store.days().unwrap().len(), u.config().daily_days);
        let (ds, stats) = collect_from_store(&store, u.config().daily_days).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_datasets_equal(&u.build_daily(), &ds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn weekly_wire_roundtrip_equals_direct_build() {
        let u = universe();
        let direct = u.build_weekly();
        let mut buf = Vec::new();
        emit_weekly_logs(&u, &mut buf).unwrap();
        let (collected, stats) = collect_weekly(&buf[..], u.config().weeks).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_eq!(collected.num_weeks, direct.num_weeks);
        assert_eq!(collected.blocks, direct.blocks, "weekly activity bits differ");
        // Per-week hit multisets match up to ordering.
        for (a, b) in collected.week_hits.iter().zip(direct.week_hits.iter()) {
            let mut a = a.clone();
            let mut b = b.clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn collector_survives_corruption() {
        let u = universe();
        let mut buf = Vec::new();
        emit_daily_logs(&u, &mut buf).unwrap();
        // Corrupt a payload byte early in the stream.
        let pos = buf.len() / 3 + 2;
        buf[pos] ^= 0x40;
        let result = collect_daily(&buf[..], u.config().daily_days);
        if let Ok((ds, stats)) = result {
            // Tolerant mode: we may lose records but never fabricate.
            assert!(stats.frames_skipped >= 1 || ds.total_active() > 0);
        }
        // (A LostSync error is also acceptable — the point is no panic
        // and no silent wrong data.)
    }
}
