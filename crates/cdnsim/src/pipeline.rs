//! The log collection pipeline: edge serialization → framed wire
//! format → collector aggregation.
//!
//! Mirrors the paper's data path ("a log entry is created, which is
//! then processed and aggregated through a distributed data collection
//! framework", Section 3.2): edge workers serialize per-address daily
//! aggregates into the `ipactive-logfmt` framed stream; collectors
//! decode and fold them into a [`DailyDataset`]. The pipeline and the
//! direct [`Universe::build_daily`] generator produce *identical*
//! datasets — a property the tests pin down — so analyses don't care
//! which path produced their input.
//!
//! # Sharded topology
//!
//! [`parallel_pipeline`] runs `workers × collectors` threads: each
//! edge worker serializes its slice of the universe into one buffer
//! *per collector*, routing every `/24` block to the collector that
//! [`shard_of`] hashes it to. Each collector folds its own partial
//! [`DailyDatasetBuilder`]; the partials are merged (builder-level
//! merge is commutative and associative) and finished once. Because
//! blocks are partitioned by hash, no two collectors ever see the
//! same block — the merge is exact, and the result is byte-identical
//! to the single-collector and direct builds regardless of worker
//! count, collector count, or arrival order.

use crate::universe::{BlockEntry, Universe};
use ipactive_core::{DailyDataset, DailyDatasetBuilder, WeeklyDataset, WeeklyDatasetBuilder};
use ipactive_logfmt::{FrameReader, FrameWriter, ReadMode, Record};
use ipactive_net::Block24;
use ipactive_obs::{self as obs, Event, EventKind, Registry};
use std::io::{self, Read, Write};
use std::time::{Duration, Instant};

/// Aggregate counters from a pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Records written by the edge side.
    pub records_written: u64,
    /// Records accepted by the collector.
    pub records_read: u64,
    /// Damaged frames skipped by the collector (tolerant mode).
    pub frames_skipped: u64,
    /// Times a collector lost framing and scanned for a new sync byte.
    pub resyncs: u64,
    /// Bytes moved over the "wire".
    pub bytes: u64,
}

/// Per-collector counters from a sharded pipeline run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollectorStats {
    /// Records this collector decoded and folded.
    pub records_read: u64,
    /// Damaged frames this collector skipped (tolerant mode).
    pub frames_skipped: u64,
    /// Times this collector lost framing and had to scan for a new
    /// sync byte (distinct from `frames_skipped`: a resync means the
    /// stream position itself was in doubt).
    pub resyncs: u64,
    /// Unrecoverable decode errors (stream abandoned mid-shard).
    pub decode_errors: u64,
    /// Shard buffers this collector received.
    pub buffers: u64,
    /// Bytes routed to this collector.
    pub bytes: u64,
    /// Wall-clock time this collector spent decoding and folding.
    pub elapsed: Duration,
}

/// Throughput in records per second, `0.0` when no time elapsed —
/// the single definition shared by every report type, delegated to
/// [`ipactive_obs::rate`] so the observability plane and the pipeline
/// reports can never disagree on the degenerate cases.
pub(crate) fn rate(records: u64, elapsed: Duration) -> f64 {
    obs::rate(records, elapsed)
}

impl CollectorStats {
    /// Decode throughput of this collector, in records per second.
    pub fn records_per_sec(&self) -> f64 {
        rate(self.records_read, self.elapsed)
    }

    /// Rebuilds one collector's view from a registry snapshot — the
    /// report structs are *views* over the metrics plane, not a second
    /// accounting path. `prefix` is the run's metric prefix (for
    /// example `pipeline.daily`); `shard` selects the
    /// `<prefix>.shard.<shard>.*` counter family and the
    /// `<prefix>.shard.<shard>` span.
    pub fn from_snapshot(snap: &obs::Snapshot, prefix: &str, shard: usize) -> CollectorStats {
        CollectorStats {
            records_read: snap.counter(&shard_metric(prefix, shard, "records")),
            frames_skipped: snap.counter(&shard_metric(prefix, shard, "frames_skipped")),
            resyncs: snap.counter(&shard_metric(prefix, shard, "resyncs")),
            decode_errors: snap.counter(&shard_metric(prefix, shard, "decode_errors")),
            buffers: snap.counter(&shard_metric(prefix, shard, "buffers")),
            bytes: snap.counter(&shard_metric(prefix, shard, "bytes")),
            elapsed: Duration::from_nanos(snap.span_total_ns(&collector_span_path(prefix, shard))),
        }
    }
}

/// Metric prefix for daily-cadence pipeline runs. One registry can
/// carry one daily and one weekly run side by side without the counter
/// families colliding; reports read cumulative counters under their
/// prefix, so reuse a fresh registry (or a fresh prefix) per run.
pub const DAILY_PREFIX: &str = "pipeline.daily";

/// Metric prefix for weekly-cadence pipeline runs.
pub const WEEKLY_PREFIX: &str = "pipeline.weekly";

/// Metric name for one per-shard counter: `<prefix>.shard.<i>.<field>`.
fn shard_metric(prefix: &str, shard: usize, field: &str) -> String {
    format!("{prefix}.shard.{shard}.{field}")
}

/// Span path a collector thread records under. Collector threads are
/// spawned fresh, so the span roots at top level regardless of what
/// the caller has open.
pub(crate) fn collector_span_path(prefix: &str, shard: usize) -> String {
    format!("{prefix}.shard.{shard}")
}

/// Pre-fetched counter handles for one collector shard. Handles are
/// resolved once per shard (registry lock taken at setup, not in the
/// decode loop); the drain paths accumulate into locals and flush once
/// per buffer, so the hot loop costs exactly what the old `+=` fields
/// did.
pub(crate) struct ShardMeters {
    registry: Registry,
    shard: u32,
    records: obs::Counter,
    frames_skipped: obs::Counter,
    resyncs: obs::Counter,
    decode_errors: obs::Counter,
    buffers: obs::Counter,
    bytes: obs::Counter,
}

impl ShardMeters {
    pub(crate) fn new(registry: &Registry, prefix: &str, shard: usize) -> ShardMeters {
        ShardMeters {
            registry: registry.clone(),
            shard: shard as u32,
            records: registry.counter(shard_metric(prefix, shard, "records")),
            frames_skipped: registry.counter(shard_metric(prefix, shard, "frames_skipped")),
            resyncs: registry.counter(shard_metric(prefix, shard, "resyncs")),
            decode_errors: registry.counter(shard_metric(prefix, shard, "decode_errors")),
            buffers: registry.counter(shard_metric(prefix, shard, "buffers")),
            bytes: registry.counter(shard_metric(prefix, shard, "bytes")),
        }
    }

    /// Flushes one drained buffer's tallies into the registry, emitting
    /// journal events for the noteworthy conditions (resyncs mean the
    /// stream position itself was in doubt; a decode error means the
    /// rest of the buffer was abandoned).
    pub(crate) fn flush_buffer(
        &self,
        buf_len: usize,
        records: u64,
        skipped: u64,
        resyncs: u64,
        decode_error: bool,
    ) {
        self.buffers.inc();
        self.bytes.add(buf_len as u64);
        self.records.add(records);
        if skipped > 0 {
            self.frames_skipped.add(skipped);
        }
        if resyncs > 0 {
            self.resyncs.add(resyncs);
            self.registry.emit(
                Event::new(EventKind::Resync)
                    .shard(self.shard)
                    .detail(format!("{resyncs} resync scans in one shard buffer")),
            );
        }
        if decode_error {
            self.decode_errors.inc();
        }
    }

    /// Counts one buffer's arrival (delivery and payload size) without
    /// touching decode outcomes — the supervisor charges arrival and
    /// decode separately because a buffer may take several attempts.
    pub(crate) fn count_buffer(&self, buf_len: usize) {
        self.buffers.inc();
        self.bytes.add(buf_len as u64);
    }

    /// Credits a fully clean decode's records.
    pub(crate) fn add_clean_records(&self, records: u64) {
        self.records.add(records);
    }

    /// Credits a terminal salvage decode: surviving records plus the
    /// damage tallies, with the same resync journal event the pipeline
    /// drain emits.
    pub(crate) fn add_salvage(&self, records: u64, skipped: u64, resyncs: u64, decode_error: bool) {
        self.records.add(records);
        if skipped > 0 {
            self.frames_skipped.add(skipped);
        }
        if resyncs > 0 {
            self.resyncs.add(resyncs);
            self.registry.emit(
                Event::new(EventKind::Resync)
                    .shard(self.shard)
                    .detail(format!("{resyncs} resync scans in one shard buffer")),
            );
        }
        if decode_error {
            self.decode_errors.inc();
        }
    }

    /// The registry these meters write into.
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }
}

/// Full accounting of a sharded pipeline run: aggregate totals plus
/// one [`CollectorStats`] per collector, in shard order.
#[derive(Debug, Clone, Default)]
pub struct PipelineReport {
    /// Aggregate counters (write side + sum over collectors).
    pub totals: PipelineStats,
    /// Per-collector counters, indexed by shard.
    pub per_collector: Vec<CollectorStats>,
    /// Edge worker threads the run used.
    pub workers: usize,
    /// End-to-end wall-clock time of the run.
    pub elapsed: Duration,
}

impl PipelineReport {
    /// Number of collector shards the run used.
    pub fn collectors(&self) -> usize {
        self.per_collector.len()
    }

    /// End-to-end throughput, in records accepted per second.
    pub fn records_per_sec(&self) -> f64 {
        rate(self.totals.records_read, self.elapsed)
    }
}

/// Maps a `/24` block to its collector shard. A SplitMix64 finalizer
/// disperses the (often sequential) block ids so shards stay balanced
/// for any universe layout; every edge worker uses the same function,
/// which is what guarantees collectors see disjoint block sets.
///
/// # Panics
/// If `collectors == 0` — there is no shard to map to. Pipeline entry
/// points validate topology up front (see [`validate_topology`]) so
/// this fires only on direct misuse.
pub fn shard_of(block: Block24, collectors: usize) -> usize {
    assert!(collectors >= 1, "shard_of: collectors must be >= 1");
    let mut x = block.id() as u64;
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x % collectors as u64) as usize
}

/// Validates a pipeline topology, returning an `InvalidInput` error if
/// either side is zero. Fallible entry points call this instead of
/// asserting, so a mis-configured run fails with a proper error rather
/// than a release-mode modulo-by-zero deep inside [`shard_of`].
pub fn validate_topology(workers: usize, collectors: usize) -> io::Result<()> {
    if workers == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "pipeline topology requires at least one worker",
        ));
    }
    if collectors == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "pipeline topology requires at least one collector",
        ));
    }
    Ok(())
}

/// Folds one decoded record into a daily builder (ignoring cadence
/// markers) — the single definition every collector path shares.
pub(crate) fn fold_daily(record: Record, builder: &mut DailyDatasetBuilder) {
    match record {
        Record::Hits { day, addr, hits } => builder.record_hits(day as usize, addr, hits),
        Record::UaSample { day, addr, ua_hash } => builder.record_ua(day as usize, addr, ua_hash),
        Record::BlockDay(bd) => {
            for rec in bd.unpack() {
                if let Record::Hits { day, addr, hits } = rec {
                    builder.record_hits(day as usize, addr, hits);
                }
            }
        }
        Record::DayStart { .. } | Record::Finish => {}
    }
}

/// Serializes one block's daily-window records into `writer`.
pub(crate) fn emit_block_daily<W: Write>(
    universe: &Universe,
    e: &BlockEntry,
    writer: &mut FrameWriter<W>,
) -> io::Result<()> {
    let cfg = universe.config();
    let sims = universe.block_sims(e);
    for d in 0..cfg.daily_days {
        let t = cfg.daily_offset + d;
        for entry in universe.entries_on(e, &sims, t) {
            let addr = e.block.addr(entry.host);
            writer.write(&Record::Hits { day: d as u16, addr, hits: entry.hits as u64 })?;
            for ua in universe.ua_samples_for(e, t, &entry) {
                writer.write(&Record::UaSample { day: d as u16, addr, ua_hash: ua })?;
            }
        }
    }
    Ok(())
}

/// Serializes one block's weekly totals into `writer`: one
/// [`Record::Hits`] per active `(address, week)` whose `day` field
/// carries the week index.
pub(crate) fn emit_block_weekly<W: Write>(
    universe: &Universe,
    e: &BlockEntry,
    writer: &mut FrameWriter<W>,
) -> io::Result<()> {
    let cfg = universe.config();
    let sims = universe.block_sims(e);
    for w in 0..cfg.weeks {
        let mut acc = [0u64; 256];
        for dow in 0..7usize {
            for entry in universe.entries_on(e, &sims, w * 7 + dow) {
                acc[entry.host as usize] += entry.hits as u64;
            }
        }
        for (host, &hits) in acc.iter().enumerate() {
            if hits > 0 {
                writer.write(&Record::Hits {
                    day: w as u16,
                    addr: e.block.addr(host as u8),
                    hits,
                })?;
            }
        }
    }
    Ok(())
}

/// Serializes the universe's daily-window logs into `out`.
///
/// Records are emitted block-major (each block's days consecutively);
/// day indices are carried in every record, so the collector is
/// order-independent. Returns the number of records written.
pub fn emit_daily_logs<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    let mut writer = FrameWriter::new(out);
    for e in &universe.blocks {
        emit_block_daily(universe, e, &mut writer)?;
    }
    let written = writer.frames_written() + 1; // +1 for the Finish frame
    writer.finish()?;
    Ok(written)
}

/// Like [`emit_daily_logs`], but batches each block's day into one
/// packed [`Record::BlockDay`] frame instead of per-address records
/// (UA samples stay per-record). Collectors decode both forms into
/// identical datasets; the packed stream is several times smaller —
/// see the `ablation_packed_records` benchmark.
pub fn emit_daily_logs_packed<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    use ipactive_logfmt::BlockDay;
    let mut writer = FrameWriter::new(out);
    let cfg = universe.config();
    for e in &universe.blocks {
        let sims = universe.block_sims(e);
        for d in 0..cfg.daily_days {
            let t = cfg.daily_offset + d;
            let mut entries: Vec<(u8, u64)> = Vec::new();
            for entry in universe.entries_on(e, &sims, t) {
                entries.push((entry.host, entry.hits as u64));
                for ua in universe.ua_samples_for(e, t, &entry) {
                    writer.write(&Record::UaSample {
                        day: d as u16,
                        addr: e.block.addr(entry.host),
                        ua_hash: ua,
                    })?;
                }
            }
            if entries.is_empty() {
                continue;
            }
            entries.sort_unstable_by_key(|&(h, _)| h);
            writer.write(&Record::BlockDay(Box::new(BlockDay::new(
                d as u16,
                e.block,
                entries,
            ))))?;
        }
    }
    let written = writer.frames_written() + 1;
    writer.finish()?;
    Ok(written)
}

/// Builds the record stream for one observation day of the universe —
/// the unit both store persist paths write.
fn daily_records(universe: &Universe, d: usize) -> Vec<Record> {
    use ipactive_logfmt::BlockDay;
    let cfg = universe.config();
    let t = cfg.daily_offset + d;
    let mut records = Vec::new();
    for e in &universe.blocks {
        let sims = universe.block_sims(e);
        let mut entries: Vec<(u8, u64)> = Vec::new();
        for entry in universe.entries_on(e, &sims, t) {
            entries.push((entry.host, entry.hits as u64));
            for ua in universe.ua_samples_for(e, t, &entry) {
                records.push(Record::UaSample {
                    day: d as u16,
                    addr: e.block.addr(entry.host),
                    ua_hash: ua,
                });
            }
        }
        if !entries.is_empty() {
            entries.sort_unstable_by_key(|&(h, _)| h);
            records.push(Record::BlockDay(Box::new(BlockDay::new(
                d as u16,
                e.block,
                entries,
            ))));
        }
    }
    records
}

/// Persists the universe's daily logs into a [`ipactive_logfmt::LogStore`] directory,
/// one packed file per observation day — the durable variant of
/// [`emit_daily_logs_packed`]. Each day commits independently; a crash
/// can leave a prefix of the days written.
pub fn persist_daily<F: ipactive_logfmt::Fs>(
    universe: &Universe,
    store: &ipactive_logfmt::LogStore<F>,
) -> Result<(), ipactive_logfmt::StoreError> {
    let cfg = universe.config();
    for d in 0..cfg.daily_days {
        store.write_day(d as u16, &daily_records(universe, d))?;
    }
    Ok(())
}

/// Persists the universe's daily logs as one manifest-journaled batch
/// commit: after a crash at any point, a reader sees either *all* of
/// the run's days or none of them — never a prefix. Returns the
/// manifest generation that published the batch.
pub fn persist_daily_atomic<F: ipactive_logfmt::Fs>(
    universe: &Universe,
    store: &mut ipactive_logfmt::LogStore<F>,
) -> Result<u64, ipactive_logfmt::StoreError> {
    let cfg = universe.config();
    let batch: Vec<(u16, Vec<Record>)> =
        (0..cfg.daily_days).map(|d| (d as u16, daily_records(universe, d))).collect();
    store.commit_days(&batch)
}

/// Rebuilds a [`DailyDataset`] from a [`ipactive_logfmt::LogStore`] directory,
/// tolerating damaged days (lost frames are counted, never decoded
/// wrongly).
pub fn collect_from_store<F: ipactive_logfmt::Fs>(
    store: &ipactive_logfmt::LogStore<F>,
    num_days: usize,
) -> Result<(DailyDataset, PipelineStats), ipactive_logfmt::StoreError> {
    let mut builder = DailyDatasetBuilder::new(num_days);
    let mut stats = PipelineStats::default();
    stats.frames_skipped = store.for_each_day(|_, records| {
        for record in records {
            stats.records_read += 1;
            fold_daily(record, &mut builder);
        }
    })?;
    Ok((builder.finish(), stats))
}

/// Like [`collect_from_store`], but verifies the store first with an
/// [`ipactive_logfmt::fsck()`] dry run and attaches the resulting
/// per-day completeness grid to the dataset as a
/// [`Coverage`](ipactive_core::Coverage) — the store-granular analogue
/// of what the supervised collector reports per shard. A day the fsck
/// pass found damaged contributes its surviving-record fraction; a day
/// missing entirely (never written, or lost with its manifest entry)
/// contributes `0.0`.
///
/// Returns the dataset, the stats, and the fsck report it consumed.
pub fn collect_from_store_checked<F: ipactive_logfmt::Fs>(
    store: &ipactive_logfmt::LogStore<F>,
    num_days: usize,
) -> Result<(DailyDataset, PipelineStats, ipactive_logfmt::FsckReport), ipactive_logfmt::StoreError>
{
    let report = ipactive_logfmt::fsck(store.fs(), store.dir(), false)?;
    let mut fractions = vec![0.0f64; num_days];
    for (day, fraction) in report.day_fractions() {
        if let Some(slot) = fractions.get_mut(usize::from(day)) {
            *slot = fraction;
        }
    }
    let coverage = ipactive_core::Coverage::from_slot_fractions(&fractions);
    let (dataset, stats) = collect_from_store(store, num_days)?;
    Ok((dataset.with_coverage(coverage), stats, report))
}

/// Rebuilds a [`WeeklyDataset`] from a [`ipactive_logfmt::LogStore`]
/// directory whose "days" are week indices — the weekly counterpart
/// of [`collect_from_store`], used by distributed workers that commit
/// both cadences into per-shard stores.
pub fn collect_weekly_from_store<F: ipactive_logfmt::Fs>(
    store: &ipactive_logfmt::LogStore<F>,
    num_weeks: usize,
) -> Result<(WeeklyDataset, PipelineStats), ipactive_logfmt::StoreError> {
    let mut builder = WeeklyDatasetBuilder::new(num_weeks);
    let mut stats = PipelineStats::default();
    stats.frames_skipped = store.for_each_day(|_, records| {
        for record in records {
            stats.records_read += 1;
            if let Record::Hits { day, addr, hits } = record {
                builder.record_week(day as usize, addr, hits);
            }
        }
    })?;
    Ok((builder.finish(), stats))
}

/// The slot (day or week index) a record belongs to, if it carries
/// payload. Cadence markers and stream terminators have none.
fn record_slot(record: &Record) -> Option<u16> {
    match record {
        Record::Hits { day, .. } | Record::UaSample { day, .. } => Some(*day),
        Record::BlockDay(bd) => Some(bd.day),
        Record::DayStart { .. } | Record::Finish => None,
    }
}

/// Decodes one shard's retained buffers (as produced by
/// [`emit_daily_shard_buffers`](crate::emit_daily_shard_buffers) /
/// [`emit_weekly_shard_buffers`](crate::emit_weekly_shard_buffers))
/// into per-slot record batches ready for
/// [`LogStore::commit_days`](ipactive_logfmt::LogStore::commit_days) —
/// the replay step of a distributed shard worker. Slots with no
/// records still appear in the batch (as empty days) so the manifest
/// commits the full window and store-level coverage can distinguish
/// "day observed, empty" from "day lost".
///
/// Decoding is tolerant: damaged frames are counted in the returned
/// stats, never folded. Batch order and content are a pure function
/// of the buffer bytes, so two replays of the same shard commit
/// byte-identical day files.
pub fn slot_batches_from_buffers(
    buffers: &[Vec<u8>],
    num_slots: usize,
) -> (Vec<(u16, Vec<Record>)>, PipelineStats) {
    let mut batches: Vec<(u16, Vec<Record>)> =
        (0..num_slots).map(|s| (s as u16, Vec::new())).collect();
    let mut stats = PipelineStats::default();
    for buf in buffers {
        let mut reader = FrameReader::new(&buf[..], ReadMode::Tolerant);
        loop {
            match reader.read() {
                Ok(Some(record)) => {
                    stats.records_read += 1;
                    match record_slot(&record) {
                        Some(slot) if usize::from(slot) < num_slots => {
                            batches[usize::from(slot)].1.push(record);
                        }
                        _ => {}
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // An unrecoverable stream: whatever was folded so
                    // far stands; the abandonment itself counts as a
                    // lost frame so stats never read clean.
                    stats.frames_skipped += 1;
                    break;
                }
            }
        }
        stats.frames_skipped += reader.skipped();
        stats.resyncs += reader.resyncs();
    }
    (batches, stats)
}

/// Serializes the universe's *weekly* view into `out` (the framing
/// layer is cadence-agnostic; [`collect_weekly`] interprets the `day`
/// field back as a week index). Returns records written.
pub fn emit_weekly_logs<W: Write>(universe: &Universe, out: W) -> io::Result<u64> {
    let mut writer = FrameWriter::new(out);
    for e in &universe.blocks {
        emit_block_weekly(universe, e, &mut writer)?;
    }
    let written = writer.frames_written() + 1;
    writer.finish()?;
    Ok(written)
}

/// Decodes a weekly log stream (as from [`emit_weekly_logs`]) into a
/// [`ipactive_core::WeeklyDataset`].
pub fn collect_weekly<R: Read>(
    input: R,
    num_weeks: usize,
) -> Result<(WeeklyDataset, PipelineStats), ipactive_logfmt::FrameError> {
    let mut reader = FrameReader::new(input, ReadMode::Tolerant);
    let mut builder = WeeklyDatasetBuilder::new(num_weeks);
    let mut stats = PipelineStats::default();
    while let Some(record) = reader.read()? {
        stats.records_read += 1;
        if let Record::Hits { day, addr, hits } = record {
            builder.record_week(day as usize, addr, hits);
        }
    }
    stats.frames_skipped = reader.skipped();
    stats.resyncs = reader.resyncs();
    Ok((builder.finish(), stats))
}

/// Decodes a framed log stream into a [`DailyDataset`].
///
/// Runs in tolerant mode: damaged frames are counted and skipped, not
/// fatal — matching how a production collector survives partial edge
/// failures.
pub fn collect_daily<R: Read>(
    input: R,
    num_days: usize,
) -> Result<(DailyDataset, PipelineStats), ipactive_logfmt::FrameError> {
    let mut reader = FrameReader::new(input, ReadMode::Tolerant);
    let mut builder = DailyDatasetBuilder::new(num_days);
    let mut stats = PipelineStats::default();
    while let Some(record) = reader.read()? {
        stats.records_read += 1;
        fold_daily(record, &mut builder);
    }
    stats.frames_skipped = reader.skipped();
    stats.resyncs = reader.resyncs();
    Ok((builder.finish(), stats))
}

/// Decodes one shard buffer into `builder`, never failing: damaged
/// frames are skipped, unrecoverable streams abandoned and counted.
/// Tallies accumulate in locals and flush into `meters` once at the
/// end, so the decode loop stays registry-free.
fn drain_shard_buffer(buf: &[u8], builder: &mut DailyDatasetBuilder, meters: &ShardMeters) {
    let mut records = 0u64;
    let mut decode_error = false;
    let mut reader = FrameReader::new(buf, ReadMode::Tolerant);
    loop {
        match reader.read() {
            Ok(Some(record)) => {
                records += 1;
                fold_daily(record, builder);
            }
            Ok(None) => break,
            Err(_) => {
                decode_error = true;
                break;
            }
        }
    }
    meters.flush_buffer(buf.len(), records, reader.skipped(), reader.resyncs(), decode_error);
}

/// Weekly counterpart of [`drain_shard_buffer`].
fn drain_shard_buffer_weekly(buf: &[u8], builder: &mut WeeklyDatasetBuilder, meters: &ShardMeters) {
    let mut records = 0u64;
    let mut decode_error = false;
    let mut reader = FrameReader::new(buf, ReadMode::Tolerant);
    loop {
        match reader.read() {
            Ok(Some(record)) => {
                records += 1;
                if let Record::Hits { day, addr, hits } = record {
                    builder.record_week(day as usize, addr, hits);
                }
            }
            Ok(None) => break,
            Err(_) => {
                decode_error = true;
                break;
            }
        }
    }
    meters.flush_buffer(buf.len(), records, reader.skipped(), reader.resyncs(), decode_error);
}

/// Assembles the final report as a *view over a registry snapshot*:
/// per-collector stats come from the `<prefix>.shard.<i>.*` counter
/// families and the collector spans; totals are sums over those plus
/// the write-side `<prefix>.records_written` counter. There is no
/// second accounting path — whatever the metrics say *is* the report.
pub(crate) fn assemble_report(
    registry: &Registry,
    prefix: &str,
    collectors: usize,
    workers: usize,
    elapsed: Duration,
) -> PipelineReport {
    let snap = registry.snapshot(obs::SnapshotMode::Timed);
    let per_collector: Vec<CollectorStats> =
        (0..collectors).map(|i| CollectorStats::from_snapshot(&snap, prefix, i)).collect();
    let mut totals = PipelineStats {
        records_written: snap.counter(&format!("{prefix}.records_written")),
        ..PipelineStats::default()
    };
    for s in &per_collector {
        totals.records_read += s.records_read;
        totals.frames_skipped += s.frames_skipped;
        totals.resyncs += s.resyncs;
        totals.bytes += s.bytes;
    }
    PipelineReport { totals, per_collector, workers, elapsed }
}

/// Runs the full sharded pipeline: `workers` edge threads serialize
/// block slices of the universe, routing each `/24` block's frames to
/// one of `collectors` collector threads over bounded channels (see
/// [`shard_of`]); each collector folds a partial builder and the
/// partials merge into one [`DailyDataset`].
///
/// The output equals [`Universe::build_daily`] for *any* `(workers,
/// collectors)` — the differential suite in `tests/end_to_end.rs`
/// pins this grid-wide.
pub fn parallel_pipeline(
    universe: &Universe,
    workers: usize,
    collectors: usize,
) -> (DailyDataset, PipelineReport) {
    parallel_pipeline_obs(universe, workers, collectors, &Registry::new())
}

/// [`parallel_pipeline`] with an explicit [`Registry`]: counters land
/// under `pipeline.daily.*`, collector timings under the
/// `pipeline.daily.shard.<i>` spans, and noteworthy decode conditions
/// in the journal. The plain entry point delegates here with a
/// throwaway registry.
pub fn parallel_pipeline_obs(
    universe: &Universe,
    workers: usize,
    collectors: usize,
    registry: &Registry,
) -> (DailyDataset, PipelineReport) {
    validate_topology(workers, collectors).expect("invalid pipeline topology");
    let prefix = DAILY_PREFIX;
    let num_days = universe.config().daily_days;
    let start = Instant::now();
    let written = registry.counter(format!("{prefix}.records_written"));

    let channels: Vec<_> = (0..collectors)
        .map(|_| crossbeam::channel::bounded::<Vec<u8>>(workers * 2))
        .collect();
    let (txs, rxs): (Vec<_>, Vec<_>) = channels.into_iter().unzip();

    let chunk = universe.blocks.len().div_ceil(workers).max(1);
    let dataset = crossbeam::scope(|scope| {
        // Collectors: each folds its shard's frames into a partial
        // builder, decoding tolerantly.
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                let meters = ShardMeters::new(registry, prefix, shard);
                let registry = registry.clone();
                scope.spawn(move |_| {
                    let _span = registry.span(collector_span_path(prefix, shard));
                    let mut builder = DailyDatasetBuilder::new(num_days);
                    for buf in rx.iter() {
                        drain_shard_buffer(&buf, &mut builder, &meters);
                    }
                    builder
                })
            })
            .collect();

        // Edge workers: serialize a block slice into one buffer per
        // collector, routed by block hash.
        for shard in universe.blocks.chunks(chunk) {
            let txs = txs.clone();
            let written = written.clone();
            let registry = registry.clone();
            scope.spawn(move |_| {
                let _span = registry.span(format!("{prefix}.edge"));
                let mut writers: Vec<FrameWriter<Vec<u8>>> =
                    (0..collectors).map(|_| FrameWriter::new(Vec::new())).collect();
                for e in shard {
                    let writer = &mut writers[shard_of(e.block, collectors)];
                    emit_block_daily(universe, e, writer).expect("vec write");
                }
                let mut frames = 0u64;
                for (c, writer) in writers.into_iter().enumerate() {
                    frames += writer.frames_written();
                    let buf = writer.finish().expect("vec flush");
                    txs[c].send(buf).expect("collector alive");
                }
                written.add(frames);
            });
        }
        drop(txs);

        // Deterministic merge: partials combine in shard order (the
        // builder merge is order-insensitive anyway — the determinism
        // suite checks both directions).
        let mut merged: Option<DailyDatasetBuilder> = None;
        for handle in handles {
            let builder = handle.join().expect("collector panicked");
            match &mut merged {
                None => merged = Some(builder),
                Some(acc) => acc.merge(builder),
            }
        }
        merged.expect("at least one collector").finish()
    })
    .expect("pipeline thread panicked");

    let report = assemble_report(registry, prefix, collectors, workers, start.elapsed());
    (dataset, report)
}

/// Weekly counterpart of [`parallel_pipeline`]: same sharded topology,
/// folding [`WeeklyDatasetBuilder`] partials into a [`WeeklyDataset`]
/// equal to [`Universe::build_weekly`].
pub fn parallel_pipeline_weekly(
    universe: &Universe,
    workers: usize,
    collectors: usize,
) -> (WeeklyDataset, PipelineReport) {
    parallel_pipeline_weekly_obs(universe, workers, collectors, &Registry::new())
}

/// [`parallel_pipeline_weekly`] with an explicit [`Registry`]; metrics
/// land under `pipeline.weekly.*`.
pub fn parallel_pipeline_weekly_obs(
    universe: &Universe,
    workers: usize,
    collectors: usize,
    registry: &Registry,
) -> (WeeklyDataset, PipelineReport) {
    validate_topology(workers, collectors).expect("invalid pipeline topology");
    let prefix = WEEKLY_PREFIX;
    let num_weeks = universe.config().weeks;
    let start = Instant::now();
    let written = registry.counter(format!("{prefix}.records_written"));

    let channels: Vec<_> = (0..collectors)
        .map(|_| crossbeam::channel::bounded::<Vec<u8>>(workers * 2))
        .collect();
    let (txs, rxs): (Vec<_>, Vec<_>) = channels.into_iter().unzip();

    let chunk = universe.blocks.len().div_ceil(workers).max(1);
    let dataset = crossbeam::scope(|scope| {
        let handles: Vec<_> = rxs
            .into_iter()
            .enumerate()
            .map(|(shard, rx)| {
                let meters = ShardMeters::new(registry, prefix, shard);
                let registry = registry.clone();
                scope.spawn(move |_| {
                    let _span = registry.span(collector_span_path(prefix, shard));
                    let mut builder = WeeklyDatasetBuilder::new(num_weeks);
                    for buf in rx.iter() {
                        drain_shard_buffer_weekly(&buf, &mut builder, &meters);
                    }
                    builder
                })
            })
            .collect();

        for shard in universe.blocks.chunks(chunk) {
            let txs = txs.clone();
            let written = written.clone();
            let registry = registry.clone();
            scope.spawn(move |_| {
                let _span = registry.span(format!("{prefix}.edge"));
                let mut writers: Vec<FrameWriter<Vec<u8>>> =
                    (0..collectors).map(|_| FrameWriter::new(Vec::new())).collect();
                for e in shard {
                    let writer = &mut writers[shard_of(e.block, collectors)];
                    emit_block_weekly(universe, e, writer).expect("vec write");
                }
                let mut frames = 0u64;
                for (c, writer) in writers.into_iter().enumerate() {
                    frames += writer.frames_written();
                    let buf = writer.finish().expect("vec flush");
                    txs[c].send(buf).expect("collector alive");
                }
                written.add(frames);
            });
        }
        drop(txs);

        let mut merged: Option<WeeklyDatasetBuilder> = None;
        for handle in handles {
            let builder = handle.join().expect("collector panicked");
            match &mut merged {
                None => merged = Some(builder),
                Some(acc) => acc.merge(builder),
            }
        }
        merged.expect("at least one collector").finish()
    })
    .expect("pipeline thread panicked");

    let report = assemble_report(registry, prefix, collectors, workers, start.elapsed());
    (dataset, report)
}

/// Serializes the universe's daily logs into `collectors` shard
/// buffers, each holding exactly the blocks [`shard_of`] routes to
/// that collector — the edge half of [`parallel_pipeline`] exposed
/// for replay and fault-injection testing against
/// [`collect_daily_sharded`].
pub fn emit_daily_shards(universe: &Universe, collectors: usize) -> io::Result<Vec<Vec<u8>>> {
    validate_topology(1, collectors)?;
    let mut writers: Vec<FrameWriter<Vec<u8>>> =
        (0..collectors).map(|_| FrameWriter::new(Vec::new())).collect();
    for e in &universe.blocks {
        emit_block_daily(universe, e, &mut writers[shard_of(e.block, collectors)])?;
    }
    writers.into_iter().map(|w| w.finish()).collect()
}

/// Weekly counterpart of [`emit_daily_shards`].
pub fn emit_weekly_shards(universe: &Universe, collectors: usize) -> io::Result<Vec<Vec<u8>>> {
    validate_topology(1, collectors)?;
    let mut writers: Vec<FrameWriter<Vec<u8>>> =
        (0..collectors).map(|_| FrameWriter::new(Vec::new())).collect();
    for e in &universe.blocks {
        emit_block_weekly(universe, e, &mut writers[shard_of(e.block, collectors)])?;
    }
    writers.into_iter().map(|w| w.finish()).collect()
}

/// Decodes pre-encoded per-shard daily streams concurrently — one
/// collector per shard — and merges the partial builders. Total:
/// damaged or truncated shards lose frames (counted per collector in
/// the report) but never panic and never poison other shards.
///
/// This is the collector half of [`parallel_pipeline`] exposed for
/// replay and fault-injection: the property suite feeds it corrupted
/// shard buffers.
pub fn collect_daily_sharded(shards: &[Vec<u8>], num_days: usize) -> (DailyDataset, PipelineReport) {
    collect_daily_sharded_obs(shards, num_days, &Registry::new())
}

/// [`collect_daily_sharded`] with an explicit [`Registry`]; metrics
/// land under `pipeline.daily.*`, one counter family and span per
/// shard.
pub fn collect_daily_sharded_obs(
    shards: &[Vec<u8>],
    num_days: usize,
    registry: &Registry,
) -> (DailyDataset, PipelineReport) {
    let prefix = DAILY_PREFIX;
    let start = Instant::now();
    let dataset = crossbeam::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(shard, buf)| {
                let meters = ShardMeters::new(registry, prefix, shard);
                let registry = registry.clone();
                scope.spawn(move |_| {
                    let _span = registry.span(collector_span_path(prefix, shard));
                    let mut builder = DailyDatasetBuilder::new(num_days);
                    drain_shard_buffer(buf, &mut builder, &meters);
                    builder
                })
            })
            .collect();
        let mut merged = DailyDatasetBuilder::new(num_days);
        for handle in handles {
            merged.merge(handle.join().expect("collector panicked"));
        }
        merged.finish()
    })
    .expect("collector thread panicked");
    let report = assemble_report(registry, prefix, shards.len(), 0, start.elapsed());
    (dataset, report)
}

/// Weekly counterpart of [`collect_daily_sharded`].
pub fn collect_weekly_sharded(
    shards: &[Vec<u8>],
    num_weeks: usize,
) -> (WeeklyDataset, PipelineReport) {
    collect_weekly_sharded_obs(shards, num_weeks, &Registry::new())
}

/// [`collect_weekly_sharded`] with an explicit [`Registry`]; metrics
/// land under `pipeline.weekly.*`.
pub fn collect_weekly_sharded_obs(
    shards: &[Vec<u8>],
    num_weeks: usize,
    registry: &Registry,
) -> (WeeklyDataset, PipelineReport) {
    let prefix = WEEKLY_PREFIX;
    let start = Instant::now();
    let dataset = crossbeam::scope(|scope| {
        let handles: Vec<_> = shards
            .iter()
            .enumerate()
            .map(|(shard, buf)| {
                let meters = ShardMeters::new(registry, prefix, shard);
                let registry = registry.clone();
                scope.spawn(move |_| {
                    let _span = registry.span(collector_span_path(prefix, shard));
                    let mut builder = WeeklyDatasetBuilder::new(num_weeks);
                    drain_shard_buffer_weekly(buf, &mut builder, &meters);
                    builder
                })
            })
            .collect();
        let mut merged = WeeklyDatasetBuilder::new(num_weeks);
        for handle in handles {
            merged.merge(handle.join().expect("collector panicked"));
        }
        merged.finish()
    })
    .expect("collector thread panicked");
    let report = assemble_report(registry, prefix, shards.len(), 0, start.elapsed());
    (dataset, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UniverseConfig;

    fn universe() -> Universe {
        Universe::generate(UniverseConfig::tiny(0x100))
    }

    fn assert_datasets_equal(a: &DailyDataset, b: &DailyDataset) {
        assert_eq!(a.num_days, b.num_days);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (x, y) in a.blocks.iter().zip(b.blocks.iter()) {
            assert_eq!(x.block, y.block);
            assert_eq!(x.rows, y.rows, "activity matrix mismatch in {}", x.block);
            assert_eq!(x.total_hits, y.total_hits);
            assert_eq!(x.ua_samples, y.ua_samples);
            assert_eq!(x.ua_unique, y.ua_unique);
            assert_eq!(x.ip_traffic, y.ip_traffic);
        }
    }

    #[test]
    fn wire_roundtrip_equals_direct_build() {
        let u = universe();
        let direct = u.build_daily();
        let mut buf = Vec::new();
        let written = emit_daily_logs(&u, &mut buf).unwrap();
        assert!(written > 0);
        let (collected, stats) = collect_daily(&buf[..], u.config().daily_days).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_eq!(stats.records_read + 1, written); // Finish frame not counted as read
        assert_datasets_equal(&direct, &collected);
    }

    #[test]
    fn parallel_pipeline_equals_direct_build() {
        let u = universe();
        let direct = u.build_daily();
        let (collected, report) = parallel_pipeline(&u, 4, 2);
        assert_datasets_equal(&direct, &collected);
        assert_eq!(report.totals.records_written, report.totals.records_read);
        assert!(report.totals.bytes > 0);
        assert_eq!(report.totals.frames_skipped, 0);
        assert_eq!(report.collectors(), 2);
        assert_eq!(report.workers, 4);
    }

    #[test]
    fn per_collector_stats_sum_to_totals() {
        let u = universe();
        let (_, report) = parallel_pipeline(&u, 3, 4);
        let read: u64 = report.per_collector.iter().map(|s| s.records_read).sum();
        let bytes: u64 = report.per_collector.iter().map(|s| s.bytes).sum();
        let buffers: u64 = report.per_collector.iter().map(|s| s.buffers).sum();
        assert_eq!(read, report.totals.records_read);
        assert_eq!(bytes, report.totals.bytes);
        // Every worker sends one buffer to every collector.
        assert_eq!(buffers, 3 * 4);
        assert!(report.per_collector.iter().all(|s| s.decode_errors == 0));
        assert!(report.records_per_sec() > 0.0);
    }

    #[test]
    fn parallel_pipeline_weekly_equals_direct_build() {
        let u = universe();
        let direct = u.build_weekly();
        let (collected, report) = parallel_pipeline_weekly(&u, 4, 2);
        assert_eq!(collected, direct);
        assert_eq!(report.totals.records_written, report.totals.records_read);
        assert_eq!(report.totals.frames_skipped, 0);
    }

    #[test]
    fn sharded_collect_equals_unsharded() {
        let u = universe();
        let num_days = u.config().daily_days;
        let collectors = 3;
        let shards = emit_daily_shards(&u, collectors).unwrap();
        let (sharded, report) = collect_daily_sharded(&shards, num_days);
        assert_datasets_equal(&u.build_daily(), &sharded);
        assert_eq!(report.collectors(), collectors);
        assert!(report.per_collector.iter().all(|s| s.frames_skipped == 0));
    }

    #[test]
    fn packed_stream_collects_identically() {
        let u = universe();
        let mut flat = Vec::new();
        let mut packed = Vec::new();
        emit_daily_logs(&u, &mut flat).unwrap();
        emit_daily_logs_packed(&u, &mut packed).unwrap();
        assert!(
            packed.len() < flat.len(),
            "packed {} must beat flat {}",
            packed.len(),
            flat.len()
        );
        let (a, _) = collect_daily(&flat[..], u.config().daily_days).unwrap();
        let (b, _) = collect_daily(&packed[..], u.config().daily_days).unwrap();
        assert_datasets_equal(&a, &b);
    }

    #[test]
    fn packed_and_flat_streams_fold_identically_through_fold_daily() {
        let u = universe();
        let num_days = u.config().daily_days;
        let mut flat = Vec::new();
        let mut packed = Vec::new();
        emit_daily_logs(&u, &mut flat).unwrap();
        emit_daily_logs_packed(&u, &mut packed).unwrap();
        let fold = |buf: &[u8]| {
            let mut reader = FrameReader::new(buf, ReadMode::Strict);
            let mut builder = DailyDatasetBuilder::new(num_days);
            while let Some(rec) = reader.read().unwrap() {
                fold_daily(rec, &mut builder);
            }
            builder.finish()
        };
        let a = fold(&flat);
        let b = fold(&packed);
        assert_eq!(a, b, "flat and packed encodings must fold to equal datasets");
        assert_datasets_equal(&a, &b);
        assert_datasets_equal(&a, &u.build_daily());
    }

    #[test]
    fn quarantined_hits_frame_does_not_leave_a_phantom_block() {
        use ipactive_net::Addr;
        // The supervisor salvage scenario: corruption claims a block's
        // only Hits frame while its UaSample frame survives. The
        // salvaged dataset must not materialize an activity-free
        // BlockRecord for that block.
        let addr = Addr::new(0x0A000001);
        let lost = Record::Hits { day: 0, addr, hits: 5 };
        let mut first = Vec::new();
        let mut w = FrameWriter::new(&mut first);
        w.write(&lost).unwrap();
        drop(w);
        let hits_frame_len = first.len();

        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        w.write(&lost).unwrap();
        w.write(&Record::UaSample { day: 0, addr, ua_hash: 99 }).unwrap();
        w.finish().unwrap();
        // Flip one checksum byte of the Hits frame: tolerant decode
        // quarantines exactly that frame, the UaSample lives on.
        buf[hits_frame_len - 1] ^= 0xFF;

        let (salvaged, stats) = collect_daily(&buf[..], 3).unwrap();
        assert_eq!(stats.frames_skipped, 1);
        assert!(
            salvaged.blocks.is_empty(),
            "phantom block emitted for a UA-only /24: {:?}",
            salvaged.blocks.first().map(|r| r.block)
        );
        // The salvaged dataset agrees with a clean run that never saw
        // the block at all — block censuses and equality line up.
        assert_eq!(salvaged, DailyDatasetBuilder::new(3).finish());
    }

    #[test]
    fn log_store_roundtrip_equals_direct_build() {
        let u = universe();
        let dir = std::env::temp_dir().join(format!(
            "ipactive-pipeline-store-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ipactive_logfmt::LogStore::open(&dir).unwrap();
        persist_daily(&u, &store).unwrap();
        assert_eq!(store.days().unwrap().len(), u.config().daily_days);
        let (ds, stats) = collect_from_store(&store, u.config().daily_days).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_datasets_equal(&u.build_daily(), &ds);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn atomic_persist_equals_incremental_persist() {
        let u = universe();
        let num_days = u.config().daily_days;
        let fs = ipactive_logfmt::SimFs::new();
        let incr = ipactive_logfmt::LogStore::open_on(fs.clone(), "/incr").unwrap();
        persist_daily(&u, &incr).unwrap();
        let mut atomic = ipactive_logfmt::LogStore::open_on(fs.clone(), "/atomic").unwrap();
        let gen = persist_daily_atomic(&u, &mut atomic).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(atomic.committed_days().len(), num_days);
        let (from_incr, _) = collect_from_store(&incr, num_days).unwrap();
        let (from_atomic, _) = collect_from_store(&atomic, num_days).unwrap();
        assert_datasets_equal(&from_incr, &from_atomic);
        assert_datasets_equal(&u.build_daily(), &from_atomic);
    }

    #[test]
    fn checked_collect_attaches_full_coverage_when_clean() {
        let u = universe();
        let num_days = u.config().daily_days;
        let fs = ipactive_logfmt::SimFs::new();
        let mut store = ipactive_logfmt::LogStore::open_on(fs.clone(), "/store").unwrap();
        persist_daily_atomic(&u, &mut store).unwrap();
        let (ds, stats, report) = collect_from_store_checked(&store, num_days).unwrap();
        assert!(report.is_healthy(), "clean store flagged:\n{}", report.render());
        assert_eq!(stats.frames_skipped, 0);
        let coverage = ds.coverage.as_ref().expect("checked collect must annotate coverage");
        assert!(coverage.is_complete());
        assert_eq!(coverage.num_slots(), num_days);
        assert_datasets_equal(&u.build_daily(), &ds);
    }

    #[test]
    fn checked_collect_degrades_coverage_for_a_damaged_day() {
        let u = universe();
        let num_days = u.config().daily_days;
        assert!(num_days >= 2, "need at least two days to damage one");
        let fs = ipactive_logfmt::SimFs::new();
        let store = ipactive_logfmt::LogStore::open_on(fs.clone(), "/store").unwrap();
        persist_daily(&u, &store).unwrap();
        // Cut the tail off day 1's file, mid-frame.
        let path = std::path::Path::new("/store").join("day-0001.iplog");
        let bytes = fs.visible(&path).unwrap();
        fs.put_file(&path, &bytes[..bytes.len() - bytes.len() / 4 - 1]);
        let (ds, _, report) = collect_from_store_checked(&store, num_days).unwrap();
        assert!(!report.is_healthy());
        let coverage = ds.coverage.as_ref().unwrap();
        assert!(coverage.slot(1) < 1.0, "damaged day kept full coverage");
        assert_eq!(coverage.slot(0), 1.0, "undamaged day lost coverage");
        assert!(!coverage.is_complete());
    }

    #[test]
    fn weekly_wire_roundtrip_equals_direct_build() {
        let u = universe();
        let direct = u.build_weekly();
        let mut buf = Vec::new();
        emit_weekly_logs(&u, &mut buf).unwrap();
        let (collected, stats) = collect_weekly(&buf[..], u.config().weeks).unwrap();
        assert_eq!(stats.frames_skipped, 0);
        assert_eq!(collected, direct);
    }

    #[test]
    fn zero_collectors_is_a_proper_error() {
        let u = universe();
        let err = emit_daily_shards(&u, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        let err = emit_weekly_shards(&u, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(validate_topology(0, 1).is_err());
        assert!(validate_topology(1, 0).is_err());
        assert!(validate_topology(1, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "collectors must be >= 1")]
    fn shard_of_rejects_zero_collectors() {
        let _ = shard_of(Block24::new(7), 0);
    }

    #[test]
    fn rate_is_zero_when_no_time_elapsed() {
        // The degenerate cases must render as 0.0, never inf/NaN —
        // shared with the obs snapshot renderer via ipactive_obs::rate.
        assert_eq!(rate(1_000_000, Duration::ZERO), 0.0);
        assert_eq!(rate(0, Duration::ZERO), 0.0);
        assert!(rate(u64::MAX, Duration::from_nanos(1)).is_finite());
        let r = rate(500, Duration::from_secs(2));
        assert!((r - 250.0).abs() < 1e-9);
        // Stats with zero elapsed flow through the same guard.
        let stats = CollectorStats { records_read: 42, ..CollectorStats::default() };
        assert_eq!(stats.records_per_sec(), 0.0);
        let report = PipelineReport {
            totals: PipelineStats { records_read: 42, ..PipelineStats::default() },
            ..PipelineReport::default()
        };
        assert_eq!(report.records_per_sec(), 0.0);
    }

    #[test]
    fn report_is_a_view_over_the_registry_snapshot() {
        let u = universe();
        let reg = Registry::new();
        let (_, report) = parallel_pipeline_obs(&u, 2, 3, &reg);
        let snap = reg.snapshot(obs::SnapshotMode::Timed);
        // Totals in the report are exactly the registry counters —
        // there is no second accounting path to drift.
        assert_eq!(
            report.totals.records_written,
            snap.counter("pipeline.daily.records_written")
        );
        for (i, s) in report.per_collector.iter().enumerate() {
            assert_eq!(s, &CollectorStats::from_snapshot(&snap, DAILY_PREFIX, i));
            assert_eq!(
                s.records_read,
                snap.counter(&format!("pipeline.daily.shard.{i}.records"))
            );
        }
        // counter_sum over one shard's family folds all six fields.
        let s0 = &report.per_collector[0];
        assert_eq!(
            snap.counter_sum("pipeline.daily.shard.0."),
            s0.records_read
                + s0.frames_skipped
                + s0.resyncs
                + s0.decode_errors
                + s0.buffers
                + s0.bytes
        );
        // Collector wall time comes from the span tree.
        assert!(snap.spans.iter().any(|sp| sp.path == "pipeline.daily.shard.0"));
        assert!(snap.spans.iter().any(|sp| sp.path == "pipeline.daily.edge"));
    }

    #[test]
    fn resyncs_surface_in_report() {
        let u = universe();
        let num_days = u.config().daily_days;
        let mut shards = emit_daily_shards(&u, 2).unwrap();
        // Garbage before shard 1's first frame forces a resync scan.
        let mut dirty = vec![0x00, 0x13, 0x37];
        dirty.extend_from_slice(&shards[1]);
        shards[1] = dirty;
        let (_, report) = collect_daily_sharded(&shards, num_days);
        assert_eq!(report.per_collector[0].resyncs, 0);
        assert!(report.per_collector[1].resyncs >= 1);
        let summed: u64 = report.per_collector.iter().map(|s| s.resyncs).sum();
        assert_eq!(report.totals.resyncs, summed);
    }

    #[test]
    fn collector_survives_corruption() {
        let u = universe();
        let mut buf = Vec::new();
        emit_daily_logs(&u, &mut buf).unwrap();
        // Corrupt a payload byte early in the stream.
        let pos = buf.len() / 3 + 2;
        buf[pos] ^= 0x40;
        let result = collect_daily(&buf[..], u.config().daily_days);
        if let Ok((ds, stats)) = result {
            // Tolerant mode: we may lose records but never fabricate.
            assert!(stats.frames_skipped >= 1 || ds.total_active() > 0);
        }
        // (A LostSync error is also acceptable — the point is no panic
        // and no silent wrong data.)
    }

    #[test]
    fn sharded_collector_survives_corruption_in_one_shard() {
        let u = universe();
        let num_days = u.config().daily_days;
        let collectors = 3;
        let mut shards = emit_daily_shards(&u, collectors).unwrap();
        let (clean, _) = collect_daily_sharded(&shards, num_days);
        // Trash shard 1 wholesale; shards 0 and 2 must decode intact.
        let pos = shards[1].len() / 2;
        shards[1].truncate(pos);
        shards[1].extend_from_slice(&[0xFF; 64]);
        let (damaged, report) = collect_daily_sharded(&shards, num_days);
        assert_eq!(report.per_collector[0].frames_skipped, 0);
        assert_eq!(report.per_collector[2].frames_skipped, 0);
        // Only shard 1's blocks can differ; every other block matches
        // the clean run exactly.
        for rec in &damaged.blocks {
            if shard_of(rec.block, collectors) != 1 {
                let clean_rec = clean.block(rec.block).expect("clean shard block");
                assert_eq!(rec, clean_rec);
            }
        }
    }
}
