//! Exhaustive crash-point recovery suite.
//!
//! For every numbered I/O operation in the store's write protocols —
//! single-day `write_day` and manifest-journaled `commit_days` — this
//! harness cuts power *at* that operation, reboots the simulated disk
//! under every [`CrashStyle`], reopens the store, and asserts the one
//! invariant the whole design exists to uphold:
//!
//! > Every committed day reads back complete; every uncommitted day
//! > is absent. There is never a third state.
//!
//! The op count is discovered by running each workload once without
//! faults, so adding an fsync (or dropping one) automatically widens
//! (or shrinks) the enumeration — and a meta-test proves the harness
//! has teeth by feeding it a deliberately buggy writer and watching
//! the invariant break.

use ipactive_logfmt::{
    fsck, CrashStyle, Fs, Inject, LogStore, ReadMode, Record, SimFs, StoreError,
};
use ipactive_net::Addr;
use std::path::{Path, PathBuf};

fn dir() -> PathBuf {
    PathBuf::from("/store")
}

fn recs(day: u16, salt: u32, n: u32) -> Vec<Record> {
    (0..n)
        .map(|i| Record::Hits {
            day,
            addr: Addr::new(0x0A00_0000 + salt * 1000 + i),
            hits: u64::from(i) * 7 + u64::from(salt) + 1,
        })
        .collect()
}

const STYLES: [CrashStyle; 4] = [
    CrashStyle::Pessimist,
    CrashStyle::Eager,
    CrashStyle::Torn { seed: 0xDEAD_BEEF },
    CrashStyle::Torn { seed: 42 },
];

/// Asserts `day` on the reopened store is in exactly one of the
/// allowed complete states (or, if `may_be_absent`, absent) — never
/// partial, never fabricated.
fn assert_day_is_one_of(
    store: &LogStore<SimFs>,
    day: u16,
    allowed: &[&[Record]],
    may_be_absent: bool,
    ctx: &str,
) {
    if !store.has_day(day) {
        assert!(may_be_absent, "{ctx}: day {day} vanished");
        return;
    }
    let (got, damage) = store
        .read_day(day, ReadMode::Strict)
        .unwrap_or_else(|e| panic!("{ctx}: day {day} unreadable strictly: {e}"));
    assert!(damage.is_clean(), "{ctx}: day {day} read with damage {damage:?}");
    assert!(
        allowed.iter().any(|want| got == *want),
        "{ctx}: day {day} is a third state ({} records, matches no allowed version)",
        got.len(),
    );
}

/// No tmp file may survive a reopen, whatever the crash left behind.
fn assert_no_tmp(fs: &SimFs, ctx: &str) {
    let names = fs.read_dir_names(&dir()).unwrap();
    let tmps: Vec<_> = names.iter().filter(|n| n.ends_with(".tmp")).collect();
    assert!(tmps.is_empty(), "{ctx}: tmp files survived reopen: {tmps:?}");
}

/// Runs `fsck` twice on the rebooted disk (repair, then verify) and
/// asserts it terminates with a converged, deterministic report.
fn assert_fsck_converges(fs: &SimFs, ctx: &str) {
    let first = fsck(fs, &dir(), true).unwrap_or_else(|e| panic!("{ctx}: fsck failed: {e}"));
    let second = fsck(fs, &dir(), false).unwrap();
    assert!(
        second.is_healthy(),
        "{ctx}: fsck repair did not converge.\nfirst:\n{}\nsecond:\n{}",
        first.render(),
        second.render(),
    );
    assert_eq!(second.render(), fsck(fs, &dir(), false).unwrap().render(), "{ctx}: nondeterministic report");
}

// ---------------------------------------------------------------------------
// Workload 1: write_day overwriting an existing day, then a fresh day.
// ---------------------------------------------------------------------------

/// Setup: day 0 already holds v1 durably. Returns the disk.
fn setup_write_day() -> SimFs {
    let fs = SimFs::new();
    let store = LogStore::open_on(fs.clone(), dir()).unwrap();
    store.write_day(0, &recs(0, 1, 6)).unwrap();
    fs
}

fn run_write_day(fs: &SimFs) -> Result<(), StoreError> {
    let store = LogStore::open_on(fs.clone(), dir())?;
    store.write_day(0, &recs(0, 2, 9))?;
    store.write_day(1, &recs(1, 1, 4))?;
    Ok(())
}

fn check_write_day(fs: &SimFs, ctx: &str) {
    let store = LogStore::open_on(fs.clone(), dir())
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    assert_no_tmp(fs, ctx);
    let v1 = recs(0, 1, 6);
    let v2 = recs(0, 2, 9);
    // Day 0 existed before the workload: it must still exist, as
    // exactly the old or the new version.
    assert_day_is_one_of(&store, 0, &[&v1, &v2], false, ctx);
    // Day 1 was never durable before: complete or absent.
    assert_day_is_one_of(&store, 1, &[&recs(1, 1, 4)], true, ctx);
}

#[test]
fn write_day_survives_a_power_cut_at_every_operation() {
    // Discover the op count with a fault-free run.
    let probe = setup_write_day();
    let base_ops = probe.ops();
    run_write_day(&probe).unwrap();
    let total = probe.ops() - base_ops;
    assert!(total >= 10, "write_day workload shrank to {total} ops — protocol lost a step?");

    for cut in 0..total {
        let fs = setup_write_day();
        let at_op = fs.ops() + cut;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        run_write_day(&fs).expect_err("power cut must surface as an error");
        assert!(fs.powered_off());
        for style in STYLES {
            let ctx = format!("cut at op {cut}/{total}, {style:?}");
            let rebooted = fs.fork().crash(style);
            check_write_day(&rebooted, &ctx);
            assert_fsck_converges(&rebooted, &ctx);
            check_write_day(&rebooted, &format!("{ctx} (post-fsck)"));
        }
    }
}

// ---------------------------------------------------------------------------
// Workload 2: a manifest-journaled multi-day batch commit.
// ---------------------------------------------------------------------------

fn setup_commit() -> SimFs {
    let fs = SimFs::new();
    let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
    store.commit_days(&[(0, recs(0, 1, 5)), (1, recs(1, 1, 5))]).unwrap();
    fs
}

fn run_commit(fs: &SimFs) -> Result<(), StoreError> {
    let mut store = LogStore::open_on(fs.clone(), dir())?;
    store.commit_days(&[(1, recs(1, 2, 8)), (2, recs(2, 1, 3))]).map(|_| ())
}

fn check_commit(fs: &SimFs, ctx: &str) {
    let store = LogStore::open_on(fs.clone(), dir())
        .unwrap_or_else(|e| panic!("{ctx}: reopen failed: {e}"));
    let committed = store.committed_days();
    // The batch is atomic: the committed set is the old one or the
    // new one, wholesale.
    match committed.as_slice() {
        [0, 1] => {
            assert_day_is_one_of(&store, 0, &[&recs(0, 1, 5)], false, ctx);
            assert_day_is_one_of(&store, 1, &[&recs(1, 1, 5)], false, ctx);
            assert!(
                !store.days().unwrap().contains(&2),
                "{ctx}: uncommitted day 2 leaked into the visible day set"
            );
        }
        [0, 1, 2] => {
            assert_day_is_one_of(&store, 0, &[&recs(0, 1, 5)], false, ctx);
            assert_day_is_one_of(&store, 1, &[&recs(1, 2, 8)], false, ctx);
            assert_day_is_one_of(&store, 2, &[&recs(2, 1, 3)], false, ctx);
        }
        other => panic!("{ctx}: half-committed batch: committed days {other:?}"),
    }
}

#[test]
fn commit_days_is_atomic_under_a_power_cut_at_every_operation() {
    let probe = setup_commit();
    let base_ops = probe.ops();
    run_commit(&probe).unwrap();
    let total = probe.ops() - base_ops;
    assert!(total >= 12, "commit workload shrank to {total} ops — protocol lost a step?");

    let mut saw_old = false;
    let mut saw_new = false;
    for cut in 0..total {
        let fs = setup_commit();
        let at_op = fs.ops() + cut;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        // A cut landing on the best-effort post-commit sweep is
        // swallowed, so the call itself may still report success.
        let _ = run_commit(&fs);
        assert!(fs.powered_off(), "scheduled power cut never fired");
        for style in STYLES {
            let ctx = format!("cut at op {cut}/{total}, {style:?}");
            let rebooted = fs.fork().crash(style);
            check_commit(&rebooted, &ctx);
            if style == CrashStyle::Pessimist {
                let store = LogStore::open_on(rebooted.clone(), dir()).unwrap();
                match store.committed_days().len() {
                    2 => saw_old = true,
                    3 => saw_new = true,
                    _ => unreachable!(),
                }
            }
            // fsck must terminate, converge, and preserve the
            // committed state it found.
            assert_fsck_converges(&rebooted, &ctx);
            check_commit(&rebooted, &format!("{ctx} (post-fsck)"));
        }
    }
    // The enumeration must actually straddle the commit point:
    // some cuts land before it (old state) and some after (new).
    assert!(saw_old, "no crash point observed the pre-commit state");
    assert!(saw_new, "no crash point observed the post-commit state");
}

// ---------------------------------------------------------------------------
// Repair is idempotent: a second repair pass finds nothing to do, and
// the repaired store accepts fresh batch commits.
// ---------------------------------------------------------------------------

/// Repairs the disk twice and asserts the second *repair* pass takes
/// zero actions — no quarantines, no orphan or stale-manifest
/// removals, no tmp sweeps. (Stronger than "the second dry run is
/// healthy": it pins that repair itself converges in one step, so a
/// healing coordinator re-running `fsck --repair` on a store it
/// already repaired — a regranted worker's predecessor crashed twice
/// — can never oscillate.) Then commits a fresh day batch through the
/// repaired store and reads it back, proving repair leaves the store
/// fully writable, not merely consistent.
fn assert_repair_idempotent_and_recommittable(fs: &SimFs, ctx: &str) {
    fsck(fs, &dir(), true).unwrap_or_else(|e| panic!("{ctx}: first repair failed: {e}"));
    let second = fsck(fs, &dir(), true).unwrap_or_else(|e| panic!("{ctx}: second repair failed: {e}"));
    assert!(
        second.quarantined.is_empty()
            && second.orphans_removed.is_empty()
            && second.stale_manifests.is_empty()
            && second.tmp_swept.is_empty(),
        "{ctx}: second repair found new actions:\n{}",
        second.render(),
    );
    assert!(second.is_healthy(), "{ctx}: repaired store not healthy:\n{}", second.render());
    // Round trip: the repaired store takes a new atomic batch.
    let mut store = LogStore::open_on(fs.clone(), dir())
        .unwrap_or_else(|e| panic!("{ctx}: reopen after repair failed: {e}"));
    let fresh = recs(9, 9, 5);
    store
        .commit_days(&[(9, fresh.clone())])
        .unwrap_or_else(|e| panic!("{ctx}: commit through repaired store failed: {e}"));
    let reopened = LogStore::open_on(fs.clone(), dir()).unwrap();
    assert!(reopened.committed_days().contains(&9), "{ctx}: fresh commit not visible");
    let (got, damage) = reopened
        .read_day(9, ReadMode::Strict)
        .unwrap_or_else(|e| panic!("{ctx}: fresh day unreadable: {e}"));
    assert_eq!(got, fresh, "{ctx}: fresh day content wrong");
    assert!(damage.is_clean(), "{ctx}: fresh day read with damage");
}

#[test]
fn fsck_repair_is_idempotent_on_every_crash_scenario() {
    // Scenario A: the write_day workload cut at every op.
    let probe = setup_write_day();
    let base_ops = probe.ops();
    run_write_day(&probe).unwrap();
    let total = probe.ops() - base_ops;
    for cut in 0..total {
        let fs = setup_write_day();
        let at_op = fs.ops() + cut;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        run_write_day(&fs).expect_err("power cut must surface as an error");
        for style in [CrashStyle::Pessimist, CrashStyle::Torn { seed: 0xDEAD_BEEF }] {
            let ctx = format!("write_day cut at op {cut}/{total}, {style:?}");
            let rebooted = fs.fork().crash(style);
            assert_repair_idempotent_and_recommittable(&rebooted, &ctx);
        }
    }

    // Scenario B: the manifest-journaled batch commit cut at every op.
    let probe = setup_commit();
    let base_ops = probe.ops();
    run_commit(&probe).unwrap();
    let total = probe.ops() - base_ops;
    for cut in 0..total {
        let fs = setup_commit();
        let at_op = fs.ops() + cut;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        let _ = run_commit(&fs);
        assert!(fs.powered_off(), "scheduled power cut never fired");
        for style in [CrashStyle::Pessimist, CrashStyle::Torn { seed: 42 }] {
            let ctx = format!("commit cut at op {cut}/{total}, {style:?}");
            let rebooted = fs.fork().crash(style);
            assert_repair_idempotent_and_recommittable(&rebooted, &ctx);
        }
    }
}

// ---------------------------------------------------------------------------
// Satellite: ENOSPC and short writes at every operation (tmp hygiene).
// ---------------------------------------------------------------------------

#[test]
fn write_day_cleans_up_after_enospc_and_short_writes_at_every_operation() {
    let probe = setup_write_day();
    let base_ops = probe.ops();
    {
        let store = LogStore::open_on(probe.clone(), dir()).unwrap();
        store.write_day(0, &recs(0, 2, 9)).unwrap();
    }
    let total = probe.ops() - base_ops;
    let v1 = recs(0, 1, 6);
    let v2 = recs(0, 2, 9);

    for inject in [Inject::Enospc, Inject::ShortWrite] {
        for at in 0..total {
            let fs = setup_write_day();
            let at_op = fs.ops() + at;
            let fs = fs.with_fault(at_op, inject);
            let store = LogStore::open_on(fs.clone(), dir()).unwrap();
            let ctx = format!("{inject:?} at op {at}/{total}");
            match store.write_day(0, &v2) {
                // The injected op may land on an fsync that the fault
                // swallows without erroring; then the write succeeds.
                Ok(()) => {
                    assert_day_is_one_of(&store, 0, &[&v2], false, &ctx);
                }
                Err(_) => {
                    // Failure path: the old or the new version, whole
                    // — an error on the final directory fsync lands
                    // *after* the rename, so the new content may be
                    // visible. A mix or a partial file never is.
                    assert_day_is_one_of(&store, 0, &[&v1, &v2], false, &ctx);
                }
            }
            // Either way, no tmp file survives the call...
            assert_no_tmp(&fs, &ctx);
            // ...and a retry goes through cleanly.
            store.write_day(0, &v2).unwrap_or_else(|e| panic!("{ctx}: retry failed: {e}"));
            let (got, damage) = store.read_day(0, ReadMode::Strict).unwrap();
            assert_eq!(got, v2, "{ctx}: retry produced wrong content");
            assert!(damage.is_clean());
        }
    }
}

#[test]
fn commit_days_cleans_up_after_enospc_at_every_operation() {
    let probe = setup_commit();
    let base_ops = probe.ops();
    run_commit(&probe).unwrap();
    let total = probe.ops() - base_ops;

    for at in 0..total {
        let fs = setup_commit();
        let at_op = fs.ops() + at;
        let fs = fs.with_fault(at_op, Inject::Enospc);
        let ctx = format!("Enospc at op {at}/{total}");
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        match store.commit_days(&[(1, recs(1, 2, 8)), (2, recs(2, 1, 3))]) {
            Ok(_) => check_commit(&fs, &ctx),
            Err(_) => {
                // The failed batch must leave the old commit in force
                // for *this* store handle too, not only a reopen.
                assert_eq!(store.committed_days(), vec![0, 1], "{ctx}");
                check_commit(&fs, &ctx);
                // Orphaned batch files may remain (fsck's job), but
                // tmp files must not.
                assert_no_tmp(&fs, &ctx);
                // Retrying the batch on the same handle succeeds.
                store
                    .commit_days(&[(1, recs(1, 2, 8)), (2, recs(2, 1, 3))])
                    .unwrap_or_else(|e| panic!("{ctx}: retry failed: {e}"));
                assert_eq!(store.committed_days(), vec![0, 1, 2]);
            }
        }
        assert_fsck_converges(&fs, &ctx);
        check_commit(&fs, &format!("{ctx} (post-fsck)"));
    }
}

// ---------------------------------------------------------------------------
// Satellite: randomized torn-write fuzz, pinned seeds.
// ---------------------------------------------------------------------------

#[test]
fn torn_write_fuzz_with_pinned_seeds() {
    let probe = setup_commit();
    let base_ops = probe.ops();
    run_commit(&probe).unwrap();
    let total = probe.ops() - base_ops;

    for seed in 0..16u64 {
        // The seed drives both the cut point and the torn-prefix
        // selection, so each iteration explores a different tear.
        let cut = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) % total;
        let fs = setup_commit();
        let at_op = fs.ops() + cut;
        let fs = fs.with_fault(at_op, Inject::PowerCut);
        let _ = run_commit(&fs);
        assert!(fs.powered_off(), "scheduled power cut never fired");
        let rebooted = fs.crash(CrashStyle::Torn { seed });
        let ctx = format!("torn seed {seed}, cut at op {cut}");
        check_commit(&rebooted, &ctx);
        assert_fsck_converges(&rebooted, &ctx);
        check_commit(&rebooted, &format!("{ctx} (post-fsck)"));
    }
}

// ---------------------------------------------------------------------------
// A disk that acknowledges fsyncs it never performs.
// ---------------------------------------------------------------------------

#[test]
fn dropped_fsyncs_are_detected_not_misread() {
    let fs = SimFs::new().with_dropped_syncs();
    let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
    store.commit_days(&[(0, recs(0, 1, 5))]).unwrap();
    drop(store);
    // Eager reboot: the namespace survived, but no byte was ever
    // truly synced — every file comes back empty.
    let rebooted = fs.crash(CrashStyle::Eager);
    match LogStore::open_on(rebooted.clone(), dir()) {
        // The truncated manifest must be rejected, not trusted.
        Err(StoreError::Manifest { .. }) => {}
        Ok(store) => {
            // (If no manifest survived at all, the store is simply
            // empty — also honest.)
            assert!(store.committed_days().is_empty(), "lying disk produced committed days");
        }
        Err(e) => panic!("unexpected open failure: {e}"),
    }
    // fsck quarantines the wreckage and converges.
    let report = fsck(&rebooted, &dir(), true).unwrap();
    assert!(!report.is_healthy(), "fsck missed a store written through a lying disk");
    assert!(fsck(&rebooted, &dir(), false).unwrap().is_healthy());
}

// ---------------------------------------------------------------------------
// Meta-test: the harness detects protocol bugs.
// ---------------------------------------------------------------------------

/// A deliberately buggy writer: tmp, write, rename — no fsync at all.
/// Under an eager reboot the rename survives but the bytes do not;
/// the harness's invariant check must notice the damage. If this test
/// ever fails, the simulator has stopped modeling the failure the
/// real protocol's fsyncs exist to prevent.
#[test]
fn harness_detects_a_writer_that_skips_fsync() {
    use std::io::Write as _;

    let fs = setup_write_day();
    let v1 = recs(0, 1, 6);
    {
        let tmp = dir().join(".day-0000.buggy.tmp");
        let mut file = fs.create(&tmp).unwrap();
        let mut w = ipactive_logfmt::FrameWriter::new(Vec::new());
        for r in recs(0, 2, 9) {
            w.write(&r).unwrap();
        }
        file.write_all(&w.finish().unwrap()).unwrap();
        // BUG: no sync_all, no sync_dir.
        fs.rename(&tmp, &dir().join("day-0000.iplog")).unwrap();
    }
    let rebooted = fs.crash(CrashStyle::Eager);
    let store = LogStore::open_on(rebooted.clone(), dir()).unwrap();
    let outcome = store.read_day(0, ReadMode::Strict);
    let broken = match outcome {
        Ok((got, damage)) => got != v1 && got != recs(0, 2, 9) || !damage.is_clean(),
        Err(_) => true,
    };
    assert!(
        broken,
        "buggy fsync-free writer survived an eager crash intact — the simulator lost its teeth"
    );
}

// ---------------------------------------------------------------------------
// Real-filesystem parity: the generic store on RealFs behaves exactly
// like LogStore::open (same files, same bytes).
// ---------------------------------------------------------------------------

#[test]
fn realfs_and_simfs_produce_identical_day_files() {
    use ipactive_logfmt::RealFs;

    let records = recs(3, 1, 12);
    // SimFs copy.
    let sim = SimFs::new();
    let sim_store = LogStore::open_on(sim.clone(), dir()).unwrap();
    sim_store.write_day(3, &records).unwrap();
    let sim_bytes = sim.visible(&dir().join("day-0003.iplog")).unwrap();
    // RealFs copy.
    let real_dir = std::env::temp_dir().join(format!("ipactive-parity-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&real_dir);
    let real_store = LogStore::open_on(RealFs, &real_dir).unwrap();
    real_store.write_day(3, &records).unwrap();
    let real_bytes = std::fs::read(real_dir.join("day-0003.iplog")).unwrap();
    assert_eq!(sim_bytes, real_bytes, "Fs indirection changed the on-disk bytes");
    let _ = std::fs::remove_dir_all(&real_dir);
}

// ---------------------------------------------------------------------------
// Crash during *open* (the tmp sweep) is harmless.
// ---------------------------------------------------------------------------

#[test]
fn power_cut_during_open_sweep_preserves_all_days() {
    // Leave a stale tmp behind so open has sweeping to do.
    let fs = setup_write_day();
    fs.put_file(&dir().join(".day-0009.777-0.tmp"), b"stale");
    let probe = fs.fork();
    let base = probe.ops();
    LogStore::open_on(probe.clone(), dir()).unwrap();
    let total = probe.ops() - base;
    for cut in 0..total {
        let f = fs.fork().with_fault(fs.ops() + cut, Inject::PowerCut);
        let _ = LogStore::open_on(f.clone(), dir());
        let rebooted = f.crash(CrashStyle::Pessimist);
        let store = LogStore::open_on(rebooted.clone(), dir()).unwrap();
        assert_day_is_one_of(&store, 0, &[&recs(0, 1, 6)], false, "open-sweep cut");
        assert_no_tmp(&rebooted, "open-sweep cut");
    }
}

fn _assert_traits(p: &Path) {
    // Compile-time check: the sim plane stays Send + Sync so stores
    // can cross threads exactly like the RealFs store does.
    fn takes<F: Fs + Send + Sync>(_: &F) {}
    let fs = SimFs::new();
    takes(&fs);
    let _ = p;
}
