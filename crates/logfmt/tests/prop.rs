//! Property-based tests for the log wire format.

use ipactive_logfmt::{decode_u64, encode_u64, FrameReader, FrameWriter, ReadMode, Record};
use ipactive_net::Addr;
use proptest::prelude::*;

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        any::<u16>().prop_map(|day| Record::DayStart { day }),
        (any::<u16>(), any::<u32>(), any::<u64>())
            .prop_map(|(day, a, hits)| Record::Hits { day, addr: Addr::new(a), hits }),
        (any::<u16>(), any::<u32>(), any::<u64>())
            .prop_map(|(day, a, ua_hash)| Record::UaSample { day, addr: Addr::new(a), ua_hash }),
    ]
}

proptest! {
    #[test]
    fn varint_roundtrip(v in any::<u64>()) {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        prop_assert!(buf.len() <= 10);
        let mut slice = &buf[..];
        prop_assert_eq!(decode_u64(&mut slice).unwrap(), v);
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn varint_encoding_is_minimal(v in any::<u64>()) {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        // Length must match bit-width: ceil(bits/7), minimum 1.
        let bits = 64 - v.leading_zeros() as usize;
        let expect = core::cmp::max(1, bits.div_ceil(7));
        prop_assert_eq!(buf.len(), expect);
    }

    #[test]
    fn record_roundtrip(rec in arb_record()) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        prop_assert_eq!(Record::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn stream_roundtrip(records in prop::collection::vec(arb_record(), 0..100)) {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let mut reader = FrameReader::new(&buf[..], ReadMode::Strict);
        prop_assert_eq!(reader.read_all().unwrap(), records);
    }

    #[test]
    fn corrupted_streams_never_fabricate(records in prop::collection::vec(arb_record(), 1..30),
                                         pos_frac in 0.0f64..1.0, mask in 1u8..=255) {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        for r in &records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        let pos = ((buf.len() - 1) as f64 * pos_frac) as usize;
        buf[pos] ^= mask;
        let mut reader = FrameReader::new(&buf[..], ReadMode::Tolerant);
        loop {
            match reader.read() {
                Ok(Some(rec)) => prop_assert!(records.contains(&rec), "fabricated {rec:?}"),
                Ok(None) => break,
                Err(_) => break,
            }
        }
    }
}
