//! CRC-protected shard lease files for process-level coordination.
//!
//! A distributed collection run assigns each shard to a worker
//! *process* through a lease file living inside that shard's store
//! directory (`lease-0004.lse`). The lease is the unit of handoff:
//!
//! * the **coordinator** grants a shard by publishing a lease with a
//!   fresh `epoch` (a fencing token — strictly increasing across
//!   grants, so a late write from a deposed holder is recognizably
//!   stale);
//! * the **worker** heartbeats by republishing the lease with a larger
//!   `beat`. The beat counter is tied to replay *progress* (buffers
//!   decoded, days committed), never wall-clock time, so lease state
//!   is a deterministic function of how far the worker got;
//! * the coordinator detects a wedged worker as one whose beat stops
//!   advancing, and steals the shard by granting a new epoch to a
//!   successor.
//!
//! Every publish uses the store's durable protocol (unique tmp +
//! fsync + rename + dir fsync), and the tmp names share the `.lease-`
//! prefix so [`LogStore::open`](crate::LogStore::open)'s stale-tmp
//! sweep disposes of a killed writer's leftovers. A torn or
//! bit-rotted lease fails its trailing CRC on decode and reads as
//! [`LeaseRead::Corrupt`] — the coordinator treats that exactly like
//! an expired lease and fences a fresh epoch over it.
//!
//! ## Byte layout (`lease-SSSS.lse`)
//!
//! ```text
//! +---------------------------+----------------+
//! | magic "IPLSLE1\n" (8B)    | shard (LEB)    |
//! +---------------------------+----------------+
//! | epoch (LEB) | holder (LEB)                 |
//! +----------------------------------------- --+
//! | attempt (LEB) | beat (LEB)                 |
//! +---------------------------------------------+
//! | lease_crc32 over all preceding bytes (4B LE)|
//! +---------------------------------------------+
//! ```

use crate::crc::crc32;
use crate::varint::{decode_u64, encode_u64, VarintError};
use crate::vfs::{Fs, FsFile};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// File-name prefix of every lease file.
pub const LEASE_PREFIX: &str = "lease-";
/// File-name suffix of every lease file.
pub const LEASE_SUFFIX: &str = ".lse";
const MAGIC: &[u8; 8] = b"IPLSLE1\n";

/// Distinguishes concurrent lease writers within one process, exactly
/// like the store's day/manifest tmp counter.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One shard's current lease: who holds it, under which fencing
/// epoch, and how far they have provably gotten.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    /// The shard this lease governs.
    pub shard: u32,
    /// Fencing token: strictly increases across grants/steals. A
    /// publish carrying an older epoch than the file's is a deposed
    /// holder's late write and must be ignored.
    pub epoch: u64,
    /// Logical id of the holding worker (assignment-order index, not
    /// a pid — lease bytes must stay deterministic run to run).
    pub holder: u64,
    /// Which reassignment attempt this grant is (0 = first grant).
    pub attempt: u32,
    /// Progress heartbeat: buffers replayed + days committed so far.
    /// Monotone within an epoch; a beat that stops advancing marks a
    /// wedged holder.
    pub beat: u64,
}

/// Why a lease file failed to decode.
#[derive(Debug)]
pub enum LeaseError {
    /// The magic header did not match (or the file is too short).
    BadMagic,
    /// A varint field was malformed.
    BadField(VarintError),
    /// The file ended inside a field.
    Truncated,
    /// The trailing CRC-32 did not match the content.
    BadChecksum,
    /// The shard or attempt field exceeded its type's range.
    FieldOutOfRange(u64),
}

impl std::fmt::Display for LeaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LeaseError::BadMagic => write!(f, "bad lease magic"),
            LeaseError::BadField(e) => write!(f, "bad lease field: {e}"),
            LeaseError::Truncated => write!(f, "lease truncated"),
            LeaseError::BadChecksum => write!(f, "lease checksum mismatch"),
            LeaseError::FieldOutOfRange(v) => write!(f, "lease field {v} out of range"),
        }
    }
}

impl std::error::Error for LeaseError {}

impl Lease {
    /// Serializes the lease, appending the trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(MAGIC.len() + 5 * 10 + 4);
        buf.extend_from_slice(MAGIC);
        encode_u64(&mut buf, u64::from(self.shard));
        encode_u64(&mut buf, self.epoch);
        encode_u64(&mut buf, self.holder);
        encode_u64(&mut buf, u64::from(self.attempt));
        encode_u64(&mut buf, self.beat);
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and verifies a lease file's bytes.
    pub fn decode(bytes: &[u8]) -> Result<Lease, LeaseError> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(LeaseError::BadMagic);
        }
        let (content, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(content) != stored {
            return Err(LeaseError::BadChecksum);
        }
        let mut rest = &content[MAGIC.len()..];
        let next = |rest: &mut &[u8]| -> Result<u64, LeaseError> {
            if rest.is_empty() {
                return Err(LeaseError::Truncated);
            }
            decode_u64(rest).map_err(LeaseError::BadField)
        };
        let shard = next(&mut rest)?;
        let shard = u32::try_from(shard).map_err(|_| LeaseError::FieldOutOfRange(shard))?;
        let epoch = next(&mut rest)?;
        let holder = next(&mut rest)?;
        let attempt = next(&mut rest)?;
        let attempt = u32::try_from(attempt).map_err(|_| LeaseError::FieldOutOfRange(attempt))?;
        let beat = next(&mut rest)?;
        Ok(Lease { shard, epoch, holder, attempt, beat })
    }

    /// The file name of `shard`'s lease.
    pub fn file_name(shard: u32) -> String {
        format!("{LEASE_PREFIX}{shard:04}{LEASE_SUFFIX}")
    }

    /// The path of `shard`'s lease under `dir`.
    pub fn path(dir: &Path, shard: u32) -> PathBuf {
        dir.join(Self::file_name(shard))
    }

    /// Parses a shard number out of a lease file name.
    pub fn parse_file_name(name: &str) -> Option<u32> {
        let digits = name.strip_prefix(LEASE_PREFIX)?.strip_suffix(LEASE_SUFFIX)?;
        if digits.len() != 4 {
            return None;
        }
        digits.parse().ok()
    }
}

/// What a lease read found.
#[derive(Debug)]
pub enum LeaseRead {
    /// No lease file exists — the shard was never granted here.
    Absent,
    /// A lease file exists but fails verification (torn publish, bit
    /// rot). Coordinators treat this exactly like an expired lease.
    Corrupt(LeaseError),
    /// A verified lease.
    Held(Lease),
}

/// Durably publishes `lease` into `dir` via the store's tmp + fsync +
/// rename + dir-fsync protocol. The tmp name carries the `.lease-`
/// prefix so a killed writer's leftover is swept by the next
/// [`LogStore::open`](crate::LogStore::open) on the directory.
pub fn write_lease<F: Fs>(fs: &F, dir: &Path, lease: &Lease) -> io::Result<()> {
    let tmp = dir.join(format!(
        ".{LEASE_PREFIX}{:04}.{}-{}.tmp",
        lease.shard,
        std::process::id(),
        TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
    ));
    let result = (|| {
        let mut file = fs.create(&tmp)?;
        file.write_all(&lease.encode())?;
        file.sync_all()?;
        fs.rename(&tmp, &Lease::path(dir, lease.shard))?;
        fs.sync_dir(dir)
    })();
    if result.is_err() {
        let _ = fs.remove_file(&tmp);
    }
    result
}

/// Reads and verifies `shard`'s lease under `dir`. Only genuine I/O
/// failures (other than the file being absent) surface as errors;
/// damage is reported in-band as [`LeaseRead::Corrupt`].
pub fn read_lease<F: Fs>(fs: &F, dir: &Path, shard: u32) -> io::Result<LeaseRead> {
    let path = Lease::path(dir, shard);
    let mut bytes = Vec::new();
    match fs.open_read(&path) {
        Ok(mut f) => f.read_to_end(&mut bytes).map(|_| ())?,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LeaseRead::Absent),
        Err(e) => return Err(e),
    }
    Ok(match Lease::decode(&bytes) {
        Ok(lease) => LeaseRead::Held(lease),
        Err(e) => LeaseRead::Corrupt(e),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::{CrashStyle, Inject, SimFs};

    fn sample() -> Lease {
        Lease { shard: 3, epoch: 7, holder: 2, attempt: 1, beat: 1 << 40 }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let l = sample();
        assert_eq!(Lease::decode(&l.encode()).unwrap(), l);
        let edge = Lease { shard: u32::MAX, epoch: u64::MAX, holder: 0, attempt: u32::MAX, beat: 0 };
        assert_eq!(Lease::decode(&edge.encode()).unwrap(), edge);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for pos in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 0x41;
            assert!(Lease::decode(&dirty).is_err(), "flip at byte {pos} slipped through");
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for keep in 0..bytes.len() {
            assert!(
                Lease::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes slipped through"
            );
        }
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(Lease::file_name(4), "lease-0004.lse");
        assert_eq!(Lease::parse_file_name("lease-0004.lse"), Some(4));
        assert_eq!(Lease::parse_file_name("lease-junk.lse"), None);
        assert_eq!(Lease::parse_file_name("lease-00004.lse"), None);
        assert_eq!(Lease::parse_file_name("manifest-000007.mft"), None);
    }

    #[test]
    fn published_lease_survives_pessimist_crash() {
        let fs = SimFs::new();
        let dir = Path::new("/store/shard-0003");
        write_lease(&fs, dir, &sample()).unwrap();
        let fs = fs.crash(CrashStyle::Pessimist);
        match read_lease(&fs, dir, 3).unwrap() {
            LeaseRead::Held(l) => assert_eq!(l, sample()),
            other => panic!("expected a held lease, got {other:?}"),
        }
    }

    /// A publish cut down mid-protocol must never leave a half-lease
    /// visible under the final name: the old lease (or nothing)
    /// survives, and the damage is confined to a sweepable tmp.
    #[test]
    fn torn_publish_leaves_old_lease_or_absent_never_garbage() {
        let dir = Path::new("/store/shard-0003");
        // Count the ops of an undisturbed publish, then cut at each.
        let probe = SimFs::new();
        write_lease(&probe, dir, &sample()).unwrap();
        let total_ops = probe.ops();
        for cut in 0..total_ops {
            let fs = SimFs::new().with_fault(cut, Inject::PowerCut);
            let first = Lease { beat: 0, ..sample() };
            assert!(write_lease(&fs, dir, &first).is_err());
            let fs = fs.crash(CrashStyle::Torn { seed: cut });
            match read_lease(&fs, dir, 3).unwrap() {
                LeaseRead::Absent | LeaseRead::Held(_) => {}
                LeaseRead::Corrupt(e) => {
                    // Torn bytes under the final name are impossible:
                    // the rename only happens after the fsync.
                    panic!("cut at op {cut} left a corrupt published lease: {e}");
                }
            }
        }
    }

    /// Republishing (a heartbeat) replaces the lease atomically; a
    /// deposed holder's stale epoch remains detectable by compare.
    #[test]
    fn heartbeat_republish_replaces_atomically() {
        let fs = SimFs::new();
        let dir = Path::new("/store/shard-0003");
        write_lease(&fs, dir, &sample()).unwrap();
        let renewed = Lease { beat: sample().beat + 5, ..sample() };
        write_lease(&fs, dir, &renewed).unwrap();
        match read_lease(&fs, dir, 3).unwrap() {
            LeaseRead::Held(l) => assert_eq!(l, renewed),
            other => panic!("expected renewed lease, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_lease_reads_in_band() {
        let fs = SimFs::new();
        let dir = Path::new("/store/shard-0007");
        fs.put_file(&Lease::path(dir, 7), b"not a lease");
        assert!(matches!(read_lease(&fs, dir, 7).unwrap(), LeaseRead::Corrupt(_)));
        assert!(matches!(read_lease(&fs, dir, 8).unwrap(), LeaseRead::Absent));
    }
}
