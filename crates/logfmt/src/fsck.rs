//! Store verification and repair (`fsck`).
//!
//! [`fsck`] walks a store directory *below* [`LogStore::open`] — it
//! does its own manifest resolution, so it can examine (and repair) a
//! store whose sole manifest is torn, which `open` rightly refuses to
//! load. It verifies three layers:
//!
//! 1. **Manifests** — every generation file decodes; the newest valid
//!    one is authoritative; corrupt ones are quarantined, stale older
//!    ones removed.
//! 2. **Footers** — every committed day's file matches its manifest
//!    entry (byte length, whole-file CRC, record count). This catches
//!    the truncation-on-a-frame-boundary case the frame layer reads
//!    as a clean stream.
//! 3. **Frames** — every day file (committed or legacy) is scanned
//!    tolerantly, counting surviving records, mid-file skips, resyncs
//!    and trailing truncation.
//!
//! With `repair`, damaged files are moved into a `quarantine/`
//! subdirectory with a `.why` provenance sidecar, salvageable records
//! are rewritten in their place (committed days get a fresh manifest
//! generation with corrected footers), orphaned generation files are
//! reconciled, and stale tmp files swept. Without `repair`, fsck is
//! strictly read-only and reports what it *would* do.
//!
//! The [`FsckReport`] is deterministic — same directory state, same
//! report, with file *names* only (never absolute paths) so golden
//! files diff cleanly across machines — and exposes
//! [`FsckReport::day_fractions`], the per-day completeness grid the
//! supervisor folds into a `Coverage`.
//!
//! [`LogStore::open`]: crate::LogStore::open

use crate::crc::crc32;
use crate::manifest::{
    gen_day_file_name, parse_gen_day_file_name, DayMeta, Manifest, ManifestError,
};
use crate::store::{DayDamage, StoreError};
use crate::vfs::{Fs, FsFile};
use crate::{FrameReader, FrameWriter, ReadMode, Record};
use ipactive_obs::{Event, EventKind, Registry};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::path::Path;

/// Name of the quarantine subdirectory repairs move damaged files to.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Health verdict for one day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DayVerdict {
    /// Every check passed.
    Clean,
    /// The file exists but lost frames, failed its footer, or both.
    Damaged,
    /// The manifest commits the day but its file is gone.
    Missing,
    /// An uncommitted generation file adopted because no valid
    /// manifest survived and it was the only copy of the day.
    RecoveredOrphan,
}

impl DayVerdict {
    fn label(self) -> &'static str {
        match self {
            DayVerdict::Clean => "clean",
            DayVerdict::Damaged => "damaged",
            DayVerdict::Missing => "MISSING",
            DayVerdict::RecoveredOrphan => "recovered-orphan",
        }
    }
}

/// Everything fsck established about one day.
#[derive(Debug, Clone)]
pub struct DayCheck {
    /// File name the day resolved to (its pre-repair name).
    pub file: String,
    /// Whether the current manifest commits this day.
    pub committed: bool,
    /// Records that survive a tolerant read.
    pub records: u64,
    /// Records the manifest promised, for committed days.
    pub expected: Option<u64>,
    /// Frame-level damage observed.
    pub damage: DayDamage,
    /// Whether the manifest footer (length / whole-file CRC) matched.
    pub footer_ok: bool,
    /// Overall verdict.
    pub verdict: DayVerdict,
}

impl DayCheck {
    /// Completeness in `[0, 1]`: the fraction of this day's records
    /// that are present and intact. Committed days measure against
    /// the manifest's promise; legacy days against survivors + losses
    /// (the best estimate available without a footer).
    pub fn fraction(&self) -> f64 {
        match self.verdict {
            DayVerdict::Missing => 0.0,
            _ => match self.expected {
                Some(0) | None => {
                    let lost = self.damage.lost_frames();
                    if lost == 0 {
                        1.0
                    } else {
                        self.records as f64 / (self.records + lost) as f64
                    }
                }
                Some(expected) => (self.records as f64 / expected as f64).min(1.0),
            },
        }
    }
}

/// One file moved to quarantine (or that a dry run would move).
#[derive(Debug, Clone)]
pub struct Quarantined {
    /// Original file name.
    pub file: String,
    /// The day it held, when it was a day file.
    pub day: Option<u16>,
    /// Why it was quarantined — written verbatim to the `.why`
    /// provenance sidecar.
    pub reason: String,
}

/// The deterministic result of an fsck pass.
#[derive(Debug, Clone, Default)]
pub struct FsckReport {
    /// Generation of the authoritative manifest, if one verified.
    pub generation: Option<u64>,
    /// Per-day findings, keyed by day number.
    pub days: BTreeMap<u16, DayCheck>,
    /// Damaged or corrupt files quarantined (applied when `repaired`,
    /// planned otherwise).
    pub quarantined: Vec<Quarantined>,
    /// Orphaned generation day files removed as superseded.
    pub orphans_removed: Vec<String>,
    /// Stale (older valid) manifest generations removed.
    pub stale_manifests: Vec<String>,
    /// Stale tmp files swept.
    pub tmp_swept: Vec<String>,
    /// Whether repairs were applied (`false` = read-only dry run).
    pub repaired: bool,
}

impl FsckReport {
    /// Whether the store needs no attention at all.
    pub fn is_healthy(&self) -> bool {
        self.days.values().all(|d| d.verdict == DayVerdict::Clean)
            && self.quarantined.is_empty()
            && self.orphans_removed.is_empty()
            && self.stale_manifests.is_empty()
            && self.tmp_swept.is_empty()
    }

    /// Per-day completeness fractions, ascending by day — the grid a
    /// supervisor folds into its `Coverage` accounting.
    pub fn day_fractions(&self) -> Vec<(u16, f64)> {
        self.days.iter().map(|(&day, check)| (day, check.fraction())).collect()
    }

    /// Renders the report as deterministic, path-free text: the same
    /// directory state always produces byte-identical output, so CI
    /// can diff it against a committed golden file.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let push = |out: &mut String, line: String| {
            out.push_str(&line);
            out.push('\n');
        };
        match self.generation {
            Some(gen) => push(
                &mut out,
                format!("manifest: generation {gen} ({} committed days)", {
                    self.days.values().filter(|d| d.committed).count()
                }),
            ),
            None => push(&mut out, "manifest: none".to_string()),
        }
        for (day, check) in &self.days {
            let kind = if check.committed { "committed" } else { "legacy" };
            let mut line = format!(
                "day {day:04}: {} {kind} ({}",
                check.verdict.label(),
                match check.expected {
                    Some(expected) => format!("{}/{expected} records", check.records),
                    None => format!("{} records", check.records),
                }
            );
            if check.damage.skipped > 0 {
                line.push_str(&format!(", {} mid-file skips", check.damage.skipped));
            }
            if check.damage.resyncs > 0 {
                line.push_str(&format!(", {} resyncs", check.damage.resyncs));
            }
            if check.damage.truncated_tail {
                line.push_str(", truncated tail");
            }
            if !check.footer_ok {
                line.push_str(", footer mismatch");
            }
            line.push(')');
            if check.verdict != DayVerdict::Missing {
                line.push_str(&format!(" [{}]", check.file));
            }
            push(&mut out, line);
        }
        let action = if self.repaired { "" } else { " (dry run)" };
        for q in &self.quarantined {
            push(&mut out, format!("quarantine{action}: {} — {}", q.file, q.reason));
        }
        for name in &self.orphans_removed {
            push(&mut out, format!("orphan removed{action}: {name}"));
        }
        for name in &self.stale_manifests {
            push(&mut out, format!("stale manifest removed{action}: {name}"));
        }
        for name in &self.tmp_swept {
            push(&mut out, format!("tmp swept{action}: {name}"));
        }
        let healthy = self.days.values().filter(|d| d.verdict == DayVerdict::Clean).count();
        let total: f64 = self.days.values().map(DayCheck::fraction).sum();
        let coverage = if self.days.is_empty() { 1.0 } else { total / self.days.len() as f64 };
        push(
            &mut out,
            format!(
                "summary: {} days, {healthy} clean; coverage {coverage:.4}",
                self.days.len()
            ),
        );
        out
    }
}

/// A tolerant scan of one day file's bytes.
struct Scan {
    records: Vec<Record>,
    damage: DayDamage,
}

fn scan_bytes(bytes: &[u8]) -> Scan {
    let mut reader = FrameReader::new(bytes, ReadMode::Tolerant);
    // Tolerant read_all cannot fail.
    let records = reader.read_all().expect("tolerant read");
    let truncated_tail = reader.truncated_tail();
    Scan {
        damage: DayDamage {
            skipped: reader.skipped() - u64::from(truncated_tail),
            truncated_tail,
            resyncs: reader.resyncs(),
            lost_committed: 0,
        },
        records,
    }
}

fn read_file<F: Fs>(fs: &F, path: &Path) -> std::io::Result<Vec<u8>> {
    let mut bytes = Vec::new();
    fs.open_read(path).and_then(|mut f| f.read_to_end(&mut bytes))?;
    Ok(bytes)
}

/// Writes `bytes` durably at `dest` via tmp + fsync + rename. The
/// caller is responsible for the directory fsync.
fn write_durable<F: Fs>(fs: &F, dir: &Path, dest_name: &str, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = dir.join(format!(".{dest_name}.fsck.tmp"));
    let result = (|| {
        let mut file = fs.create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        fs.rename(&tmp, &dir.join(dest_name))
    })();
    if result.is_err() {
        let _ = fs.remove_file(&tmp);
    }
    result
}

/// Moves `name` into the quarantine subdirectory and writes a `.why`
/// provenance sidecar next to it.
fn quarantine_file<F: Fs>(fs: &F, dir: &Path, name: &str, reason: &str) -> std::io::Result<()> {
    let qdir = dir.join(QUARANTINE_DIR);
    fs.create_dir_all(&qdir)?;
    fs.rename(&dir.join(name), &qdir.join(name))?;
    let mut why = fs.create(&qdir.join(format!("{name}.why")))?;
    why.write_all(reason.as_bytes())?;
    why.write_all(b"\n")?;
    why.sync_all()
}

/// Verifies (and with `repair`, fixes) the store rooted at `dir` on
/// the filesystem `fs`. See the module docs for the full contract.
///
/// Errors are reserved for I/O failures that make the directory
/// itself unreadable; damage *inside* the store is never an error —
/// it is the report's subject matter.
pub fn fsck<F: Fs>(fs: &F, dir: &Path, repair: bool) -> Result<FsckReport, StoreError> {
    let io = |path: &Path, e: std::io::Error| StoreError::Io {
        day: None,
        path: path.to_path_buf(),
        source: e,
    };
    fs.create_dir_all(dir).map_err(|e| io(dir, e))?;
    let mut names = fs.read_dir_names(dir).map_err(|e| io(dir, e))?;
    names.sort();

    let mut report = FsckReport { repaired: repair, ..FsckReport::default() };

    // Pass 1: classify the directory.
    let mut manifest_gens: Vec<u64> = Vec::new();
    let mut legacy_days: Vec<(u16, String)> = Vec::new();
    let mut gen_days: Vec<(u16, u64, String)> = Vec::new();
    for name in &names {
        if name == QUARANTINE_DIR {
            continue;
        }
        if name.starts_with('.') && name.ends_with(".tmp") {
            report.tmp_swept.push(name.clone());
            if repair {
                let _ = fs.remove_file(&dir.join(name));
            }
            continue;
        }
        if let Some(gen) = Manifest::parse_file_name(name) {
            manifest_gens.push(gen);
        } else if let Some((day, gen)) = parse_gen_day_file_name(name) {
            gen_days.push((day, gen, name.clone()));
        } else if let Some(day) =
            name.strip_prefix("day-").and_then(|r| r.strip_suffix(".iplog")).and_then(|d| d.parse().ok())
        {
            legacy_days.push((day, name.clone()));
        }
    }

    // Pass 2: resolve the authoritative manifest; everything else is
    // stale (older valid) or corrupt (quarantined).
    manifest_gens.sort_unstable();
    let mut manifest: Option<Manifest> = None;
    for &gen in manifest_gens.iter().rev() {
        let name = Manifest::file_name(gen);
        let decoded = read_file(fs, &dir.join(&name))
            .map_err(|_| ManifestError::Truncated)
            .and_then(|bytes| Manifest::decode(&bytes));
        match decoded {
            Ok(m) if m.generation == gen && manifest.is_none() => manifest = Some(m),
            Ok(_) => {
                report.stale_manifests.push(name.clone());
                if repair {
                    let _ = fs.remove_file(&dir.join(&name));
                }
            }
            Err(e) => {
                let reason = format!("corrupt manifest generation {gen}: {e}");
                report.quarantined.push(Quarantined { file: name.clone(), day: None, reason: reason.clone() });
                if repair {
                    let _ = quarantine_file(fs, dir, &name, &reason);
                }
            }
        }
    }
    report.generation = manifest.as_ref().map(|m| m.generation);

    // Pass 3: verify committed days against their manifest footers
    // and a tolerant frame scan.
    let committed: BTreeMap<u16, DayMeta> =
        manifest.as_ref().map(|m| m.days.clone()).unwrap_or_default();
    // Salvaged committed days to re-commit under a repair generation:
    // (day, surviving records).
    let mut recommit: Vec<(u16, Vec<Record>)> = Vec::new();
    let mut drop_days: Vec<u16> = Vec::new();
    for (&day, meta) in &committed {
        let name = gen_day_file_name(day, meta.generation);
        let bytes = match read_file(fs, &dir.join(&name)) {
            Ok(bytes) => bytes,
            Err(_) => {
                report.days.insert(
                    day,
                    DayCheck {
                        file: name,
                        committed: true,
                        records: 0,
                        expected: Some(meta.records),
                        damage: DayDamage::default(),
                        footer_ok: false,
                        verdict: DayVerdict::Missing,
                    },
                );
                drop_days.push(day);
                continue;
            }
        };
        let footer_ok = bytes.len() as u64 == meta.file_len && crc32(&bytes) == meta.file_crc;
        let mut scan = scan_bytes(&bytes);
        scan.damage.lost_committed = meta.records.saturating_sub(scan.records.len() as u64);
        let clean = footer_ok && scan.damage.is_clean() && scan.records.len() as u64 == meta.records;
        if !clean {
            let reason = format!(
                "committed day {day}: {} of {} records salvaged (footer {})",
                scan.records.len(),
                meta.records,
                if footer_ok { "ok" } else { "mismatch" },
            );
            report.quarantined.push(Quarantined { file: name.clone(), day: Some(day), reason: reason.clone() });
            if repair {
                let _ = quarantine_file(fs, dir, &name, &reason);
                if scan.records.is_empty() {
                    drop_days.push(day);
                } else {
                    recommit.push((day, scan.records.clone()));
                }
            }
        }
        report.days.insert(
            day,
            DayCheck {
                file: name,
                committed: true,
                records: scan.records.len() as u64,
                expected: Some(meta.records),
                damage: scan.damage,
                footer_ok,
                verdict: if clean { DayVerdict::Clean } else { DayVerdict::Damaged },
            },
        );
    }

    // Pass 4: legacy day files. Shadowed ones (their day is committed)
    // are superseded garbage; live ones are scanned.
    for (day, name) in &legacy_days {
        if committed.contains_key(day) {
            report.orphans_removed.push(name.clone());
            if repair {
                let _ = fs.remove_file(&dir.join(name));
            }
            continue;
        }
        let Ok(bytes) = read_file(fs, &dir.join(name)) else {
            continue; // raced away between listing and read
        };
        let scan = scan_bytes(&bytes);
        let clean = scan.damage.is_clean();
        if !clean {
            let reason = format!(
                "legacy day {day}: {} records salvaged, {} frames lost",
                scan.records.len(),
                scan.damage.lost_frames(),
            );
            report.quarantined.push(Quarantined { file: name.clone(), day: Some(*day), reason: reason.clone() });
            if repair {
                let _ = quarantine_file(fs, dir, name, &reason);
                if !scan.records.is_empty() {
                    let mut w = FrameWriter::new(Vec::new());
                    for r in &scan.records {
                        w.write(r).expect("in-memory frame write");
                    }
                    let fixed = w.finish().expect("in-memory frame finish");
                    let _ = write_durable(fs, dir, name, &fixed);
                }
            }
        }
        report.days.insert(
            *day,
            DayCheck {
                file: name.clone(),
                committed: false,
                records: scan.records.len() as u64,
                expected: None,
                damage: scan.damage,
                footer_ok: true,
                verdict: if clean { DayVerdict::Clean } else { DayVerdict::Damaged },
            },
        );
    }

    // Pass 5: reconcile orphaned generation files. With a valid
    // manifest, anything it doesn't reference is superseded or a
    // crashed batch's unpublished write — removed, because adopting
    // it would resurrect uncommitted data. With *no* valid manifest
    // (all generations corrupt), orphans are the only surviving copy:
    // the newest generation of each day is adopted as a legacy file,
    // recorded as a recovered orphan.
    gen_days.sort();
    if manifest.is_some() {
        for (day, gen, name) in &gen_days {
            if committed.get(day).is_some_and(|meta| meta.generation == *gen) {
                continue;
            }
            report.orphans_removed.push(name.clone());
            if repair {
                let _ = fs.remove_file(&dir.join(name));
            }
        }
    } else {
        let mut newest: BTreeMap<u16, (u64, String)> = BTreeMap::new();
        for (day, gen, name) in &gen_days {
            let entry = newest.entry(*day).or_insert((*gen, name.clone()));
            if *gen >= entry.0 {
                *entry = (*gen, name.clone());
            }
        }
        for (day, gen, name) in &gen_days {
            if newest.get(day).is_some_and(|(g, _)| g == gen) {
                continue;
            }
            report.orphans_removed.push(name.clone());
            if repair {
                let _ = fs.remove_file(&dir.join(name));
            }
        }
        for (day, (_, name)) in &newest {
            if report.days.contains_key(day) {
                // A legacy file already covers this day; the orphan
                // is a duplicate from a crashed batch.
                report.orphans_removed.push(name.clone());
                if repair {
                    let _ = fs.remove_file(&dir.join(name));
                }
                continue;
            }
            let Ok(bytes) = read_file(fs, &dir.join(name)) else {
                continue;
            };
            let scan = scan_bytes(&bytes);
            if repair {
                let legacy_name = format!("day-{day:04}.iplog");
                let _ = fs.rename(&dir.join(name), &dir.join(&legacy_name));
            }
            report.days.insert(
                *day,
                DayCheck {
                    file: name.clone(),
                    committed: false,
                    records: scan.records.len() as u64,
                    expected: None,
                    damage: scan.damage,
                    footer_ok: true,
                    verdict: DayVerdict::RecoveredOrphan,
                },
            );
        }
    }

    // Pass 6 (repair only): if committed days were salvaged or lost,
    // publish a corrected manifest generation so readers resolve the
    // repaired state.
    if repair && (!recommit.is_empty() || !drop_days.is_empty()) {
        if let Some(current) = manifest {
            let gen = current.generation + 1;
            let mut next = Manifest { generation: gen, days: current.days };
            for day in &drop_days {
                next.days.remove(day);
            }
            for (day, records) in &recommit {
                let mut w = FrameWriter::new(Vec::new());
                for r in records {
                    w.write(r).expect("in-memory frame write");
                }
                let bytes = w.finish().expect("in-memory frame finish");
                let name = gen_day_file_name(*day, gen);
                write_durable(fs, dir, &name, &bytes).map_err(|e| io(&dir.join(&name), e))?;
                next.days.insert(
                    *day,
                    DayMeta {
                        generation: gen,
                        records: records.len() as u64,
                        file_len: bytes.len() as u64,
                        file_crc: crc32(&bytes),
                    },
                );
            }
            fs.sync_dir(dir).map_err(|e| io(dir, e))?;
            write_durable(fs, dir, &Manifest::file_name(gen), &next.encode())
                .map_err(|e| io(dir, e))?;
            fs.sync_dir(dir).map_err(|e| io(dir, e))?;
            let _ = fs.remove_file(&Manifest::path(dir, gen - 1));
            report.generation = Some(gen);
        }
    }

    // The quarantine plan accumulates across passes in pass order;
    // sort it so the report is independent of traversal details.
    report.quarantined.sort_by(|a, b| a.file.cmp(&b.file));
    report.orphans_removed.sort();
    report.orphans_removed.dedup();
    Ok(report)
}

/// [`fsck`] with an observability registry: every verdict in the
/// returned [`FsckReport`] is also published as `fsck.*` counters and
/// journal events ([`EventKind::FsckQuarantine`] /
/// [`EventKind::FsckAdopt`] / [`EventKind::FsckSalvage`] /
/// [`EventKind::FsckRepair`]).
///
/// The events are derived from the report itself — not from a second
/// scan — so a metrics view and a rendered report of the same pass
/// agree on counts by construction.
pub fn fsck_obs<F: Fs>(
    fs: &F,
    dir: &Path,
    repair: bool,
    registry: &Registry,
) -> Result<FsckReport, StoreError> {
    let report = fsck(fs, dir, repair)?;
    record_fsck(registry, &report);
    Ok(report)
}

/// Publishes an [`FsckReport`] into `registry`. Factored out of
/// [`fsck_obs`] so a caller that already holds a report (e.g. one
/// produced through plain [`fsck`]) can account for it later.
pub fn record_fsck(registry: &Registry, report: &FsckReport) {
    for q in &report.quarantined {
        let mut ev = Event::new(EventKind::FsckQuarantine).detail(q.reason.clone());
        if let Some(day) = q.day {
            ev = ev.day(day);
        }
        registry.emit(ev);
    }
    registry.counter("fsck.quarantined").add(report.quarantined.len() as u64);

    let mut clean = 0u64;
    let mut damaged = 0u64;
    let mut missing = 0u64;
    let mut adopted = 0u64;
    let mut salvaged = 0u64;
    for (&day, check) in &report.days {
        match check.verdict {
            DayVerdict::Clean => clean += 1,
            DayVerdict::Damaged => {
                damaged += 1;
                if check.records > 0 {
                    salvaged += check.records;
                    registry.emit(
                        Event::new(EventKind::FsckSalvage)
                            .day(day)
                            .detail(format!("{} records salvaged from damaged day", check.records)),
                    );
                }
            }
            DayVerdict::Missing => missing += 1,
            DayVerdict::RecoveredOrphan => {
                adopted += 1;
                registry.emit(
                    Event::new(EventKind::FsckAdopt)
                        .day(day)
                        .detail(format!("orphan generation adopted ({} records)", check.records)),
                );
            }
        }
    }
    registry.counter("fsck.days_clean").add(clean);
    registry.counter("fsck.days_damaged").add(damaged);
    registry.counter("fsck.days_missing").add(missing);
    registry.counter("fsck.adopted_orphans").add(adopted);
    registry.counter("fsck.salvaged_records").add(salvaged);
    registry.counter("fsck.orphans_removed").add(report.orphans_removed.len() as u64);
    registry.counter("fsck.stale_manifests").add(report.stale_manifests.len() as u64);
    registry.counter("fsck.tmp_swept").add(report.tmp_swept.len() as u64);

    if report.repaired && !report.is_healthy() {
        // Path-free fixed detail: tmp and quarantine names can embed
        // pids, which a deterministic snapshot must not.
        registry.emit(Event::new(EventKind::FsckRepair).detail(format!(
            "repair pass: {} quarantined, {} orphans removed, {} tmp swept",
            report.quarantined.len(),
            report.orphans_removed.len(),
            report.tmp_swept.len(),
        )));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::SimFs;
    use crate::LogStore;
    use ipactive_net::Addr;
    use std::path::PathBuf;

    fn recs(day: u16, n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Hits { day, addr: Addr::new(0x0B000000 + i), hits: u64::from(i) + 1 })
            .collect()
    }

    fn dir() -> PathBuf {
        PathBuf::from("/store")
    }

    #[test]
    fn healthy_store_reports_clean() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.write_day(0, &recs(0, 5)).unwrap();
        store.commit_days(&[(1, recs(1, 7))]).unwrap();
        let report = fsck(&fs, &dir(), false).unwrap();
        assert!(report.is_healthy(), "unexpected findings:\n{}", report.render());
        assert_eq!(report.generation, Some(1));
        assert_eq!(report.day_fractions(), vec![(0, 1.0), (1, 1.0)]);
        assert_eq!(report.days[&1].expected, Some(7));
    }

    #[test]
    fn dry_run_is_read_only() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 6))]).unwrap();
        // Corrupt the committed day's file mid-way.
        let path = dir().join(gen_day_file_name(0, 1));
        let mut bytes = fs.visible(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs.put_file(&path, &bytes);
        let before = fs.read_dir_names(&dir()).unwrap();
        let report = fsck(&fs, &dir(), false).unwrap();
        assert!(!report.is_healthy());
        assert_eq!(report.days[&0].verdict, DayVerdict::Damaged);
        assert!(!report.days[&0].footer_ok);
        assert_eq!(
            fs.read_dir_names(&dir()).unwrap(),
            before,
            "dry run must not touch the directory"
        );
    }

    #[test]
    fn repair_quarantines_and_recommits_salvage() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 6)), (1, recs(1, 4))]).unwrap();
        let path = dir().join(gen_day_file_name(0, 1));
        let mut bytes = fs.visible(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs.put_file(&path, &bytes);

        let report = fsck(&fs, &dir(), true).unwrap();
        assert_eq!(report.days[&0].verdict, DayVerdict::Damaged);
        assert_eq!(report.generation, Some(2), "repair must publish a corrected generation");
        assert!(fs.exists(&dir().join(QUARANTINE_DIR).join(gen_day_file_name(0, 1))));
        assert!(fs
            .exists(&dir().join(QUARANTINE_DIR).join(format!("{}.why", gen_day_file_name(0, 1)))));

        // The repaired store opens cleanly: day 0 holds the salvage
        // with a footer that now matches, day 1 is untouched.
        let repaired = LogStore::open_on(fs.clone(), dir()).unwrap();
        assert_eq!(repaired.manifest().unwrap().generation, 2);
        let (salvaged, damage) = repaired.read_day(0, ReadMode::Strict).unwrap();
        assert!(damage.is_clean());
        assert!(salvaged.len() < 6, "salvage should have lost the damaged frame(s)");
        assert_eq!(repaired.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 4));
        // A second pass finds nothing left to do.
        let again = fsck(&fs, &dir(), false).unwrap();
        assert!(again.is_healthy(), "repair did not converge:\n{}", again.render());
    }

    #[test]
    fn repair_drops_missing_committed_day_from_manifest() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 3)), (1, recs(1, 3))]).unwrap();
        fs.remove_file(&dir().join(gen_day_file_name(0, 1))).unwrap();
        let report = fsck(&fs, &dir(), true).unwrap();
        assert_eq!(report.days[&0].verdict, DayVerdict::Missing);
        assert_eq!(report.day_fractions()[0], (0, 0.0));
        let repaired = LogStore::open_on(fs.clone(), dir()).unwrap();
        assert_eq!(repaired.committed_days(), vec![1], "lost day must leave the manifest");
    }

    #[test]
    fn all_manifests_corrupt_recovers_orphans() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 5))]).unwrap();
        store.commit_days(&[(1, recs(1, 2))]).unwrap();
        // Tear the sole manifest (gen 1 was GC'd by the second commit).
        let mpath = Manifest::path(&dir(), 2);
        let bytes = fs.visible(&mpath).unwrap();
        fs.put_file(&mpath, &bytes[..bytes.len() - 2]);
        assert!(LogStore::open_on(fs.clone(), dir()).is_err(), "open must refuse this store");

        let report = fsck(&fs, &dir(), true).unwrap();
        assert_eq!(report.generation, None);
        assert_eq!(report.days[&0].verdict, DayVerdict::RecoveredOrphan);
        assert_eq!(report.days[&1].verdict, DayVerdict::RecoveredOrphan);
        // After repair the store opens manifest-less with both days
        // adopted as legacy files.
        let recovered = LogStore::open_on(fs.clone(), dir()).unwrap();
        assert!(recovered.manifest().is_none());
        assert_eq!(recovered.days().unwrap(), vec![0, 1]);
        assert_eq!(recovered.read_day(0, ReadMode::Strict).unwrap().0, recs(0, 5));
        assert_eq!(recovered.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 2));
    }

    #[test]
    fn orphans_under_a_valid_manifest_are_removed_not_adopted() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 5))]).unwrap();
        // Plant a crashed batch's unpublished day file.
        let orphan = dir().join(gen_day_file_name(9, 2));
        fs.put_file(&orphan, b"whatever");
        let report = fsck(&fs, &dir(), true).unwrap();
        assert!(report.orphans_removed.contains(&gen_day_file_name(9, 2)));
        assert!(!fs.exists(&orphan), "uncommitted orphan must not survive repair");
        assert!(!report.days.contains_key(&9), "uncommitted data must not be resurrected");
    }

    #[test]
    fn render_is_deterministic_and_path_free() {
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.write_day(2, &recs(2, 3)).unwrap();
        store.commit_days(&[(0, recs(0, 4))]).unwrap();
        let a = fsck(&fs, &dir(), false).unwrap().render();
        let b = fsck(&fs, &dir(), false).unwrap().render();
        assert_eq!(a, b);
        assert!(!a.contains("/store"), "report must not leak paths:\n{a}");
        assert!(a.contains("manifest: generation 1"));
        assert!(a.contains("day 0000: clean committed (4/4 records)"));
        assert!(a.contains("day 0002: clean legacy (3 records)"));
        assert!(a.contains("summary: 2 days, 2 clean; coverage 1.0000"));
    }

    #[test]
    fn fsck_obs_events_agree_with_the_report() {
        use ipactive_obs::{Registry, SnapshotMode};
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 6)), (1, recs(1, 4))]).unwrap();
        store.write_day(2, &recs(2, 5)).unwrap();
        // Damage the committed day 0 and the legacy day 2.
        for path in [dir().join(gen_day_file_name(0, 1)), dir().join("day-0002.iplog")] {
            let mut bytes = fs.visible(&path).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x55;
            fs.put_file(&path, &bytes);
        }
        let reg = Registry::new();
        let report = fsck_obs(&fs, &dir(), true, &reg).unwrap();
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(
            snap.counter("fsck.quarantined"),
            report.quarantined.len() as u64,
            "metrics and report disagree on quarantine count"
        );
        assert_eq!(
            snap.events_of(EventKind::FsckQuarantine).count(),
            report.quarantined.len()
        );
        let damaged = report.days.values().filter(|d| d.verdict == DayVerdict::Damaged).count();
        assert_eq!(snap.counter("fsck.days_damaged"), damaged as u64);
        let salvaged: u64 = report
            .days
            .values()
            .filter(|d| d.verdict == DayVerdict::Damaged)
            .map(|d| d.records)
            .sum();
        assert_eq!(snap.counter("fsck.salvaged_records"), salvaged);
        assert_eq!(snap.events_of(EventKind::FsckSalvage).count(), 2);
        assert_eq!(snap.events_of(EventKind::FsckRepair).count(), 1, "repair pass is journaled");

        // A second pass over the repaired store publishes all-clean
        // numbers into a fresh registry.
        let reg2 = Registry::new();
        let again = fsck_obs(&fs, &dir(), false, &reg2).unwrap();
        assert!(again.is_healthy());
        let snap2 = reg2.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap2.counter("fsck.quarantined"), 0);
        assert_eq!(snap2.counter("fsck.days_clean"), again.days.len() as u64);
        assert_eq!(snap2.events.len(), 0, "healthy pass journals nothing");
    }

    #[test]
    fn adopted_orphans_are_journaled_as_fsck_adopt() {
        use ipactive_obs::{Registry, SnapshotMode};
        let fs = SimFs::new();
        let mut store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.commit_days(&[(0, recs(0, 5))]).unwrap();
        let mpath = Manifest::path(&dir(), 1);
        let bytes = fs.visible(&mpath).unwrap();
        fs.put_file(&mpath, &bytes[..bytes.len() - 2]);
        let reg = Registry::new();
        let report = fsck_obs(&fs, &dir(), true, &reg).unwrap();
        assert_eq!(report.days[&0].verdict, DayVerdict::RecoveredOrphan);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("fsck.adopted_orphans"), 1);
        let adopt: Vec<_> = snap.events_of(EventKind::FsckAdopt).collect();
        assert_eq!(adopt.len(), 1);
        assert_eq!(adopt[0].day, Some(0));
    }

    #[test]
    fn damaged_legacy_day_fraction_counts_survivors() {
        let fs = SimFs::new();
        let store = LogStore::open_on(fs.clone(), dir()).unwrap();
        store.write_day(0, &recs(0, 9)).unwrap();
        // Truncate mid-frame: the Finish marker (and maybe a record)
        // is cut, leaving a truncated tail.
        let path = dir().join("day-0000.iplog");
        let bytes = fs.visible(&path).unwrap();
        fs.put_file(&path, &bytes[..bytes.len() - 3]);
        let report = fsck(&fs, &dir(), false).unwrap();
        let check = &report.days[&0];
        assert_eq!(check.verdict, DayVerdict::Damaged);
        assert!(check.damage.truncated_tail);
        let (_, frac) = report.day_fractions()[0];
        assert!(frac > 0.8 && frac < 1.0, "fraction {frac} out of range");
    }
}
