//! LEB128 variable-length integers.
//!
//! All integer fields on the wire are unsigned LEB128: 7 payload bits
//! per byte, continuation in the high bit, at most 10 bytes for a `u64`.

use bytes::{Buf, BufMut};
use core::fmt;

/// Maximum encoded size of a `u64` varint.
pub const MAX_LEN: usize = 10;

/// Error decoding a varint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VarintError {
    /// The input ended before the terminating byte.
    Truncated,
    /// More than 10 bytes, or bits beyond the 64th set.
    Overflow,
}

impl fmt::Display for VarintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VarintError::Truncated => write!(f, "varint truncated"),
            VarintError::Overflow => write!(f, "varint overflows u64"),
        }
    }
}

impl std::error::Error for VarintError {}

/// Appends the LEB128 encoding of `v` to `buf`.
pub fn encode_u64<B: BufMut>(buf: &mut B, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes a LEB128 `u64` from the front of `buf`, advancing it.
pub fn decode_u64<B: Buf>(buf: &mut B) -> Result<u64, VarintError> {
    let mut value: u64 = 0;
    for shift in (0..MAX_LEN as u32).map(|i| i * 7) {
        if !buf.has_remaining() {
            return Err(VarintError::Truncated);
        }
        let byte = buf.get_u8();
        let payload = (byte & 0x7F) as u64;
        if shift == 63 && payload > 1 {
            return Err(VarintError::Overflow);
        }
        value |= payload << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(VarintError::Overflow)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> usize {
        let mut buf = Vec::new();
        encode_u64(&mut buf, v);
        let len = buf.len();
        let mut slice = &buf[..];
        assert_eq!(decode_u64(&mut slice).unwrap(), v);
        assert!(slice.is_empty(), "decoder must consume exactly the varint");
        len
    }

    #[test]
    fn roundtrip_boundaries() {
        assert_eq!(roundtrip(0), 1);
        assert_eq!(roundtrip(127), 1);
        assert_eq!(roundtrip(128), 2);
        assert_eq!(roundtrip(16_383), 2);
        assert_eq!(roundtrip(16_384), 3);
        assert_eq!(roundtrip(u32::MAX as u64), 5);
        assert_eq!(roundtrip(u64::MAX), 10);
    }

    #[test]
    fn truncated_input() {
        let mut buf = Vec::new();
        encode_u64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut slice = &buf[..cut];
            assert_eq!(decode_u64(&mut slice), Err(VarintError::Truncated));
        }
    }

    #[test]
    fn overflow_detected() {
        // 10 continuation bytes then more.
        let buf = [0xFFu8; 11];
        let mut slice = &buf[..];
        assert_eq!(decode_u64(&mut slice), Err(VarintError::Overflow));
        // Exactly 10 bytes but top bits beyond 64 set (last byte 0x7F).
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x7F);
        let mut slice = &buf[..];
        assert_eq!(decode_u64(&mut slice), Err(VarintError::Overflow));
    }

    #[test]
    fn max_u64_is_valid() {
        let mut buf = vec![0xFFu8; 9];
        buf.push(0x01);
        let mut slice = &buf[..];
        assert_eq!(decode_u64(&mut slice), Ok(u64::MAX));
    }
}
