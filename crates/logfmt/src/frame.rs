//! Length-delimited, checksummed framing.
//!
//! Frame layout on the wire:
//!
//! ```text
//! +--------+-------------------+------------------+----------------+
//! | 0xA5   | payload_len (LEB) | payload          | crc32 (4B LE)  |
//! +--------+-------------------+------------------+----------------+
//! ```
//!
//! The CRC covers the payload bytes only. The leading sync byte lets a
//! tolerant reader distinguish "clean end of stream" from "stream died
//! mid-frame" and catch gross desynchronization cheaply.

use crate::record::{DecodeError, Record};
use crate::varint::{decode_u64, encode_u64, VarintError};
use crate::crc::crc32;
use std::io::{self, Read, Write};

/// Frame sync byte. A value unlikely to begin valid varint runs.
pub(crate) const SYNC: u8 = 0xA5;

/// Upper bound on a single frame payload; anything larger is treated as
/// corruption (records are tiny — tens of bytes).
pub(crate) const MAX_PAYLOAD: u64 = 1 << 16;

/// How a [`FrameReader`] reacts to damaged frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadMode {
    /// Return an error on the first damaged frame.
    Strict,
    /// Skip frames with bad checksums or undecodable payloads, scan
    /// forward to the next sync byte after desynchronization, and keep
    /// reading. Data can be lost but never fabricated (every delivered
    /// frame passed its CRC). Skipped frames are counted in
    /// [`FrameReader::skipped`], resynchronizations in
    /// [`FrameReader::resyncs`].
    Tolerant,
}

/// Streaming writer of framed [`Record`]s.
pub struct FrameWriter<W: Write> {
    inner: W,
    scratch: Vec<u8>,
    // Persistent header scratch (sync byte + varint length, ≤ 11
    // bytes): `write` is the hottest path in the pipeline, and a
    // fresh Vec per record was a measurable allocator tax.
    header: Vec<u8>,
    written: u64,
}

impl<W: Write> FrameWriter<W> {
    /// Wraps a byte sink.
    pub fn new(inner: W) -> Self {
        FrameWriter {
            inner,
            scratch: Vec::with_capacity(64),
            header: Vec::with_capacity(11),
            written: 0,
        }
    }

    /// Writes one record as a frame.
    pub fn write(&mut self, rec: &Record) -> io::Result<()> {
        self.scratch.clear();
        rec.encode(&mut self.scratch);
        self.header.clear();
        self.header.push(SYNC);
        encode_u64(&mut self.header, self.scratch.len() as u64);
        self.inner.write_all(&self.header)?;
        self.inner.write_all(&self.scratch)?;
        self.inner.write_all(&crc32(&self.scratch).to_le_bytes())?;
        self.written += 1;
        Ok(())
    }

    /// Number of frames written so far.
    pub fn frames_written(&self) -> u64 {
        self.written
    }

    /// Writes the [`Record::Finish`] marker and flushes, consuming the
    /// writer and returning the sink.
    pub fn finish(mut self) -> io::Result<W> {
        self.write(&Record::Finish)?;
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Error from [`FrameReader::read`].
#[derive(Debug)]
pub enum FrameError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Stream ended inside a frame.
    TruncatedFrame,
    /// Sync byte missing where a frame should begin.
    LostSync {
        /// The byte found instead of the sync marker.
        found: u8,
    },
    /// Declared payload length is implausible.
    OversizedFrame(u64),
    /// Payload length field malformed.
    BadLength(VarintError),
    /// Checksum mismatch (strict mode only; tolerant mode skips).
    BadChecksum,
    /// Payload did not decode as a record (strict mode only).
    BadRecord(DecodeError),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io error: {e}"),
            FrameError::TruncatedFrame => write!(f, "stream truncated mid-frame"),
            FrameError::LostSync { found } => write!(f, "lost frame sync (found {found:#04x})"),
            FrameError::OversizedFrame(n) => write!(f, "frame length {n} exceeds limit"),
            FrameError::BadLength(e) => write!(f, "bad frame length: {e}"),
            FrameError::BadChecksum => write!(f, "frame checksum mismatch"),
            FrameError::BadRecord(e) => write!(f, "bad record payload: {e}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Maximum bytes of a damaged frame captured into its
/// [`QuarantinedFrame`] — enough for post-mortem, bounded so a long
/// garbage run cannot balloon the quarantine.
pub const QUARANTINE_CAPTURE_CAP: usize = 256;

/// Why a frame landed in the quarantine (tolerant mode only; strict
/// mode surfaces the matching [`FrameError`] instead).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuarantineReason {
    /// The payload length varint was malformed.
    BadLength,
    /// The declared payload length exceeded the frame size limit.
    Oversized,
    /// The payload failed its CRC-32 check.
    BadChecksum,
    /// The payload passed its CRC but did not decode as a record.
    BadRecord,
    /// The stream ended inside the frame.
    Truncated,
    /// A garbage run between frames (the reader scanned forward to the
    /// next sync byte).
    Desync,
}

/// One undecodable frame (or inter-frame garbage run) retained for
/// post-mortem instead of being silently discarded: where in the
/// stream it began, what kind of damage it showed, and up to
/// [`QUARANTINE_CAPTURE_CAP`] bytes of the offending content.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedFrame {
    /// Byte offset in the stream where the damaged region began.
    pub offset: u64,
    /// Captured prefix of the offending payload or garbage run
    /// (empty when the damage left nothing to capture, e.g. a
    /// truncation inside the header).
    pub captured: Vec<u8>,
    /// The damage classification.
    pub reason: QuarantineReason,
}

/// Streaming reader of framed [`Record`]s.
///
/// `read()` returns `Ok(None)` when the stream ends cleanly: either at
/// a [`Record::Finish`] marker or at EOF on a frame boundary.
///
/// In tolerant mode the reader can additionally *quarantine* what it
/// skips: enable capture with [`FrameReader::capture_quarantine`] and
/// every damaged frame is retained as a [`QuarantinedFrame`] with its
/// stream offset — the raw material a dead-letter queue needs for
/// post-mortem. Capture is off by default (zero overhead).
pub struct FrameReader<R: Read> {
    inner: R,
    mode: ReadMode,
    skipped: u64,
    resyncs: u64,
    truncated: bool,
    finished: bool,
    pos: u64,
    capture: bool,
    quarantine: Vec<QuarantinedFrame>,
}

impl<R: Read> FrameReader<R> {
    /// Wraps a byte source.
    pub fn new(inner: R, mode: ReadMode) -> Self {
        FrameReader {
            inner,
            mode,
            skipped: 0,
            resyncs: 0,
            truncated: false,
            finished: false,
            pos: 0,
            capture: false,
            quarantine: Vec::new(),
        }
    }

    /// Number of damaged frames skipped (tolerant mode).
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Number of times the reader had to scan for a new sync byte
    /// after losing framing (tolerant mode).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Whether the stream ended *inside* a frame (tolerant mode) —
    /// the signature of a file cut short at EOF, as opposed to frames
    /// lost mid-stream, which move [`FrameReader::skipped`] without
    /// setting this flag. A truncated tail also counts as one skipped
    /// frame, so `skipped() - truncated_tail() as u64` is the
    /// mid-stream loss alone.
    pub fn truncated_tail(&self) -> bool {
        self.truncated
    }

    /// Current byte offset in the stream (bytes consumed so far).
    pub fn position(&self) -> u64 {
        self.pos
    }

    /// Enables (or disables) quarantine capture of damaged frames.
    pub fn capture_quarantine(mut self, enabled: bool) -> Self {
        self.capture = enabled;
        self
    }

    /// The frames quarantined so far (empty unless capture is on).
    pub fn quarantine(&self) -> &[QuarantinedFrame] {
        &self.quarantine
    }

    /// Drains the quarantine, transferring ownership to the caller.
    pub fn take_quarantine(&mut self) -> Vec<QuarantinedFrame> {
        std::mem::take(&mut self.quarantine)
    }

    fn quarantine_push(&mut self, offset: u64, reason: QuarantineReason, bytes: &[u8]) {
        if self.capture {
            let captured = bytes[..bytes.len().min(QUARANTINE_CAPTURE_CAP)].to_vec();
            self.quarantine.push(QuarantinedFrame { offset, captured, reason });
        }
    }

    fn read_byte(&mut self) -> io::Result<Option<u8>> {
        let mut b = [0u8; 1];
        loop {
            match self.inner.read(&mut b) {
                Ok(0) => return Ok(None),
                Ok(_) => {
                    self.pos += 1;
                    return Ok(Some(b[0]));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn read_exact_or_trunc(&mut self, buf: &mut [u8]) -> Result<(), FrameError> {
        match self.inner.read_exact(buf) {
            Ok(()) => {
                self.pos += buf.len() as u64;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => Err(FrameError::TruncatedFrame),
            Err(e) => Err(FrameError::Io(e)),
        }
    }

    /// Reads the next record, `Ok(None)` at clean end of stream.
    pub fn read(&mut self) -> Result<Option<Record>, FrameError> {
        loop {
            if self.finished {
                return Ok(None);
            }
            // Offset of the frame (or garbage run) about to be read.
            let frame_start = self.pos;
            // Sync byte, or EOF on a frame boundary.
            let sync = match self.read_byte()? {
                None => return Ok(None),
                Some(b) => b,
            };
            if sync != SYNC {
                match self.mode {
                    ReadMode::Strict => return Err(FrameError::LostSync { found: sync }),
                    ReadMode::Tolerant => {
                        // Scan forward to the next sync byte. A false
                        // positive (0xA5 inside data) is harmless: its
                        // CRC will not verify and we scan again.
                        self.resyncs += 1;
                        // Accumulate the garbage run only when capture
                        // is on: `Vec::new()` never allocates, so the
                        // capture-off path stays zero overhead.
                        let mut run = if self.capture { vec![sync] } else { Vec::new() };
                        let ended = loop {
                            match self.read_byte()? {
                                None => break true,
                                Some(b) if b == SYNC => break false,
                                Some(b) => {
                                    if self.capture && run.len() < QUARANTINE_CAPTURE_CAP {
                                        run.push(b);
                                    }
                                }
                            }
                        };
                        self.quarantine_push(frame_start, QuarantineReason::Desync, &run);
                        if ended {
                            return Ok(None);
                        }
                    }
                }
            }
            // Payload length (varint, byte-at-a-time off the reader).
            let mut len_raw = Vec::with_capacity(4);
            let len = match self.read_len(&mut len_raw) {
                Ok(len) => len,
                Err(e) => match self.mode {
                    ReadMode::Strict => return Err(e),
                    ReadMode::Tolerant => match e {
                        // Mid-stream garbage: drop the frame and rescan.
                        FrameError::BadLength(_) => {
                            self.skipped += 1;
                            self.quarantine_push(
                                frame_start,
                                QuarantineReason::BadLength,
                                &len_raw,
                            );
                            continue;
                        }
                        // EOF inside the length field: stream over.
                        FrameError::TruncatedFrame => {
                            self.skipped += 1;
                            self.truncated = true;
                            self.quarantine_push(
                                frame_start,
                                QuarantineReason::Truncated,
                                &len_raw,
                            );
                            return Ok(None);
                        }
                        other => return Err(other),
                    },
                },
            };
            if len > MAX_PAYLOAD {
                match self.mode {
                    ReadMode::Strict => return Err(FrameError::OversizedFrame(len)),
                    ReadMode::Tolerant => {
                        self.skipped += 1;
                        self.quarantine_push(frame_start, QuarantineReason::Oversized, &len_raw);
                        continue; // rescan from here
                    }
                }
            }
            let mut payload = vec![0u8; len as usize];
            if let Err(e) = self.read_exact_or_trunc(&mut payload) {
                match (self.mode, e) {
                    (ReadMode::Tolerant, FrameError::TruncatedFrame) => {
                        self.skipped += 1;
                        self.truncated = true;
                        self.quarantine_push(frame_start, QuarantineReason::Truncated, &[]);
                        return Ok(None);
                    }
                    (_, e) => return Err(e),
                }
            }
            let mut crc_bytes = [0u8; 4];
            if let Err(e) = self.read_exact_or_trunc(&mut crc_bytes) {
                match (self.mode, e) {
                    (ReadMode::Tolerant, FrameError::TruncatedFrame) => {
                        self.skipped += 1;
                        self.truncated = true;
                        self.quarantine_push(frame_start, QuarantineReason::Truncated, &payload);
                        return Ok(None);
                    }
                    (_, e) => return Err(e),
                }
            }
            let crc_ok = crc32(&payload) == u32::from_le_bytes(crc_bytes);
            if !crc_ok {
                match self.mode {
                    ReadMode::Strict => return Err(FrameError::BadChecksum),
                    ReadMode::Tolerant => {
                        self.skipped += 1;
                        self.quarantine_push(frame_start, QuarantineReason::BadChecksum, &payload);
                        continue;
                    }
                }
            }
            match Record::decode(&payload) {
                Ok(Record::Finish) => {
                    self.finished = true;
                    return Ok(None);
                }
                Ok(rec) => return Ok(Some(rec)),
                Err(e) => match self.mode {
                    ReadMode::Strict => return Err(FrameError::BadRecord(e)),
                    ReadMode::Tolerant => {
                        self.skipped += 1;
                        self.quarantine_push(frame_start, QuarantineReason::BadRecord, &payload);
                        continue;
                    }
                },
            }
        }
    }

    fn read_len(&mut self, raw: &mut Vec<u8>) -> Result<u64, FrameError> {
        // Collect up to MAX varint bytes from the reader, then decode.
        // `raw` receives every byte consumed, so callers can quarantine
        // the malformed header on failure.
        loop {
            let b = match self.read_byte()? {
                None => return Err(FrameError::TruncatedFrame),
                Some(b) => b,
            };
            raw.push(b);
            if b & 0x80 == 0 {
                break;
            }
            if raw.len() >= crate::varint::MAX_LEN {
                return Err(FrameError::BadLength(VarintError::Overflow));
            }
        }
        let mut slice = &raw[..];
        decode_u64(&mut slice).map_err(FrameError::BadLength)
    }

    /// Drains the stream into a vector (convenience for tests/tools).
    pub fn read_all(&mut self) -> Result<Vec<Record>, FrameError> {
        let mut out = Vec::new();
        while let Some(rec) = self.read()? {
            out.push(rec);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::DayStart { day: 0 },
            Record::Hits { day: 0, addr: Addr::from_octets(10, 0, 0, 1), hits: 3 },
            Record::Hits { day: 0, addr: Addr::from_octets(10, 0, 0, 2), hits: 999_999 },
            Record::UaSample { day: 0, addr: Addr::from_octets(10, 0, 0, 1), ua_hash: 42 },
            Record::DayStart { day: 1 },
            Record::Hits { day: 1, addr: Addr::from_octets(192, 0, 2, 200), hits: 1 },
        ]
    }

    fn encode_stream(records: &[Record]) -> Vec<u8> {
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        for r in records {
            w.write(r).unwrap();
        }
        w.finish().unwrap();
        buf
    }

    #[test]
    fn roundtrip_stream() {
        let records = sample_records();
        let buf = encode_stream(&records);
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert_eq!(r.read_all().unwrap(), records);
        assert_eq!(r.skipped(), 0);
    }

    #[test]
    fn finish_marker_terminates_even_with_trailing_data() {
        let records = sample_records();
        let mut buf = encode_stream(&records);
        buf.extend_from_slice(b"trailing garbage that must never be read");
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert_eq!(r.read_all().unwrap(), records);
    }

    #[test]
    fn eof_on_frame_boundary_is_clean() {
        // Stream without a Finish marker: still a clean end.
        let mut buf = Vec::new();
        let mut w = FrameWriter::new(&mut buf);
        w.write(&Record::DayStart { day: 9 }).unwrap();
        assert_eq!(w.frames_written(), 1);
        drop(w);
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert_eq!(r.read().unwrap(), Some(Record::DayStart { day: 9 }));
        assert_eq!(r.read().unwrap(), None);
    }

    #[test]
    fn truncation_mid_frame_detected() {
        let buf = encode_stream(&sample_records());
        // Cut inside the second frame.
        let cut = buf.len() / 2;
        let mut r = FrameReader::new(&buf[..cut], ReadMode::Strict);
        let err = loop {
            match r.read() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("truncated stream read cleanly"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, FrameError::TruncatedFrame | FrameError::BadChecksum),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn strict_mode_rejects_corruption() {
        let mut buf = encode_stream(&sample_records());
        // Flip a bit inside the first frame's payload (skip sync+len).
        buf[3] ^= 0x10;
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert!(matches!(r.read(), Err(FrameError::BadChecksum)));
    }

    #[test]
    fn tolerant_mode_skips_corrupt_frames() {
        let records = sample_records();
        let mut buf = encode_stream(&records);
        buf[3] ^= 0x10; // corrupt payload of frame 0
        let mut r = FrameReader::new(&buf[..], ReadMode::Tolerant);
        let got = r.read_all().unwrap();
        assert_eq!(got, records[1..].to_vec());
        assert_eq!(r.skipped(), 1);
    }

    #[test]
    fn lost_sync_is_fatal_in_strict_mode() {
        let mut buf = encode_stream(&sample_records());
        buf[0] = 0x00; // clobber the first sync byte
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert!(matches!(r.read(), Err(FrameError::LostSync { found: 0 })));
    }

    #[test]
    fn tolerant_mode_resynchronizes_after_lost_sync() {
        let records = sample_records();
        let mut buf = encode_stream(&records);
        buf[0] = 0x00; // clobber the first sync byte
        let mut r = FrameReader::new(&buf[..], ReadMode::Tolerant);
        let got = r.read_all().unwrap();
        // Frame 0 is lost; everything after the resync point survives.
        assert!(r.resyncs() >= 1);
        assert!(!got.is_empty());
        for rec in &got {
            assert!(records.contains(rec), "fabricated {rec:?}");
        }
        assert!(got.len() >= records.len() - 1);
    }

    #[test]
    fn tolerant_mode_survives_length_field_corruption() {
        // Corrupting the length field desyncs the reader mid-stream;
        // it must scan to the next frame rather than give up.
        let records = sample_records();
        let mut buf = encode_stream(&records);
        // Find the second frame's length byte (sync at some offset).
        let second_sync = buf[1..].iter().position(|&b| b == SYNC).unwrap() + 1;
        buf[second_sync + 1] = 0x7F; // absurd length, still < MAX_PAYLOAD
        let mut r = FrameReader::new(&buf[..], ReadMode::Tolerant);
        let got = r.read_all().unwrap();
        for rec in &got {
            assert!(records.contains(rec), "fabricated {rec:?}");
        }
        // We must still recover at least one later record or cleanly end.
        assert!(r.skipped() + r.resyncs() >= 1 || got.len() == records.len());
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = vec![SYNC];
        crate::varint::encode_u64(&mut buf, MAX_PAYLOAD + 1);
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert!(matches!(r.read(), Err(FrameError::OversizedFrame(_))));
    }

    #[test]
    fn quarantine_off_by_default() {
        let mut buf = encode_stream(&sample_records());
        buf[3] ^= 0x10;
        let mut r = FrameReader::new(&buf[..], ReadMode::Tolerant);
        r.read_all().unwrap();
        assert_eq!(r.skipped(), 1);
        assert!(r.quarantine().is_empty());
    }

    #[test]
    fn quarantine_captures_bad_checksum_with_offset() {
        let records = sample_records();
        let mut buf = encode_stream(&records);
        buf[3] ^= 0x10; // corrupt payload of frame 0 (sync at 0, len at 1..2)
        let mut r =
            FrameReader::new(&buf[..], ReadMode::Tolerant).capture_quarantine(true);
        let got = r.read_all().unwrap();
        assert_eq!(got, records[1..].to_vec());
        let q = r.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].offset, 0, "frame 0 begins at stream offset 0");
        assert_eq!(q[0].reason, QuarantineReason::BadChecksum);
        // The captured bytes are the damaged payload as read off the wire.
        assert_eq!(q[0].captured[1], buf[3]);
    }

    #[test]
    fn quarantine_offset_points_at_damaged_frame_not_stream_start() {
        let records = sample_records();
        let mut buf = encode_stream(&records);
        // Find the second frame's sync byte; corrupt its payload.
        let second_sync = buf[1..].iter().position(|&b| b == SYNC).unwrap() + 1;
        buf[second_sync + 2] ^= 0xFF;
        let mut r =
            FrameReader::new(&buf[..], ReadMode::Tolerant).capture_quarantine(true);
        r.read_all().unwrap();
        let q = r.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].offset, second_sync as u64);
    }

    #[test]
    fn quarantine_captures_desync_garbage_run() {
        let records = sample_records();
        let buf = encode_stream(&records);
        let mut dirty = vec![0xDE, 0xAD, 0xBE]; // garbage before frame 0
        dirty.extend_from_slice(&buf);
        let mut r =
            FrameReader::new(&dirty[..], ReadMode::Tolerant).capture_quarantine(true);
        let got = r.read_all().unwrap();
        assert_eq!(got, records);
        let q = r.quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].reason, QuarantineReason::Desync);
        assert_eq!(q[0].offset, 0);
        assert_eq!(q[0].captured, vec![0xDE, 0xAD, 0xBE]);
        assert_eq!(r.resyncs(), 1);
    }

    #[test]
    fn quarantine_captures_truncated_final_frame() {
        let buf = encode_stream(&sample_records());
        let cut = buf.len() - 3; // inside the Finish frame
        let mut r =
            FrameReader::new(&buf[..cut], ReadMode::Tolerant).capture_quarantine(true);
        let mut quarantined_offset = None;
        loop {
            match r.read() {
                Ok(Some(_)) => continue,
                Ok(None) => break,
                Err(e) => panic!("tolerant mode errored: {e}"),
            }
        }
        if let Some(q) = r.quarantine().last() {
            assert_eq!(q.reason, QuarantineReason::Truncated);
            quarantined_offset = Some(q.offset);
        }
        let off = quarantined_offset.expect("truncated frame quarantined");
        assert!(off < cut as u64);
        assert_eq!(r.skipped(), 1);
    }

    #[test]
    fn quarantine_capture_is_capped() {
        let records = sample_records();
        let buf = encode_stream(&records);
        let mut dirty = vec![0x42u8; QUARANTINE_CAPTURE_CAP * 4];
        dirty.extend_from_slice(&buf);
        let mut r =
            FrameReader::new(&dirty[..], ReadMode::Tolerant).capture_quarantine(true);
        let got = r.read_all().unwrap();
        assert_eq!(got, records, "reader must still resync past the cap");
        let q = r.take_quarantine();
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].captured.len(), QUARANTINE_CAPTURE_CAP);
        assert!(r.quarantine().is_empty(), "take_quarantine drains");
    }

    #[test]
    fn position_tracks_bytes_consumed() {
        let buf = encode_stream(&sample_records());
        let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
        assert_eq!(r.position(), 0);
        r.read_all().unwrap();
        assert_eq!(r.position(), buf.len() as u64);
    }

    #[test]
    fn fuzz_random_corruption_never_yields_wrong_records() {
        // Deterministic LCG; flip one byte at every position in turn.
        let records = sample_records();
        let clean = encode_stream(&records);
        for pos in 0..clean.len() {
            let mut dirty = clean.clone();
            dirty[pos] ^= 0x5A;
            let mut r = FrameReader::new(&dirty[..], ReadMode::Tolerant);
            let mut got = Vec::new();
            loop {
                match r.read() {
                    Ok(Some(rec)) => got.push(rec),
                    Ok(None) => break,
                    Err(_) => break, // errors acceptable; silent wrong data is not
                }
            }
            // Every record we *did* read must be one of the originals
            // (corruption may drop records but CRC must stop fabrication).
            for rec in got {
                assert!(
                    records.contains(&rec),
                    "fabricated record {rec:?} after corrupting byte {pos}"
                );
            }
        }
    }
}
