//! The log record vocabulary.

use crate::varint::{decode_u64, encode_u64, VarintError};
use bytes::{Buf, BufMut};
use core::fmt;
use ipactive_net::{Addr, AddrBits256, Block24};

/// One record in the CDN log stream.
///
/// Records carry *aggregates*, matching the paper's processed dataset
/// ("we have access to the exact number of requests issued by each
/// single IP address", Section 3.2): edge servers pre-aggregate hits
/// per address per day, and sample one in N `User-Agent` strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// Start-of-day marker; all following records belong to `day` until
    /// the next marker.
    DayStart {
        /// Observation day index (0-based).
        day: u16,
    },
    /// Aggregated successful WWW transactions for one address on one day.
    Hits {
        /// Observation day index.
        day: u16,
        /// The client address.
        addr: Addr,
        /// Number of successful requests ("hits") from `addr` that day.
        hits: u64,
    },
    /// One sampled `User-Agent` observation (stored as a 64-bit hash of
    /// the string; the analyses only need distinctness, and the hash
    /// keeps payloads fixed-size).
    UaSample {
        /// Observation day index.
        day: u16,
        /// The client address the sample was taken from.
        addr: Addr,
        /// 64-bit hash of the User-Agent string.
        ua_hash: u64,
    },
    /// A whole block's day in one frame: a 256-bit activity bitmap
    /// plus one hit count per active address. The packed form of the
    /// same information as 1..=256 [`Record::Hits`] records — edge
    /// servers batch per block to amortize framing overhead (see the
    /// `ablation_packed_records` benchmark for the size/speed win).
    BlockDay(Box<BlockDay>),
    /// End-of-stream marker written by [`crate::FrameWriter::finish`].
    Finish,
}

/// Payload of [`Record::BlockDay`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockDay {
    /// Observation day index.
    pub day: u16,
    /// The block.
    pub block: Block24,
    /// `(host index, hits)` for each active address, strictly
    /// ascending by host and with `hits > 0`.
    pub entries: Vec<(u8, u64)>,
}

impl BlockDay {
    /// Builds a packed record, validating the entry invariants.
    ///
    /// # Panics
    /// If entries are not strictly ascending by host or contain a
    /// zero hit count.
    pub fn new(day: u16, block: Block24, entries: Vec<(u8, u64)>) -> BlockDay {
        assert!(
            entries.windows(2).all(|w| w[0].0 < w[1].0),
            "entries must be strictly ascending by host"
        );
        assert!(entries.iter().all(|&(_, h)| h > 0), "zero hit counts are not activity");
        BlockDay { day, block, entries }
    }

    /// Expands to the equivalent per-address [`Record::Hits`] records.
    pub fn unpack(&self) -> impl Iterator<Item = Record> + '_ {
        self.entries.iter().map(move |&(host, hits)| Record::Hits {
            day: self.day,
            addr: self.block.addr(host),
            hits,
        })
    }
}

/// Wire-format record kind tags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Kind {
    DayStart = 1,
    Hits = 2,
    UaSample = 3,
    Finish = 4,
    BlockDay = 5,
}

impl Kind {
    fn from_u8(v: u8) -> Option<Kind> {
        match v {
            1 => Some(Kind::DayStart),
            2 => Some(Kind::Hits),
            3 => Some(Kind::UaSample),
            4 => Some(Kind::Finish),
            5 => Some(Kind::BlockDay),
            _ => None,
        }
    }
}

/// Error decoding a [`Record`] payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The kind byte is not a known record type.
    UnknownKind(u8),
    /// A varint field was malformed.
    Varint(VarintError),
    /// A field's value was out of range (e.g. day > u16::MAX).
    FieldRange(&'static str),
    /// Payload had trailing garbage after the last field.
    TrailingBytes(usize),
    /// Payload ended before the last field.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnknownKind(k) => write!(f, "unknown record kind {k}"),
            DecodeError::Varint(e) => write!(f, "bad varint: {e}"),
            DecodeError::FieldRange(field) => write!(f, "field {field} out of range"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after record"),
            DecodeError::Truncated => write!(f, "record payload truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<VarintError> for DecodeError {
    fn from(e: VarintError) -> Self {
        match e {
            VarintError::Truncated => DecodeError::Truncated,
            other => DecodeError::Varint(other),
        }
    }
}

impl Record {
    /// Encodes the record (kind byte + payload) into `buf`.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        match *self {
            Record::BlockDay(ref bd) => {
                buf.put_u8(Kind::BlockDay as u8);
                encode_u64(buf, bd.day as u64);
                encode_u64(buf, bd.block.id() as u64);
                let mut bitmap = AddrBits256::new();
                for &(host, _) in &bd.entries {
                    bitmap.set(host);
                }
                for word in bitmap_words(&bitmap) {
                    buf.put_u64_le(word);
                }
                for &(_, hits) in &bd.entries {
                    encode_u64(buf, hits);
                }
            }
            Record::DayStart { day } => {
                buf.put_u8(Kind::DayStart as u8);
                encode_u64(buf, day as u64);
            }
            Record::Hits { day, addr, hits } => {
                buf.put_u8(Kind::Hits as u8);
                encode_u64(buf, day as u64);
                encode_u64(buf, addr.bits() as u64);
                encode_u64(buf, hits);
            }
            Record::UaSample { day, addr, ua_hash } => {
                buf.put_u8(Kind::UaSample as u8);
                encode_u64(buf, day as u64);
                encode_u64(buf, addr.bits() as u64);
                encode_u64(buf, ua_hash);
            }
            Record::Finish => {
                buf.put_u8(Kind::Finish as u8);
            }
        }
    }

    /// Decodes one record from `buf`; the buffer must contain exactly
    /// one record (frame payloads are length-delimited upstream).
    pub fn decode(mut buf: &[u8]) -> Result<Record, DecodeError> {
        if !buf.has_remaining() {
            return Err(DecodeError::Truncated);
        }
        let kind = buf.get_u8();
        let kind = Kind::from_u8(kind).ok_or(DecodeError::UnknownKind(kind))?;
        let rec = match kind {
            Kind::DayStart => {
                let day = field_u16(&mut buf, "day")?;
                Record::DayStart { day }
            }
            Kind::Hits => {
                let day = field_u16(&mut buf, "day")?;
                let addr = field_addr(&mut buf)?;
                let hits = decode_u64(&mut buf)?;
                Record::Hits { day, addr, hits }
            }
            Kind::UaSample => {
                let day = field_u16(&mut buf, "day")?;
                let addr = field_addr(&mut buf)?;
                let ua_hash = decode_u64(&mut buf)?;
                Record::UaSample { day, addr, ua_hash }
            }
            Kind::Finish => Record::Finish,
            Kind::BlockDay => {
                let day = field_u16(&mut buf, "day")?;
                let block = decode_u64(&mut buf)?;
                let block = u32::try_from(block)
                    .ok()
                    .filter(|&b| b < (1 << 24))
                    .map(Block24::new)
                    .ok_or(DecodeError::FieldRange("block"))?;
                if buf.remaining() < 32 {
                    return Err(DecodeError::Truncated);
                }
                let mut bitmap = AddrBits256::new();
                let mut words = [0u64; 4];
                for w in &mut words {
                    *w = buf.get_u64_le();
                }
                for i in 0..=255u8 {
                    if words[(i >> 6) as usize] & (1u64 << (i & 63)) != 0 {
                        bitmap.set(i);
                    }
                }
                let mut entries = Vec::with_capacity(bitmap.count() as usize);
                for host in bitmap.iter() {
                    let hits = decode_u64(&mut buf)?;
                    if hits == 0 {
                        return Err(DecodeError::FieldRange("hits"));
                    }
                    entries.push((host, hits));
                }
                Record::BlockDay(Box::new(BlockDay { day, block, entries }))
            }
        };
        if buf.has_remaining() {
            return Err(DecodeError::TrailingBytes(buf.remaining()));
        }
        Ok(rec)
    }
}

/// The four little-endian words of an address bitmap, low hosts first.
fn bitmap_words(bits: &AddrBits256) -> [u64; 4] {
    let mut words = [0u64; 4];
    for host in bits.iter() {
        words[(host >> 6) as usize] |= 1u64 << (host & 63);
    }
    words
}

fn field_u16(buf: &mut &[u8], name: &'static str) -> Result<u16, DecodeError> {
    let v = decode_u64(buf)?;
    u16::try_from(v).map_err(|_| DecodeError::FieldRange(name))
}

fn field_addr(buf: &mut &[u8]) -> Result<Addr, DecodeError> {
    let v = decode_u64(buf)?;
    let bits = u32::try_from(v).map_err(|_| DecodeError::FieldRange("addr"))?;
    Ok(Addr::new(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: Record) {
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        assert_eq!(Record::decode(&buf).unwrap(), rec);
    }

    #[test]
    fn roundtrip_all_kinds() {
        roundtrip(Record::DayStart { day: 0 });
        roundtrip(Record::DayStart { day: u16::MAX });
        roundtrip(Record::Hits { day: 111, addr: Addr::new(0xC0000201), hits: 0 });
        roundtrip(Record::Hits { day: 1, addr: Addr::MAX, hits: u64::MAX });
        roundtrip(Record::UaSample { day: 7, addr: Addr::new(1), ua_hash: 0xDEAD_BEEF_CAFE_F00D });
        roundtrip(Record::Finish);
        roundtrip(Record::BlockDay(Box::new(BlockDay::new(
            42,
            Block24::new(0x0A0102),
            vec![(0, 1), (7, 300), (255, u64::MAX)],
        ))));
        // Empty and full blocks.
        roundtrip(Record::BlockDay(Box::new(BlockDay::new(1, Block24::new(3), vec![]))));
        roundtrip(Record::BlockDay(Box::new(BlockDay::new(
            1,
            Block24::new(3),
            (0..=255u8).map(|h| (h, h as u64 + 1)).collect(),
        ))));
    }

    #[test]
    fn blockday_is_equivalent_to_hits_records() {
        let bd = BlockDay::new(9, Block24::new(0x0A0000), vec![(3, 10), (200, 77)]);
        let unpacked: Vec<Record> = bd.unpack().collect();
        assert_eq!(unpacked.len(), 2);
        assert_eq!(
            unpacked[0],
            Record::Hits { day: 9, addr: "10.0.0.3".parse().unwrap(), hits: 10 }
        );
        assert_eq!(
            unpacked[1],
            Record::Hits { day: 9, addr: "10.0.0.200".parse().unwrap(), hits: 77 }
        );
    }

    #[test]
    fn blockday_is_compact() {
        // 100 active addresses as one packed record vs 100 Hits records.
        let entries: Vec<(u8, u64)> = (0..100u8).map(|h| (h, 50)).collect();
        let bd = Record::BlockDay(Box::new(BlockDay::new(5, Block24::new(7), entries.clone())));
        let mut packed = Vec::new();
        bd.encode(&mut packed);
        let mut flat = Vec::new();
        if let Record::BlockDay(bd) = &bd {
            for rec in bd.unpack() {
                rec.encode(&mut flat);
            }
        }
        assert!(
            packed.len() * 2 < flat.len(),
            "packed {} vs flat {}",
            packed.len(),
            flat.len()
        );
    }

    #[test]
    fn blockday_rejects_malformed_payloads() {
        // Truncated bitmap.
        let mut buf = vec![5u8];
        crate::varint::encode_u64(&mut buf, 1); // day
        crate::varint::encode_u64(&mut buf, 7); // block
        buf.extend_from_slice(&[0u8; 16]); // only half a bitmap
        assert_eq!(Record::decode(&buf), Err(DecodeError::Truncated));
        // Bitmap claims an entry but hits are missing.
        let mut buf = vec![5u8];
        crate::varint::encode_u64(&mut buf, 1);
        crate::varint::encode_u64(&mut buf, 7);
        let mut bitmap = [0u8; 32];
        bitmap[0] = 0b1; // host 0 active
        buf.extend_from_slice(&bitmap);
        assert_eq!(Record::decode(&buf), Err(DecodeError::Truncated));
        // Zero hits for an active host.
        crate::varint::encode_u64(&mut buf, 0);
        assert_eq!(Record::decode(&buf), Err(DecodeError::FieldRange("hits")));
        // Oversized block id.
        let mut buf = vec![5u8];
        crate::varint::encode_u64(&mut buf, 1);
        crate::varint::encode_u64(&mut buf, 1 << 24);
        buf.extend_from_slice(&[0u8; 32]);
        assert_eq!(Record::decode(&buf), Err(DecodeError::FieldRange("block")));
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn blockday_new_rejects_unordered_entries() {
        BlockDay::new(1, Block24::new(1), vec![(5, 1), (5, 2)]);
    }

    #[test]
    fn unknown_kind_rejected() {
        assert_eq!(Record::decode(&[99]), Err(DecodeError::UnknownKind(99)));
        assert_eq!(Record::decode(&[0]), Err(DecodeError::UnknownKind(0)));
    }

    #[test]
    fn empty_payload_rejected() {
        assert_eq!(Record::decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn truncated_fields_rejected() {
        let mut buf = Vec::new();
        Record::Hits { day: 300, addr: Addr::new(0x01020304), hits: 12345 }.encode(&mut buf);
        for cut in 1..buf.len() {
            assert!(
                Record::decode(&buf[..cut]).is_err(),
                "truncation at {cut} must not decode"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut buf = Vec::new();
        Record::DayStart { day: 5 }.encode(&mut buf);
        buf.push(0);
        assert_eq!(Record::decode(&buf), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn day_overflow_rejected() {
        // Hand-encode a DayStart with day = 2^20.
        let mut buf = vec![1u8];
        crate::varint::encode_u64(&mut buf, 1 << 20);
        assert_eq!(Record::decode(&buf), Err(DecodeError::FieldRange("day")));
    }

    #[test]
    fn addr_overflow_rejected() {
        let mut buf = vec![2u8];
        crate::varint::encode_u64(&mut buf, 1); // day
        crate::varint::encode_u64(&mut buf, u64::from(u32::MAX) + 1); // addr
        crate::varint::encode_u64(&mut buf, 1); // hits
        assert_eq!(Record::decode(&buf), Err(DecodeError::FieldRange("addr")));
    }

    #[test]
    fn hits_encoding_is_compact_for_common_case() {
        // Small hit counts on low addresses should be a handful of bytes.
        let mut buf = Vec::new();
        Record::Hits { day: 3, addr: Addr::from_octets(10, 0, 0, 1), hits: 17 }.encode(&mut buf);
        assert!(buf.len() <= 8, "expected compact encoding, got {} bytes", buf.len());
    }
}
