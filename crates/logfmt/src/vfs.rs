//! Injectable filesystem plane for crash-consistency testing.
//!
//! [`LogStore`](crate::LogStore) performs every I/O operation through
//! the [`Fs`] trait. Production code runs on [`RealFs`], a zero-cost
//! passthrough to `std::fs`. Tests run on [`SimFs`], an in-memory
//! filesystem that:
//!
//! * numbers every I/O operation (create, write, fsync, rename,
//!   directory sync, remove, …) so a harness can enumerate *crash
//!   points* and cut power at each one in turn;
//! * distinguishes *visible* state (what the running process observes)
//!   from *durable* state (what survives a power loss), with the
//!   page-cache semantics that make `fsync` discipline matter: file
//!   bytes persist only up to the last `sync_all`, and directory
//!   entries (creates, renames, removes) persist only up to the last
//!   directory sync;
//! * injects targeted faults — short writes, `ENOSPC`, silently
//!   dropped fsyncs, and power cuts — at any numbered operation.
//!
//! A power cut is modeled in two stages: from the cut onward every
//! operation fails with [`POWER_CUT_MSG`] (the process-side view of the
//! machine dying), and [`SimFs::crash`] then collapses visible state
//! into the bytes a reboot would find, under a chosen [`CrashStyle`].

use ipactive_obs::{Counter, Registry};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Error message carried by every operation refused after a simulated
/// power cut.
pub const POWER_CUT_MSG: &str = "simulated power cut";

/// A writable file handle produced by an [`Fs`].
pub trait FsFile: Write {
    /// Flushes the file's bytes to durable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations a [`LogStore`](crate::LogStore) needs.
///
/// Implementations must be cheaply cloneable handles: clones of one
/// [`SimFs`] share state, and [`RealFs`] is a unit type.
pub trait Fs: std::fmt::Debug + Clone + Send + Sync {
    /// Writable file handle type.
    type File: FsFile;
    /// Readable file handle type.
    type ReadFile: Read;

    /// Creates (truncating if present) a file for writing.
    fn create(&self, path: &Path) -> io::Result<Self::File>;
    /// Opens a file for reading.
    fn open_read(&self, path: &Path) -> io::Result<Self::ReadFile>;
    /// Atomically renames `from` to `to`, replacing `to` if present.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Creates a directory and its parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// The file names (not paths) directly inside `dir`.
    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Makes `dir`'s entries (renames, creates, removes) durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;
    /// Size in bytes of the file at `path`.
    fn file_len(&self, path: &Path) -> io::Result<u64>;
}

/// The production filesystem: a zero-sized passthrough to `std::fs`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RealFs;

impl FsFile for std::fs::File {
    #[inline]
    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }
}

impl Fs for RealFs {
    type File = std::fs::File;
    type ReadFile = std::fs::File;

    #[inline]
    fn create(&self, path: &Path) -> io::Result<std::fs::File> {
        std::fs::File::create(path)
    }

    #[inline]
    fn open_read(&self, path: &Path) -> io::Result<std::fs::File> {
        std::fs::File::open(path)
    }

    #[inline]
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    #[inline]
    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    #[inline]
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(out)
    }

    /// Directory fsync is a unix-filesystem notion; elsewhere the
    /// rename is already as durable as the platform allows.
    #[cfg(unix)]
    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        std::fs::File::open(dir)?.sync_all()
    }

    #[cfg(not(unix))]
    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    #[inline]
    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    #[inline]
    fn file_len(&self, path: &Path) -> io::Result<u64> {
        Ok(std::fs::metadata(path)?.len())
    }
}

/// An [`Fs`] decorator that meters every operation into an
/// observability [`Registry`] — `vfs.ops.create`, `vfs.ops.write`,
/// `vfs.ops.sync_file`, `vfs.ops.rename`, `vfs.ops.remove`,
/// `vfs.ops.sync_dir`, `vfs.ops.open_read`, plus
/// `vfs.bytes_written`.
///
/// It is a pure passthrough: it performs no filesystem operations of
/// its own (so wrapping a [`SimFs`] does **not** renumber its crash
/// points) and never alters results. Operations are counted when
/// attempted; bytes only on successful writes.
#[derive(Debug, Clone)]
pub struct ObsFs<F: Fs> {
    inner: F,
    meters: FsMeters,
}

#[derive(Debug, Clone)]
struct FsMeters {
    create: Counter,
    write: Counter,
    bytes_written: Counter,
    sync_file: Counter,
    rename: Counter,
    remove: Counter,
    sync_dir: Counter,
    open_read: Counter,
}

impl FsMeters {
    fn new(registry: &Registry) -> FsMeters {
        FsMeters {
            create: registry.counter("vfs.ops.create"),
            write: registry.counter("vfs.ops.write"),
            bytes_written: registry.counter("vfs.bytes_written"),
            sync_file: registry.counter("vfs.ops.sync_file"),
            rename: registry.counter("vfs.ops.rename"),
            remove: registry.counter("vfs.ops.remove"),
            sync_dir: registry.counter("vfs.ops.sync_dir"),
            open_read: registry.counter("vfs.ops.open_read"),
        }
    }
}

impl<F: Fs> ObsFs<F> {
    /// Wraps `inner`, metering into `registry`.
    pub fn new(inner: F, registry: &Registry) -> ObsFs<F> {
        ObsFs { inner, meters: FsMeters::new(registry) }
    }

    /// The wrapped filesystem.
    pub fn inner(&self) -> &F {
        &self.inner
    }
}

/// Writable handle produced by an [`ObsFs`]; counts writes, written
/// bytes, and file syncs on the shared meters.
#[derive(Debug)]
pub struct ObsFile<T: FsFile> {
    inner: T,
    meters: FsMeters,
}

impl<T: FsFile> Write for ObsFile<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.meters.write.inc();
        let n = self.inner.write(buf)?;
        self.meters.bytes_written.add(n as u64);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<T: FsFile> FsFile for ObsFile<T> {
    fn sync_all(&mut self) -> io::Result<()> {
        self.meters.sync_file.inc();
        self.inner.sync_all()
    }
}

impl<F: Fs> Fs for ObsFs<F> {
    type File = ObsFile<F::File>;
    type ReadFile = F::ReadFile;

    fn create(&self, path: &Path) -> io::Result<Self::File> {
        self.meters.create.inc();
        let inner = self.inner.create(path)?;
        Ok(ObsFile { inner, meters: self.meters.clone() })
    }

    fn open_read(&self, path: &Path) -> io::Result<Self::ReadFile> {
        self.meters.open_read.inc();
        self.inner.open_read(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.meters.rename.inc();
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.meters.remove.inc();
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.read_dir_names(dir)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.meters.sync_dir.inc();
        self.inner.sync_dir(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        self.inner.exists(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        self.inner.file_len(path)
    }
}

/// What kind of fault to inject at a numbered operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inject {
    /// The machine loses power: the targeted operation and every one
    /// after it fail with [`POWER_CUT_MSG`]. Follow with
    /// [`SimFs::crash`] to obtain the rebooted disk state.
    PowerCut,
    /// The targeted write applies only the first half of its buffer,
    /// then fails with `ENOSPC` — a torn write at the process level.
    /// Non-write operations targeted by this fault fail cleanly.
    ShortWrite,
    /// The targeted operation fails with `ENOSPC` applying nothing.
    Enospc,
    /// The targeted `sync_all`/`sync_dir` returns `Ok` but persists
    /// nothing — a lying disk. Non-sync operations are untouched.
    DropSync,
}

/// One numbered I/O operation a [`SimFs`] performed, for harness
/// introspection ("cut power at every operation of this workload").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpLabel {
    /// `create(path)`.
    Create(PathBuf),
    /// `write(path, n_bytes)`.
    Write(PathBuf, usize),
    /// `sync_all(path)`.
    SyncFile(PathBuf),
    /// `rename(from, to)`.
    Rename(PathBuf, PathBuf),
    /// `remove_file(path)`.
    Remove(PathBuf),
    /// `sync_dir(dir)`.
    SyncDir(PathBuf),
}

/// How [`SimFs::crash`] collapses visible state into rebooted state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashStyle {
    /// Weakest-guarantee filesystem: only explicitly synced bytes and
    /// explicitly synced directory entries survive. Unsynced file
    /// tails vanish; unsynced creates/renames/removes roll back.
    Pessimist,
    /// Metadata-eager filesystem (ext4-ordered-like): the directory
    /// reflects every rename/create/remove that happened, but file
    /// *contents* still survive only up to their last fsync. This is
    /// the style that exposes the classic "rename before fsync"
    /// empty-file bug.
    Eager,
    /// Like [`CrashStyle::Pessimist`], but each file additionally
    /// keeps a deterministic, seed-derived prefix of its unsynced
    /// tail — a torn write straddling the power loss.
    Torn {
        /// Seed for the per-file surviving-prefix draw.
        seed: u64,
    },
}

#[derive(Debug, Clone, Default)]
struct Inode {
    data: Vec<u8>,
    /// Bytes durable on "disk" — `data[..synced_len]` survives a
    /// pessimist crash.
    synced_len: usize,
}

#[derive(Debug, Clone, Default)]
struct SimState {
    inodes: Vec<Inode>,
    /// Visible namespace: what the running process sees.
    live: BTreeMap<PathBuf, usize>,
    /// Durable namespace: entries as of the last directory sync.
    durable: BTreeMap<PathBuf, usize>,
    dirs: Vec<PathBuf>,
    ops: u64,
    oplog: Vec<OpLabel>,
    faults: Vec<(u64, Inject)>,
    drop_all_syncs: bool,
    powered_off: bool,
}

impl SimState {
    fn power_cut_err() -> io::Error {
        io::Error::other(POWER_CUT_MSG)
    }

    fn enospc() -> io::Error {
        // `ErrorKind::StorageFull` stabilized in 1.83, past our MSRV;
        // the message carries the ENOSPC meaning instead.
        io::Error::other("simulated ENOSPC")
    }

    /// Charges one operation: logs it, advances the counter, and
    /// returns the fault (if any) scheduled for it. A power cut, once
    /// hit, refuses this and every later operation.
    fn charge(&mut self, label: OpLabel) -> Result<Option<Inject>, io::Error> {
        if self.powered_off {
            return Err(Self::power_cut_err());
        }
        let n = self.ops;
        self.ops += 1;
        self.oplog.push(label);
        let fault = self.faults.iter().find(|&&(at, _)| at == n).map(|&(_, f)| f);
        if fault == Some(Inject::PowerCut) {
            self.powered_off = true;
            return Err(Self::power_cut_err());
        }
        Ok(fault)
    }
}

/// The simulated filesystem handle. Clones share state.
#[derive(Debug, Clone, Default)]
pub struct SimFs {
    state: Arc<Mutex<SimState>>,
}

impl SimFs {
    /// An empty simulated filesystem with no faults scheduled.
    pub fn new() -> SimFs {
        SimFs::default()
    }

    /// Schedules `inject` to fire on operation number `at` (0-based,
    /// in the order [`SimFs::oplog`] records). Builder-style.
    pub fn with_fault(self, at: u64, inject: Inject) -> SimFs {
        self.state.lock().unwrap().faults.push((at, inject));
        self
    }

    /// Makes *every* `sync_all`/`sync_dir` a silent no-op — a disk
    /// that acknowledges flushes it never performs.
    pub fn with_dropped_syncs(self) -> SimFs {
        self.state.lock().unwrap().drop_all_syncs = true;
        self
    }

    /// Number of operations performed so far.
    pub fn ops(&self) -> u64 {
        self.state.lock().unwrap().ops
    }

    /// The labeled operation log so far.
    pub fn oplog(&self) -> Vec<OpLabel> {
        self.state.lock().unwrap().oplog.clone()
    }

    /// Whether a scheduled power cut has fired.
    pub fn powered_off(&self) -> bool {
        self.state.lock().unwrap().powered_off
    }

    /// The visible content of `path` (test introspection).
    pub fn visible(&self, path: &Path) -> Option<Vec<u8>> {
        let st = self.state.lock().unwrap();
        st.live.get(path).map(|&ino| st.inodes[ino].data.clone())
    }

    /// A deep copy that shares nothing with `self` — the crash-point
    /// harness forks the disk at a cut point so one captured state can
    /// be rebooted under every [`CrashStyle`] independently.
    pub fn fork(&self) -> SimFs {
        SimFs { state: Arc::new(Mutex::new(self.state.lock().unwrap().clone())) }
    }

    /// Plants `bytes` at `path`, fully durable, without charging any
    /// operations — the test-side hammer for forging corruption that
    /// did not come from a simulated crash (bit rot, hostile edits).
    pub fn put_file(&self, path: &Path, bytes: &[u8]) {
        let mut st = self.state.lock().unwrap();
        let ino = st.inodes.len();
        st.inodes.push(Inode { data: bytes.to_vec(), synced_len: bytes.len() });
        st.live.insert(path.to_path_buf(), ino);
        st.durable.insert(path.to_path_buf(), ino);
    }

    /// Simulates a `kill -9` of the *process* without losing the
    /// *machine*: unlike [`SimFs::crash`], nothing is truncated or
    /// rolled back — written-but-unsynced bytes stay in the page cache
    /// and unsynced renames stay in the directory, exactly as a real
    /// OS keeps them when one process dies. Scheduled faults and the
    /// power-off latch are cleared so a successor process (a healing
    /// coordinator, a respawned worker) can keep operating on the same
    /// disk. The operation counter and oplog are reset so the
    /// successor's crash points number from zero.
    pub fn exit_process(&self) {
        let mut st = self.state.lock().unwrap();
        st.faults.clear();
        st.powered_off = false;
        st.ops = 0;
        st.oplog.clear();
    }

    /// Simulates the reboot after a power loss: collapses visible
    /// state into what a fresh mount would find under `style`, clears
    /// all faults and the power-off latch, and resets the operation
    /// counter. The returned handle is the rebooted disk (it shares
    /// state with `self`, which should be discarded).
    pub fn crash(self, style: CrashStyle) -> SimFs {
        {
            let mut st = self.state.lock().unwrap();
            let namespace = match style {
                CrashStyle::Pessimist | CrashStyle::Torn { .. } => st.durable.clone(),
                CrashStyle::Eager => st.live.clone(),
            };
            let mut inodes = std::mem::take(&mut st.inodes);
            for (path, &ino) in &namespace {
                let inode = &mut inodes[ino];
                let keep = match style {
                    CrashStyle::Pessimist | CrashStyle::Eager => inode.synced_len,
                    CrashStyle::Torn { seed } => {
                        let unsynced = inode.data.len() - inode.synced_len;
                        if unsynced == 0 {
                            inode.synced_len
                        } else {
                            // Deterministic surviving prefix of the
                            // unsynced tail, keyed on path and length.
                            let mut h = seed ^ inode.data.len() as u64;
                            for b in path.as_os_str().as_encoded_bytes() {
                                h = h.wrapping_mul(0x100000001B3) ^ u64::from(*b);
                            }
                            h ^= h >> 33;
                            h = h.wrapping_mul(0xFF51AFD7ED558CCD);
                            h ^= h >> 33;
                            inode.synced_len + (h % (unsynced as u64 + 1)) as usize
                        }
                    }
                };
                inode.data.truncate(keep);
                inode.synced_len = inode.data.len();
            }
            st.inodes = inodes;
            st.live = namespace.clone();
            st.durable = namespace;
            st.faults.clear();
            st.drop_all_syncs = false;
            st.powered_off = false;
            st.ops = 0;
            st.oplog.clear();
        }
        self
    }
}

/// Writable handle into a [`SimFs`] file.
#[derive(Debug)]
pub struct SimFile {
    state: Arc<Mutex<SimState>>,
    path: PathBuf,
    ino: usize,
}

impl Write for SimFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.state.lock().unwrap();
        let fault = st.charge(OpLabel::Write(self.path.clone(), buf.len()))?;
        match fault {
            Some(Inject::Enospc) => Err(SimState::enospc()),
            Some(Inject::ShortWrite) => {
                let half = buf.len() / 2;
                st.inodes[self.ino].data.extend_from_slice(&buf[..half]);
                Err(SimState::enospc())
            }
            _ => {
                st.inodes[self.ino].data.extend_from_slice(buf);
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Flushing user-space buffers is not a disk operation; the
        // simulated page cache (visible state) is already current.
        Ok(())
    }
}

impl FsFile for SimFile {
    fn sync_all(&mut self) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        let fault = st.charge(OpLabel::SyncFile(self.path.clone()))?;
        match fault {
            Some(Inject::Enospc) => Err(SimState::enospc()),
            Some(Inject::DropSync) => Ok(()),
            _ if st.drop_all_syncs => Ok(()),
            _ => {
                let inode = &mut st.inodes[self.ino];
                inode.synced_len = inode.data.len();
                Ok(())
            }
        }
    }
}

impl Fs for SimFs {
    type File = SimFile;
    type ReadFile = io::Cursor<Vec<u8>>;

    fn create(&self, path: &Path) -> io::Result<SimFile> {
        let mut st = self.state.lock().unwrap();
        match st.charge(OpLabel::Create(path.to_path_buf()))? {
            Some(Inject::Enospc) | Some(Inject::ShortWrite) => Err(SimState::enospc()),
            _ => {
                st.inodes.push(Inode::default());
                let ino = st.inodes.len() - 1;
                st.live.insert(path.to_path_buf(), ino);
                Ok(SimFile { state: Arc::clone(&self.state), path: path.to_path_buf(), ino })
            }
        }
    }

    fn open_read(&self, path: &Path) -> io::Result<io::Cursor<Vec<u8>>> {
        let st = self.state.lock().unwrap();
        if st.powered_off {
            return Err(SimState::power_cut_err());
        }
        match st.live.get(path) {
            Some(&ino) => Ok(io::Cursor::new(st.inodes[ino].data.clone())),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such simulated file")),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.charge(OpLabel::Rename(from.to_path_buf(), to.to_path_buf()))? {
            Some(Inject::Enospc) => Err(SimState::enospc()),
            _ => match st.live.remove(from) {
                Some(ino) => {
                    st.live.insert(to.to_path_buf(), ino);
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "rename source missing")),
            },
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.charge(OpLabel::Remove(path.to_path_buf()))? {
            Some(Inject::Enospc) => Err(SimState::enospc()),
            _ => match st.live.remove(path) {
                Some(_) => Ok(()),
                None => Err(io::Error::new(io::ErrorKind::NotFound, "no such simulated file")),
            },
        }
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        if st.powered_off {
            return Err(SimState::power_cut_err());
        }
        let path = path.to_path_buf();
        if !st.dirs.contains(&path) {
            st.dirs.push(path);
        }
        Ok(())
    }

    fn read_dir_names(&self, dir: &Path) -> io::Result<Vec<String>> {
        let st = self.state.lock().unwrap();
        if st.powered_off {
            return Err(SimState::power_cut_err());
        }
        let mut out = Vec::new();
        for path in st.live.keys() {
            if path.parent() == Some(dir) {
                out.push(path.file_name().unwrap().to_string_lossy().into_owned());
            }
        }
        Ok(out)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut st = self.state.lock().unwrap();
        match st.charge(OpLabel::SyncDir(dir.to_path_buf()))? {
            Some(Inject::Enospc) => Err(SimState::enospc()),
            Some(Inject::DropSync) => Ok(()),
            _ if st.drop_all_syncs => Ok(()),
            _ => {
                st.durable = st.live.clone();
                Ok(())
            }
        }
    }

    fn exists(&self, path: &Path) -> bool {
        self.state.lock().unwrap().live.contains_key(path)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        let st = self.state.lock().unwrap();
        match st.live.get(path) {
            Some(&ino) => Ok(st.inodes[ino].data.len() as u64),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such simulated file")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    /// create + write + fsync + rename + dir sync: the full durable
    /// protocol must survive a pessimist crash.
    #[test]
    fn synced_protocol_survives_pessimist_crash() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/s/.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        fs.rename(&p("/s/.tmp"), &p("/s/final")).unwrap();
        fs.sync_dir(&p("/s")).unwrap();
        let fs = fs.crash(CrashStyle::Pessimist);
        let mut got = Vec::new();
        fs.open_read(&p("/s/final")).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"hello");
        assert!(!fs.exists(&p("/s/.tmp")));
    }

    /// Without the directory sync the rename rolls back on a
    /// pessimist crash — the file is simply gone.
    #[test]
    fn unsynced_rename_rolls_back_pessimist() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/s/.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap();
        fs.rename(&p("/s/.tmp"), &p("/s/final")).unwrap();
        let fs = fs.crash(CrashStyle::Pessimist);
        assert!(!fs.exists(&p("/s/final")));
        assert!(!fs.exists(&p("/s/.tmp")));
    }

    /// Under the eager style the rename survives but unsynced content
    /// does not — the classic rename-before-fsync empty file.
    #[test]
    fn eager_crash_exposes_missing_content_fsync() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/s/.tmp")).unwrap();
        f.write_all(b"hello").unwrap();
        // No sync_all.
        fs.rename(&p("/s/.tmp"), &p("/s/final")).unwrap();
        fs.sync_dir(&p("/s")).unwrap();
        let fs = fs.crash(CrashStyle::Eager);
        let mut got = Vec::new();
        fs.open_read(&p("/s/final")).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"", "unsynced bytes must not survive");
    }

    #[test]
    fn torn_crash_keeps_a_deterministic_prefix() {
        let surviving = |seed| {
            let fs = SimFs::new();
            let mut f = fs.create(&p("/s/f")).unwrap();
            f.write_all(b"abcd").unwrap();
            f.sync_all().unwrap();
            f.write_all(b"efghijkl").unwrap();
            fs.sync_dir(&p("/s")).unwrap();
            let fs = fs.crash(CrashStyle::Torn { seed });
            let mut got = Vec::new();
            fs.open_read(&p("/s/f")).unwrap().read_to_end(&mut got).unwrap();
            got
        };
        let a = surviving(7);
        let b = surviving(7);
        assert_eq!(a, b, "same seed, same torn state");
        assert!(a.len() >= 4, "synced prefix always survives");
        assert!(a.starts_with(b"abcd"));
        assert!(a.len() <= 12);
    }

    #[test]
    fn power_cut_freezes_every_later_operation() {
        let fs = SimFs::new().with_fault(2, Inject::PowerCut);
        let mut f = fs.create(&p("/s/f")).unwrap(); // op 0
        f.write_all(b"x").unwrap(); // op 1
        let err = f.write_all(b"y").unwrap_err(); // op 2: cut
        assert_eq!(err.to_string(), POWER_CUT_MSG);
        assert!(fs.powered_off());
        assert!(fs.clone().create(&p("/s/g")).is_err(), "still dead");
    }

    #[test]
    fn short_write_applies_half_then_fails() {
        let fs = SimFs::new().with_fault(1, Inject::ShortWrite);
        let mut f = fs.create(&p("/s/f")).unwrap();
        let err = f.write_all(b"abcdef").unwrap_err();
        assert_eq!(err.to_string(), "simulated ENOSPC");
        assert_eq!(fs.visible(&p("/s/f")).unwrap(), b"abc");
    }

    #[test]
    fn dropped_sync_lies_and_loses_data() {
        let fs = SimFs::new().with_dropped_syncs();
        let mut f = fs.create(&p("/s/f")).unwrap();
        f.write_all(b"hello").unwrap();
        f.sync_all().unwrap(); // lies
        fs.sync_dir(&p("/s")).unwrap(); // lies
        let fs = fs.crash(CrashStyle::Pessimist);
        assert!(!fs.exists(&p("/s/f")), "nothing was ever durable");
    }

    #[test]
    fn oplog_numbers_operations_in_order() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/s/a")).unwrap();
        f.write_all(b"z").unwrap();
        f.sync_all().unwrap();
        fs.rename(&p("/s/a"), &p("/s/b")).unwrap();
        fs.sync_dir(&p("/s")).unwrap();
        fs.remove_file(&p("/s/b")).unwrap();
        let log = fs.oplog();
        assert_eq!(log.len(), 6);
        assert!(matches!(log[0], OpLabel::Create(_)));
        assert!(matches!(log[1], OpLabel::Write(_, 1)));
        assert!(matches!(log[2], OpLabel::SyncFile(_)));
        assert!(matches!(log[3], OpLabel::Rename(_, _)));
        assert!(matches!(log[4], OpLabel::SyncDir(_)));
        assert!(matches!(log[5], OpLabel::Remove(_)));
        assert_eq!(fs.ops(), 6);
    }

    #[test]
    fn obsfs_meters_match_the_oplog_without_renumbering_it() {
        use ipactive_obs::{Registry, SnapshotMode};
        let reg = Registry::new();
        let sim = SimFs::new();
        let fs = ObsFs::new(sim.clone(), &reg);
        let mut f = fs.create(&p("/s/a")).unwrap();
        f.write_all(b"payload").unwrap();
        f.sync_all().unwrap();
        fs.rename(&p("/s/a"), &p("/s/b")).unwrap();
        fs.sync_dir(&p("/s")).unwrap();
        fs.remove_file(&p("/s/b")).unwrap();
        // Passthrough: the wrapped SimFs numbered exactly the same six
        // operations it would have seen unwrapped.
        assert_eq!(sim.ops(), 6);
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("vfs.ops.create"), 1);
        assert_eq!(snap.counter("vfs.ops.write"), 1);
        assert_eq!(snap.counter("vfs.bytes_written"), 7);
        assert_eq!(snap.counter("vfs.ops.sync_file"), 1);
        assert_eq!(snap.counter("vfs.ops.rename"), 1);
        assert_eq!(snap.counter("vfs.ops.sync_dir"), 1);
        assert_eq!(snap.counter("vfs.ops.remove"), 1);
    }

    #[test]
    fn obsfs_counts_failed_attempts_but_not_their_bytes() {
        use ipactive_obs::{Registry, SnapshotMode};
        let reg = Registry::new();
        let fs = ObsFs::new(SimFs::new().with_fault(1, Inject::Enospc), &reg);
        let mut f = fs.create(&p("/s/a")).unwrap();
        assert!(f.write_all(b"doomed").is_err());
        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("vfs.ops.write"), 1, "the attempt is counted");
        assert_eq!(snap.counter("vfs.bytes_written"), 0, "failed bytes are not");
    }

    /// A killed process loses nothing that was already in the page
    /// cache: unsynced bytes and unsynced renames survive, and the
    /// successor process can operate on the same disk.
    #[test]
    fn exit_process_preserves_unsynced_state_and_unlatches() {
        let fs = SimFs::new().with_fault(3, Inject::PowerCut);
        let mut f = fs.create(&p("/s/.tmp")).unwrap(); // op 0
        f.write_all(b"unsynced").unwrap(); // op 1
        fs.rename(&p("/s/.tmp"), &p("/s/final")).unwrap(); // op 2
        // op 3: the injected "kill" halts the victim mid-protocol.
        assert!(fs.sync_dir(&p("/s")).is_err());
        assert!(fs.powered_off());
        fs.exit_process();
        assert!(!fs.powered_off());
        assert_eq!(fs.ops(), 0, "successor numbers ops from zero");
        // Page-cache state survived the kill intact.
        let mut got = Vec::new();
        fs.open_read(&p("/s/final")).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"unsynced");
        // ...but none of it is durable: a machine crash now loses it.
        let fs = fs.crash(CrashStyle::Pessimist);
        assert!(!fs.exists(&p("/s/final")));
    }

    #[test]
    fn overwrite_reverts_to_old_content_on_pessimist_crash() {
        let fs = SimFs::new();
        let mut f = fs.create(&p("/s/f")).unwrap();
        f.write_all(b"old").unwrap();
        f.sync_all().unwrap();
        fs.sync_dir(&p("/s")).unwrap();
        // New writer truncates in place without completing the
        // durable protocol.
        let mut g = fs.create(&p("/s/f")).unwrap();
        g.write_all(b"newer").unwrap();
        let fs = fs.crash(CrashStyle::Pessimist);
        let mut got = Vec::new();
        fs.open_read(&p("/s/f")).unwrap().read_to_end(&mut got).unwrap();
        assert_eq!(got, b"old", "durable entry still maps the old inode");
    }
}
