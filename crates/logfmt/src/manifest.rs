//! The store manifest: a CRC-protected, generation-journaled record of
//! which days are *committed*.
//!
//! A [`LogStore`](crate::LogStore) batch commit writes its day files
//! under generation-suffixed names (`day-0003.g000007.iplog`) and then
//! publishes them by writing a fresh manifest generation. Readers only
//! trust days the current manifest lists, so a crash anywhere inside a
//! multi-day batch leaves the previous manifest — and therefore the
//! previous fully-consistent day set — in force. There is never a
//! half-committed batch.
//!
//! ## Byte layout (`manifest-GGGGGG.mft`)
//!
//! ```text
//! +----------------+-----------------+------------------+
//! | magic "IPLSMF1\n" (8B)           | generation (LEB) |
//! +----------------+-----------------+------------------+
//! | num_days (LEB)                                      |
//! +-----------------------------------------------------+
//! | per day, ascending by day number:                   |
//! |   day (LEB) | file_generation (LEB)                 |
//! |   records (LEB) | file_len (LEB) | file_crc (4B LE) |
//! +-----------------------------------------------------+
//! | manifest_crc32 over all preceding bytes (4B LE)     |
//! +-----------------------------------------------------+
//! ```
//!
//! Every integer is the same LEB128 varint the frame layer uses; both
//! CRCs are the frame layer's CRC-32. The trailing manifest CRC makes
//! a torn manifest write detectable: decode fails, and the loader
//! falls back to the newest older generation that verifies.

use crate::crc::crc32;
use crate::varint::{decode_u64, encode_u64, VarintError};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// File-name prefix of every manifest generation.
pub const MANIFEST_PREFIX: &str = "manifest-";
/// File-name suffix of every manifest generation.
pub const MANIFEST_SUFFIX: &str = ".mft";
const MAGIC: &[u8; 8] = b"IPLSMF1\n";

/// What the manifest records about one committed day.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DayMeta {
    /// Generation whose day file holds this day's bytes
    /// (`day-DDDD.gGGGGGG.iplog`).
    pub generation: u64,
    /// Number of data records in the day file (the Finish marker is
    /// not counted).
    pub records: u64,
    /// Exact byte length of the day file.
    pub file_len: u64,
    /// CRC-32 over the whole day file.
    pub file_crc: u32,
}

/// The committed state of a store: its current generation and the
/// day → [`DayMeta`] map.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Manifest {
    /// Commit generation; each successful batch commit increments it.
    pub generation: u64,
    /// Committed days, keyed by day number.
    pub days: BTreeMap<u16, DayMeta>,
}

/// Why a manifest file failed to decode.
#[derive(Debug)]
pub enum ManifestError {
    /// The magic header did not match (or the file is too short).
    BadMagic,
    /// A varint field was malformed.
    BadField(VarintError),
    /// The file ended inside a field.
    Truncated,
    /// The trailing CRC-32 did not match the content.
    BadChecksum,
    /// A day number exceeded `u16`.
    DayOutOfRange(u64),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::BadMagic => write!(f, "bad manifest magic"),
            ManifestError::BadField(e) => write!(f, "bad manifest field: {e}"),
            ManifestError::Truncated => write!(f, "manifest truncated"),
            ManifestError::BadChecksum => write!(f, "manifest checksum mismatch"),
            ManifestError::DayOutOfRange(d) => write!(f, "manifest day {d} out of range"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Serializes the manifest, appending the trailing CRC.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.days.len() * 16);
        buf.extend_from_slice(MAGIC);
        encode_u64(&mut buf, self.generation);
        encode_u64(&mut buf, self.days.len() as u64);
        for (&day, meta) in &self.days {
            encode_u64(&mut buf, u64::from(day));
            encode_u64(&mut buf, meta.generation);
            encode_u64(&mut buf, meta.records);
            encode_u64(&mut buf, meta.file_len);
            buf.extend_from_slice(&meta.file_crc.to_le_bytes());
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf
    }

    /// Decodes and verifies a manifest file's bytes.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, ManifestError> {
        if bytes.len() < MAGIC.len() + 4 || &bytes[..MAGIC.len()] != MAGIC {
            return Err(ManifestError::BadMagic);
        }
        let (content, crc_bytes) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc32(content) != stored {
            return Err(ManifestError::BadChecksum);
        }
        let mut rest = &content[MAGIC.len()..];
        let next = |rest: &mut &[u8]| -> Result<u64, ManifestError> {
            if rest.is_empty() {
                return Err(ManifestError::Truncated);
            }
            decode_u64(rest).map_err(ManifestError::BadField)
        };
        let generation = next(&mut rest)?;
        let num_days = next(&mut rest)?;
        let mut days = BTreeMap::new();
        for _ in 0..num_days {
            let day = next(&mut rest)?;
            let day = u16::try_from(day).map_err(|_| ManifestError::DayOutOfRange(day))?;
            let file_generation = next(&mut rest)?;
            let records = next(&mut rest)?;
            let file_len = next(&mut rest)?;
            if rest.len() < 4 {
                return Err(ManifestError::Truncated);
            }
            let (crc_raw, tail) = rest.split_at(4);
            let file_crc = u32::from_le_bytes(crc_raw.try_into().unwrap());
            rest = tail;
            days.insert(day, DayMeta { generation: file_generation, records, file_len, file_crc });
        }
        Ok(Manifest { generation, days })
    }

    /// The file name of generation `gen`'s manifest.
    pub fn file_name(gen: u64) -> String {
        format!("{MANIFEST_PREFIX}{gen:06}{MANIFEST_SUFFIX}")
    }

    /// The path of generation `gen`'s manifest under `dir`.
    pub fn path(dir: &Path, gen: u64) -> PathBuf {
        dir.join(Self::file_name(gen))
    }

    /// Parses a generation number out of a manifest file name.
    pub fn parse_file_name(name: &str) -> Option<u64> {
        name.strip_prefix(MANIFEST_PREFIX)?
            .strip_suffix(MANIFEST_SUFFIX)?
            .parse()
            .ok()
    }
}

/// The file name of `day`'s generation-`gen` data file.
pub fn gen_day_file_name(day: u16, gen: u64) -> String {
    format!("day-{day:04}.g{gen:06}.iplog")
}

/// Parses `(day, generation)` out of a generational day-file name.
pub fn parse_gen_day_file_name(name: &str) -> Option<(u16, u64)> {
    let rest = name.strip_prefix("day-")?.strip_suffix(".iplog")?;
    let (day, gen) = rest.split_once(".g")?;
    // Reject e.g. "day-0001.g01.extra.iplog" masquerading as valid.
    if day.len() != 4 || gen.chars().any(|c| !c.is_ascii_digit()) {
        return None;
    }
    Some((day.parse().ok()?, gen.parse().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut days = BTreeMap::new();
        days.insert(0, DayMeta { generation: 1, records: 10, file_len: 321, file_crc: 0xDEAD });
        days.insert(7, DayMeta { generation: 3, records: 0, file_len: 9, file_crc: 0 });
        days.insert(300, DayMeta { generation: 3, records: 1 << 40, file_len: u64::MAX, file_crc: u32::MAX });
        Manifest { generation: 3, days }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = sample();
        let bytes = m.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), m);
        let empty = Manifest::default();
        assert_eq!(Manifest::decode(&empty.encode()).unwrap(), empty);
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample().encode();
        for pos in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[pos] ^= 0x41;
            assert!(
                Manifest::decode(&dirty).is_err(),
                "flip at byte {pos} slipped through"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for keep in 0..bytes.len() {
            assert!(
                Manifest::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes slipped through"
            );
        }
    }

    #[test]
    fn file_names_roundtrip() {
        assert_eq!(Manifest::file_name(7), "manifest-000007.mft");
        assert_eq!(Manifest::parse_file_name("manifest-000007.mft"), Some(7));
        assert_eq!(Manifest::parse_file_name("manifest-junk.mft"), None);
        assert_eq!(Manifest::parse_file_name("day-0001.iplog"), None);
        assert_eq!(gen_day_file_name(3, 7), "day-0003.g000007.iplog");
        assert_eq!(parse_gen_day_file_name("day-0003.g000007.iplog"), Some((3, 7)));
        assert_eq!(parse_gen_day_file_name("day-0003.iplog"), None);
        assert_eq!(parse_gen_day_file_name("day-0003.g0x.iplog"), None);
    }
}
