//! CRC-32 (IEEE 802.3 polynomial), table-driven.
//!
//! Implemented locally rather than pulling a dependency: the framing
//! layer needs exactly one well-known checksum and nothing else.

/// Reflected polynomial for CRC-32/ISO-HDLC (the "zip" CRC).
const POLY: u32 = 0xEDB8_8320;

fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, entry) in t.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            }
            *entry = crc;
        }
        t
    })
}

/// Computes the CRC-32 of `data` (init `0xFFFF_FFFF`, final xor, as in
/// zlib/PNG/Ethernet).
pub fn crc32(data: &[u8]) -> u32 {
    let t = table();
    let mut crc = u32::MAX;
    for &b in data {
        crc = (crc >> 8) ^ t[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"some frame payload with enough length to matter".to_vec();
        let base = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
