//! # ipactive-logfmt
//!
//! Binary wire format for CDN access-log aggregates.
//!
//! The measurement substrate of this project mirrors the paper's data
//! collection path: edge servers aggregate per-IP request counts and
//! sampled `User-Agent` strings, serialize them into a compact framed
//! stream, and ship them to a collector. This crate defines that stream:
//!
//! * [`Record`] — the log record vocabulary (daily hit aggregates, UA
//!   samples, day boundaries, end-of-stream markers).
//! * [`FrameWriter`] / [`FrameReader`] — length-delimited, CRC-32
//!   checksummed framing over any `Write` / `Read` (or in-memory
//!   buffers via the `bytes` crate).
//! * Fault tolerance: the reader detects truncation and corruption and
//!   can either fail fast or skip damaged frames ([`ReadMode`]),
//!   mirroring the fault-injection philosophy of production network
//!   stacks.
//!
//! ```
//! use ipactive_logfmt::{FrameReader, FrameWriter, ReadMode, Record};
//!
//! let mut buf = Vec::new();
//! let mut w = FrameWriter::new(&mut buf);
//! w.write(&Record::DayStart { day: 3 }).unwrap();
//! w.write(&Record::Hits { day: 3, addr: 0xC0000201.into(), hits: 42 }).unwrap();
//! w.finish().unwrap();
//!
//! let mut r = FrameReader::new(&buf[..], ReadMode::Strict);
//! assert_eq!(r.read().unwrap(), Some(Record::DayStart { day: 3 }));
//! assert!(matches!(r.read().unwrap(), Some(Record::Hits { hits: 42, .. })));
//! assert_eq!(r.read().unwrap(), None); // Finish marker ends the stream.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod crc;
mod frame;
pub mod fsck;
pub mod lease;
pub mod manifest;
mod record;
mod store;
mod varint;
pub mod vfs;

pub use crc::crc32;
pub use frame::{
    FrameError, FrameReader, FrameWriter, QuarantineReason, QuarantinedFrame, ReadMode,
    QUARANTINE_CAPTURE_CAP,
};
pub use fsck::{fsck, fsck_obs, record_fsck, DayCheck, DayVerdict, FsckReport, Quarantined};
pub use lease::{read_lease, write_lease, Lease, LeaseError, LeaseRead};
pub use manifest::{DayMeta, Manifest, ManifestError};
pub use record::{BlockDay, DecodeError, Record};
pub use store::{DayDamage, LogStore, StoreError};
pub use varint::{decode_u64, encode_u64, VarintError};
pub use vfs::{CrashStyle, Fs, FsFile, Inject, ObsFile, ObsFs, OpLabel, RealFs, SimFs};
