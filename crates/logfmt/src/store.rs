//! On-disk log store: one framed file per observation day.
//!
//! Production collectors persist their aggregates as a directory of
//! day files (`day-0000.iplog`, `day-0001.iplog`, …), each an
//! independently framed stream — so a damaged or missing day costs
//! that day, not the dataset. [`LogStore`] provides that layout with
//! the same strict/tolerant read semantics as the in-memory framing.

use crate::{FrameError, FrameReader, FrameWriter, ReadMode, Record};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};

/// A directory of per-day framed log files.
#[derive(Debug, Clone)]
pub struct LogStore {
    dir: PathBuf,
}

/// Error from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A day file's content was damaged (strict reads only).
    Frame(FrameError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        StoreError::Frame(e)
    }
}

impl LogStore {
    /// Opens (creating if needed) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<LogStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(LogStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn day_path(&self, day: u16) -> PathBuf {
        self.dir.join(format!("day-{day:04}.iplog"))
    }

    /// Writes one day's records, replacing any existing file for that
    /// day. The write goes to a temporary file first and is renamed
    /// into place, so readers never observe a half-written day.
    pub fn write_day(&self, day: u16, records: &[Record]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(".day-{day:04}.tmp"));
        {
            let mut writer = FrameWriter::new(BufWriter::new(File::create(&tmp)?));
            for rec in records {
                writer.write(rec)?;
            }
            writer.finish()?.into_inner().map_err(|e| StoreError::Io(e.into_error()))?
                .sync_all()?;
        }
        fs::rename(&tmp, self.day_path(day))?;
        Ok(())
    }

    /// Whether a file exists for `day`.
    pub fn has_day(&self, day: u16) -> bool {
        self.day_path(day).exists()
    }

    /// The days present in the store, ascending.
    pub fn days(&self) -> Result<Vec<u16>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("day-").and_then(|s| s.strip_suffix(".iplog"))
            {
                if let Ok(day) = num.parse::<u16>() {
                    out.push(day);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Reads one day's records with the given tolerance. Returns the
    /// records plus the number of damaged frames skipped.
    pub fn read_day(&self, day: u16, mode: ReadMode) -> Result<(Vec<Record>, u64), StoreError> {
        let file = File::open(self.day_path(day))?;
        let mut reader = FrameReader::new(BufReader::new(file), mode);
        let records = reader.read_all()?;
        Ok((records, reader.skipped()))
    }

    /// Streams every stored day through `f`, in day order, tolerantly
    /// (a damaged day delivers what survived). Returns total skipped
    /// frames.
    pub fn for_each_day(
        &self,
        mut f: impl FnMut(u16, Vec<Record>),
    ) -> Result<u64, StoreError> {
        let mut skipped = 0;
        for day in self.days()? {
            let (records, s) = self.read_day(day, ReadMode::Tolerant)?;
            skipped += s;
            f(day, records);
        }
        Ok(skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipactive-logstore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn recs(day: u16, n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Hits {
                day,
                addr: Addr::new(0x0A000000 + i),
                hits: (i as u64 + 1) * 3,
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let store = LogStore::open(tmpdir("roundtrip")).unwrap();
        store.write_day(0, &recs(0, 10)).unwrap();
        store.write_day(3, &recs(3, 5)).unwrap();
        assert!(store.has_day(0));
        assert!(!store.has_day(1));
        assert_eq!(store.days().unwrap(), vec![0, 3]);
        let (got, skipped) = store.read_day(0, ReadMode::Strict).unwrap();
        assert_eq!(got, recs(0, 10));
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rewrite_replaces_day() {
        let store = LogStore::open(tmpdir("rewrite")).unwrap();
        store.write_day(7, &recs(7, 10)).unwrap();
        store.write_day(7, &recs(7, 2)).unwrap();
        let (got, _) = store.read_day(7, ReadMode::Strict).unwrap();
        assert_eq!(got.len(), 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn for_each_day_streams_in_order() {
        let store = LogStore::open(tmpdir("stream")).unwrap();
        for day in [5u16, 1, 9] {
            store.write_day(day, &recs(day, 3)).unwrap();
        }
        let mut seen = Vec::new();
        let skipped = store
            .for_each_day(|day, records| {
                assert_eq!(records.len(), 3);
                seen.push(day);
            })
            .unwrap();
        assert_eq!(seen, vec![1, 5, 9]);
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn damaged_day_is_contained() {
        let store = LogStore::open(tmpdir("damage")).unwrap();
        store.write_day(0, &recs(0, 20)).unwrap();
        store.write_day(1, &recs(1, 20)).unwrap();
        // Corrupt day 0's file in the middle.
        let path = store.dir().join("day-0000.iplog");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&path, bytes).unwrap();
        // Strict read of day 0 fails or loses data; tolerant succeeds.
        let (survived, _) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert!(survived.len() < 20);
        for rec in &survived {
            assert!(recs(0, 20).contains(rec), "fabricated {rec:?}");
        }
        // Day 1 is untouched.
        let (clean, skipped) = store.read_day(1, ReadMode::Strict).unwrap();
        assert_eq!(clean, recs(1, 20));
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_day_is_an_io_error() {
        let store = LogStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(store.read_day(42, ReadMode::Strict), Err(StoreError::Io(_))));
        // Tolerant mode cannot paper over an absent file either.
        assert!(matches!(store.read_day(42, ReadMode::Tolerant), Err(StoreError::Io(_))));
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Cuts `n` bytes off the end of a day file, landing mid-frame.
    fn truncate_day(store: &LogStore, day: u16, n: usize) {
        let path = store.dir().join(format!("day-{day:04}.iplog"));
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.len() > n, "test file too small to truncate");
        fs::write(&path, &bytes[..bytes.len() - n]).unwrap();
    }

    #[test]
    fn truncated_final_frame_strict_is_a_frame_error() {
        let store = LogStore::open(tmpdir("trunc-strict")).unwrap();
        store.write_day(2, &recs(2, 8)).unwrap();
        truncate_day(&store, 2, 3);
        match store.read_day(2, ReadMode::Strict) {
            Err(StoreError::Frame(FrameError::TruncatedFrame)) => {}
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_final_frame_tolerant_keeps_the_prefix() {
        let store = LogStore::open(tmpdir("trunc-tolerant")).unwrap();
        let written = recs(4, 8);
        store.write_day(4, &written).unwrap();
        truncate_day(&store, 4, 3);
        let (survived, skipped) = store.read_day(4, ReadMode::Tolerant).unwrap();
        // The damaged tail (the Finish marker here) is skipped, every
        // intact frame before it survives in order, nothing is invented.
        assert_eq!(skipped, 1);
        assert_eq!(survived, written, "intact prefix must survive unchanged");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncation_inside_a_record_loses_only_that_record() {
        let store = LogStore::open(tmpdir("trunc-mid")).unwrap();
        // Measure the framing overhead so the cut lands mid-way
        // through the final *data* frame, past the Finish marker.
        let path = store.dir().join("day-0006.iplog");
        store.write_day(6, &[]).unwrap();
        let finish_len = fs::read(&path).unwrap().len();
        store.write_day(6, &recs(6, 7)).unwrap();
        let seven_len = fs::read(&path).unwrap().len();
        let written = recs(6, 8);
        store.write_day(6, &written).unwrap();
        let bytes = fs::read(&path).unwrap();
        let last_frame = bytes.len() - seven_len;
        let keep = seven_len - finish_len + last_frame / 2;
        fs::write(&path, &bytes[..keep]).unwrap();
        assert!(matches!(
            store.read_day(6, ReadMode::Strict),
            Err(StoreError::Frame(FrameError::TruncatedFrame))
        ));
        let (survived, skipped) = store.read_day(6, ReadMode::Tolerant).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(survived, written[..7], "first seven records must survive");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_has_no_days() {
        let store = LogStore::open(tmpdir("empty")).unwrap();
        assert!(store.days().unwrap().is_empty());
        assert_eq!(store.for_each_day(|_, _| panic!("no days")).unwrap(), 0);
        let _ = fs::remove_dir_all(store.dir());
    }
}
