//! On-disk log store: one framed file per observation day, plus an
//! optional journaled manifest for atomic multi-day commits.
//!
//! Production collectors persist their aggregates as a directory of
//! day files (`day-0000.iplog`, `day-0001.iplog`, …), each an
//! independently framed stream — so a damaged or missing day costs
//! that day, not the dataset. [`LogStore`] provides that layout with
//! the same strict/tolerant read semantics as the in-memory framing.
//!
//! Two write paths coexist:
//!
//! * [`LogStore::write_day`] — the single-day path: tmp file, fsync,
//!   rename, directory fsync. One day commits or does not; it cannot
//!   tear.
//! * [`LogStore::commit_days`] — the batch path: every day file of
//!   the batch is written under a generation-suffixed name
//!   (`day-0003.g000007.iplog`) and made durable, then one new
//!   [`Manifest`] generation publishes the whole batch atomically.
//!   Readers resolve committed days through the manifest, so a crash
//!   anywhere inside the batch leaves the previous committed set —
//!   never a half-committed batch. The manifest also records each
//!   day's record count, byte length, and whole-file CRC, which
//!   closes the one hole frame CRCs cannot: a file truncated exactly
//!   on a frame boundary reads "cleanly" at the frame layer but is
//!   caught by the footer check.
//!
//! All I/O goes through the [`Fs`] plane, so the crash-point suite in
//! `tests/crashpoints.rs` can run the store on [`SimFs`] and cut
//! power at every single operation.
//!
//! [`SimFs`]: crate::SimFs

use crate::crc::crc32;
use crate::manifest::{gen_day_file_name, Manifest, ManifestError};
use crate::vfs::{Fs, FsFile, RealFs};
use crate::{FrameError, FrameReader, FrameWriter, ReadMode, Record};
use ipactive_obs::{metrics::DECADE_BOUNDS, Counter, Event, EventKind, Histogram, Registry};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers within one process; combined with
/// the pid it makes every tmp file name unique, so two writers racing
/// on the same day never interleave into one tmp file.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Pre-fetched handles into the store's observability registry — one
/// lookup at attach time, raw atomic increments on the I/O paths, so
/// instrumentation never adds an `Fs` operation (which would renumber
/// the crash-point grid) and never takes a lock mid-write.
#[derive(Debug, Clone)]
struct StoreObs {
    registry: Registry,
    /// `store.fsync` — every file or directory sync the store issues.
    fsync: Counter,
    /// `store.bytes_written` — payload bytes of generation day files
    /// and manifests (the in-memory-encoded paths, where the byte
    /// count is known without extra I/O).
    bytes_written: Counter,
    /// `store.day_writes` — day files written (either path).
    day_writes: Counter,
    /// `store.records_written` / `store.records_read`.
    records_written: Counter,
    records_read: Counter,
    /// `store.day_reads` — day reads served.
    day_reads: Counter,
    /// Damage tallies from tolerant reads.
    frames_skipped: Counter,
    resyncs: Counter,
    lost_committed: Counter,
    /// `store.commits` — successful manifest commits.
    commits: Counter,
    /// `store.write.records` — records-per-day-write distribution.
    write_records: Histogram,
}

impl StoreObs {
    fn new(registry: &Registry) -> StoreObs {
        StoreObs {
            registry: registry.clone(),
            fsync: registry.counter("store.fsync"),
            bytes_written: registry.counter("store.bytes_written"),
            day_writes: registry.counter("store.day_writes"),
            records_written: registry.counter("store.records_written"),
            records_read: registry.counter("store.records_read"),
            day_reads: registry.counter("store.day_reads"),
            frames_skipped: registry.counter("store.frames_skipped"),
            resyncs: registry.counter("store.resyncs"),
            lost_committed: registry.counter("store.lost_committed"),
            commits: registry.counter("store.commits"),
            write_records: registry.histogram("store.write.records", DECADE_BOUNDS),
        }
    }

    /// Journals what a tolerant day read lost. Truncated tails and
    /// committed-record shortfalls are crash evidence; resyncs are
    /// framing damage.
    fn record_damage(&self, day: u16, damage: &DayDamage) {
        if damage.skipped > 0 {
            self.frames_skipped.add(damage.skipped);
        }
        if damage.resyncs > 0 {
            self.resyncs.add(damage.resyncs);
            self.registry.emit(
                Event::new(EventKind::Resync)
                    .day(day)
                    .detail(format!("{} resync scans reading day file", damage.resyncs)),
            );
        }
        if damage.truncated_tail {
            self.frames_skipped.inc();
            self.registry.emit(
                Event::new(EventKind::CrashRecovery)
                    .day(day)
                    .detail("day file ends inside a frame (truncated tail)"),
            );
        }
        if damage.lost_committed > 0 {
            self.lost_committed.add(damage.lost_committed);
            self.registry.emit(
                Event::new(EventKind::CrashRecovery)
                    .day(day)
                    .detail(format!("{} committed records missing", damage.lost_committed)),
            );
        }
    }
}

/// A directory of per-day framed log files (optionally manifested),
/// generic over the [`Fs`] it performs I/O through.
#[derive(Debug, Clone)]
pub struct LogStore<F: Fs = RealFs> {
    dir: PathBuf,
    fs: F,
    manifest: Option<Manifest>,
    obs: StoreObs,
}

/// Error from store operations, carrying the offending day and path
/// so supervisor logs and `fsck` output are actionable.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io {
        /// The day being read or written, when the operation had one.
        day: Option<u16>,
        /// The file or directory the operation failed on.
        path: PathBuf,
        /// The underlying error.
        source: io::Error,
    },
    /// A day file's content was damaged (strict reads only).
    Frame {
        /// The day whose file is damaged.
        day: u16,
        /// The damaged file.
        path: PathBuf,
        /// The frame-level failure.
        source: FrameError,
    },
    /// Manifest files exist but none of them decodes cleanly — the
    /// committed state is unknowable and must not be guessed at.
    Manifest {
        /// The newest manifest file that failed to decode.
        path: PathBuf,
        /// Why it failed.
        source: ManifestError,
    },
    /// A committed day failed its manifest footer verification
    /// (strict reads only): wrong length, wrong whole-file CRC, or
    /// fewer records than the manifest promised.
    Committed {
        /// The day that failed verification.
        day: u16,
        /// The day file checked.
        path: PathBuf,
        /// Human-readable mismatch description.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { day: Some(day), path, source } => {
                write!(f, "io error on day {day} ({}): {source}", path.display())
            }
            StoreError::Io { day: None, path, source } => {
                write!(f, "io error on {}: {source}", path.display())
            }
            StoreError::Frame { day, path, source } => {
                write!(f, "frame error in day {day} ({}): {source}", path.display())
            }
            StoreError::Manifest { path, source } => {
                write!(f, "manifest error ({}): {source}", path.display())
            }
            StoreError::Committed { day, path, detail } => {
                write!(f, "committed day {day} failed verification ({}): {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Frame { source, .. } => Some(source),
            StoreError::Manifest { source, .. } => Some(source),
            StoreError::Committed { .. } => None,
        }
    }
}

impl StoreError {
    fn io(day: Option<u16>, path: &Path, source: io::Error) -> StoreError {
        StoreError::Io { day, path: path.to_path_buf(), source }
    }

    /// The day the error concerns, when it concerns one.
    pub fn day(&self) -> Option<u16> {
        match self {
            StoreError::Io { day, .. } => *day,
            StoreError::Frame { day, .. } | StoreError::Committed { day, .. } => Some(*day),
            StoreError::Manifest { .. } => None,
        }
    }

    /// The file or directory the error concerns.
    pub fn path(&self) -> &Path {
        match self {
            StoreError::Io { path, .. }
            | StoreError::Frame { path, .. }
            | StoreError::Manifest { path, .. }
            | StoreError::Committed { path, .. } => path,
        }
    }
}

/// Per-day damage accounting from a tolerant read, separating the two
/// shapes of loss that a single `skipped` counter used to conflate:
/// frames lost *inside* the file versus a file *cut short at EOF*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DayDamage {
    /// Frames lost mid-file (bad checksum, bad record, lost framing).
    pub skipped: u64,
    /// Whether the file ended inside a frame — trailing truncation,
    /// the shape a power cut or torn write leaves behind.
    pub truncated_tail: bool,
    /// Times the reader lost framing and scanned for a new sync byte.
    pub resyncs: u64,
    /// Records the manifest promised for this committed day that did
    /// not materialize (always 0 for unmanifested days).
    pub lost_committed: u64,
}

impl DayDamage {
    /// Whether the read saw no damage of any shape.
    pub fn is_clean(&self) -> bool {
        self.skipped == 0 && !self.truncated_tail && self.resyncs == 0 && self.lost_committed == 0
    }

    /// Total damaged frames, counting a truncated tail as one — the
    /// quantity the old conflated `skipped` counter reported.
    pub fn lost_frames(&self) -> u64 {
        self.skipped + u64::from(self.truncated_tail)
    }
}

impl<F: Fs> LogStore<F> {
    /// Opens (creating if needed) a store rooted at `dir` on the given
    /// filesystem, sweeping any stale `.day-*.tmp` / `.manifest-*.tmp`
    /// / `.lease-*.tmp` files a crashed writer left behind — a tmp
    /// file is only
    /// meaningful to the call that created it, so on open every
    /// survivor is garbage. Loads the newest manifest generation that
    /// verifies; errors if manifests exist but none does.
    pub fn open_on(fs: F, dir: impl Into<PathBuf>) -> Result<LogStore<F>, StoreError> {
        Self::open_on_obs(fs, dir, &Registry::new())
    }

    /// [`LogStore::open_on`] with an explicit observability registry:
    /// the store records I/O counters (`store.fsync`,
    /// `store.bytes_written`, …) and journals recovery evidence
    /// (swept tmp files, truncated tails, committed-record loss) into
    /// `registry` for the life of this handle and its clones.
    pub fn open_on_obs(
        fs: F,
        dir: impl Into<PathBuf>,
        registry: &Registry,
    ) -> Result<LogStore<F>, StoreError> {
        let obs = StoreObs::new(registry);
        let dir = dir.into();
        fs.create_dir_all(&dir).map_err(|e| StoreError::io(None, &dir, e))?;
        let names = fs.read_dir_names(&dir).map_err(|e| StoreError::io(None, &dir, e))?;
        for name in &names {
            let stale = (name.starts_with(".day-")
                || name.starts_with(".manifest-")
                || name.starts_with(".lease-"))
                && name.ends_with(".tmp");
            if stale {
                // Best effort: a sweep that loses a race with a live
                // writer's cleanup must not fail the open.
                let _ = fs.remove_file(&dir.join(name));
                // Fixed, path-free detail: tmp names embed a pid, and
                // deterministic snapshots must not.
                obs.registry.emit(
                    Event::new(EventKind::CrashRecovery)
                        .detail("swept stale tmp file left by a crashed writer"),
                );
            }
        }
        let manifest = Self::load_manifest(&fs, &dir, &names)?;
        Ok(LogStore { dir, fs, manifest, obs })
    }

    /// Re-points this handle's observability at `registry`. Useful
    /// when a store is opened before the run's registry exists.
    pub fn attach_obs(&mut self, registry: &Registry) {
        self.obs = StoreObs::new(registry);
    }

    /// Scans manifest generations newest-first and returns the first
    /// that decodes and whose encoded generation matches its file
    /// name. A torn or corrupt newest generation falls back to its
    /// predecessor; if manifests exist but none verifies, that is an
    /// error — guessing "nothing committed" would silently unpublish
    /// data.
    fn load_manifest(fs: &F, dir: &Path, names: &[String]) -> Result<Option<Manifest>, StoreError> {
        let mut gens: Vec<u64> =
            names.iter().filter_map(|n| Manifest::parse_file_name(n)).collect();
        gens.sort_unstable();
        let mut last_err: Option<(PathBuf, ManifestError)> = None;
        for &gen in gens.iter().rev() {
            let path = Manifest::path(dir, gen);
            let mut bytes = Vec::new();
            match fs.open_read(&path).and_then(|mut f| f.read_to_end(&mut bytes)) {
                Ok(_) => {}
                Err(e) => return Err(StoreError::io(None, &path, e)),
            }
            match Manifest::decode(&bytes) {
                Ok(m) if m.generation == gen => return Ok(Some(m)),
                Ok(_) => {
                    last_err.get_or_insert((path, ManifestError::BadMagic));
                }
                Err(e) => {
                    last_err.get_or_insert((path, e));
                }
            }
        }
        match last_err {
            Some((path, source)) => Err(StoreError::Manifest { path, source }),
            None => Ok(None),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The filesystem plane the store runs on.
    pub fn fs(&self) -> &F {
        &self.fs
    }

    /// The current committed manifest, if the store has one.
    pub fn manifest(&self) -> Option<&Manifest> {
        self.manifest.as_ref()
    }

    fn day_path(&self, day: u16) -> PathBuf {
        self.dir.join(format!("day-{day:04}.iplog"))
    }

    /// The file a read of `day` resolves to: the manifest-committed
    /// generation file when one is published, the legacy single-day
    /// file otherwise.
    pub fn resolved_day_path(&self, day: u16) -> PathBuf {
        match self.manifest.as_ref().and_then(|m| m.days.get(&day)) {
            Some(meta) => self.dir.join(gen_day_file_name(day, meta.generation)),
            None => self.day_path(day),
        }
    }

    fn tmp_name(&self, stem: &str) -> PathBuf {
        self.dir.join(format!(
            ".{stem}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ))
    }

    /// Writes one day's records, replacing any existing file for that
    /// day. The write goes to a uniquely named temporary file first
    /// (pid + counter, so concurrent writers for the same day cannot
    /// interleave), is fsynced, renamed into place, and the directory
    /// is fsynced after the rename — without that last step a crash
    /// can lose the rename itself and silently drop a "durably
    /// written" day. A failed write removes its tmp file.
    ///
    /// This is the single-day path; it does not touch the manifest.
    /// On a store with committed days, reads of a committed day
    /// resolve to the committed generation, so use
    /// [`LogStore::commit_days`] there instead.
    pub fn write_day(&self, day: u16, records: &[Record]) -> Result<(), StoreError> {
        let tmp = self.tmp_name(&format!("day-{day:04}"));
        let result = self.write_day_at(&tmp, day, records);
        if result.is_err() {
            let _ = self.fs.remove_file(&tmp);
        }
        result
    }

    fn write_day_at(&self, tmp: &Path, day: u16, records: &[Record]) -> Result<(), StoreError> {
        let d = Some(day);
        let file = self.fs.create(tmp).map_err(|e| StoreError::io(d, tmp, e))?;
        let mut writer = FrameWriter::new(BufWriter::new(file));
        for rec in records {
            writer.write(rec).map_err(|e| StoreError::io(d, tmp, e))?;
        }
        writer
            .finish()
            .map_err(|e| StoreError::io(d, tmp, e))?
            .into_inner()
            .map_err(|e| StoreError::io(d, tmp, e.into_error()))?
            .sync_all()
            .map_err(|e| StoreError::io(d, tmp, e))?;
        self.obs.fsync.inc();
        let dest = self.day_path(day);
        self.fs.rename(tmp, &dest).map_err(|e| StoreError::io(d, &dest, e))?;
        self.sync_dir(d)?;
        self.obs.day_writes.inc();
        self.obs.records_written.add(records.len() as u64);
        self.obs.write_records.observe(records.len() as u64);
        Ok(())
    }

    /// Makes renames durable by fsyncing the store directory.
    fn sync_dir(&self, day: Option<u16>) -> Result<(), StoreError> {
        self.fs.sync_dir(&self.dir).map_err(|e| StoreError::io(day, &self.dir, e))?;
        self.obs.fsync.inc();
        Ok(())
    }

    /// Atomically commits a batch of days: every day file is written
    /// under the next generation's name and made durable, then one
    /// new manifest generation publishes the whole batch. A reader
    /// (or a crash-and-reopen) observes either the previous committed
    /// set or the full new one — never part of the batch.
    ///
    /// Days already committed are superseded by the batch; days not
    /// in the batch stay committed untouched. Superseded generation
    /// files and old manifest generations are garbage-collected best
    /// effort after the commit point (a crash before the sweep leaves
    /// orphans for `fsck` to reconcile).
    ///
    /// Returns the new generation number.
    pub fn commit_days(&mut self, batch: &[(u16, Vec<Record>)]) -> Result<u64, StoreError> {
        let current = self.manifest.clone().unwrap_or_default();
        if batch.is_empty() {
            return Ok(current.generation);
        }
        for (i, (day, _)) in batch.iter().enumerate() {
            if batch[..i].iter().any(|(d, _)| d == day) {
                return Err(StoreError::io(
                    Some(*day),
                    &self.dir,
                    io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("day {day} appears twice in one batch"),
                    ),
                ));
            }
        }
        let gen = current.generation + 1;
        let mut next = Manifest { generation: gen, days: current.days.clone() };
        for (day, records) in batch {
            let meta = self.write_gen_day(*day, gen, records)?;
            next.days.insert(*day, meta);
        }
        // One directory sync makes every batch file's name durable
        // before the manifest that references them can publish.
        self.sync_dir(None)?;

        // Commit point: tmp + fsync + rename + dir fsync, same
        // protocol as a day file.
        let manifest_path = Manifest::path(&self.dir, gen);
        let tmp = self.tmp_name(&format!("manifest-{gen:06}"));
        let encoded = next.encode();
        let write = (|| -> Result<(), StoreError> {
            let mut file = self.fs.create(&tmp).map_err(|e| StoreError::io(None, &tmp, e))?;
            file.write_all(&encoded).map_err(|e| StoreError::io(None, &tmp, e))?;
            file.sync_all().map_err(|e| StoreError::io(None, &tmp, e))?;
            self.obs.fsync.inc();
            self.obs.bytes_written.add(encoded.len() as u64);
            self.fs
                .rename(&tmp, &manifest_path)
                .map_err(|e| StoreError::io(None, &manifest_path, e))?;
            self.sync_dir(None)
        })();
        if let Err(e) = write {
            let _ = self.fs.remove_file(&tmp);
            return Err(e);
        }
        self.obs.commits.inc();

        // Post-commit sweep, best effort: old manifests and day files
        // this batch superseded.
        for (day, _) in batch {
            if let Some(old) = current.days.get(day) {
                let _ = self.fs.remove_file(&self.dir.join(gen_day_file_name(*day, old.generation)));
            }
            let legacy = self.day_path(*day);
            if self.fs.exists(&legacy) {
                let _ = self.fs.remove_file(&legacy);
            }
        }
        if current.generation > 0 || self.manifest.is_some() {
            let _ = self.fs.remove_file(&Manifest::path(&self.dir, current.generation));
        }
        self.manifest = Some(next);
        Ok(gen)
    }

    /// Writes one batch day under its generation name, fsynced but
    /// not yet published, and returns its manifest footer.
    fn write_gen_day(
        &self,
        day: u16,
        gen: u64,
        records: &[Record],
    ) -> Result<crate::manifest::DayMeta, StoreError> {
        let d = Some(day);
        let mut writer = FrameWriter::new(Vec::new());
        for rec in records {
            // Writing to a Vec cannot fail.
            writer.write(rec).expect("in-memory frame write");
        }
        let bytes = writer.finish().expect("in-memory frame finish");
        let meta = crate::manifest::DayMeta {
            generation: gen,
            records: records.len() as u64,
            file_len: bytes.len() as u64,
            file_crc: crc32(&bytes),
        };
        let tmp = self.tmp_name(&format!("day-{day:04}.g{gen:06}"));
        let dest = self.dir.join(gen_day_file_name(day, gen));
        let write = (|| -> Result<(), StoreError> {
            let mut file = self.fs.create(&tmp).map_err(|e| StoreError::io(d, &tmp, e))?;
            file.write_all(&bytes).map_err(|e| StoreError::io(d, &tmp, e))?;
            file.sync_all().map_err(|e| StoreError::io(d, &tmp, e))?;
            self.obs.fsync.inc();
            self.fs.rename(&tmp, &dest).map_err(|e| StoreError::io(d, &dest, e))
        })();
        if let Err(e) = write {
            let _ = self.fs.remove_file(&tmp);
            return Err(e);
        }
        self.obs.bytes_written.add(bytes.len() as u64);
        self.obs.day_writes.inc();
        self.obs.records_written.add(records.len() as u64);
        self.obs.write_records.observe(records.len() as u64);
        Ok(meta)
    }

    /// Whether a file exists for `day` (committed or legacy).
    pub fn has_day(&self, day: u16) -> bool {
        if self.manifest.as_ref().is_some_and(|m| m.days.contains_key(&day)) {
            return true;
        }
        self.fs.exists(&self.day_path(day))
    }

    /// The days present in the store, ascending: the union of
    /// manifest-committed days and legacy day files.
    pub fn days(&self) -> Result<Vec<u16>, StoreError> {
        let names =
            self.fs.read_dir_names(&self.dir).map_err(|e| StoreError::io(None, &self.dir, e))?;
        let mut out: Vec<u16> = names
            .iter()
            .filter_map(|name| {
                name.strip_prefix("day-")?.strip_suffix(".iplog")?.parse::<u16>().ok()
            })
            .collect();
        if let Some(m) = &self.manifest {
            out.extend(m.days.keys().copied());
        }
        out.sort_unstable();
        out.dedup();
        Ok(out)
    }

    /// The days the current manifest has committed, ascending (empty
    /// for a store without a manifest).
    pub fn committed_days(&self) -> Vec<u16> {
        self.manifest.as_ref().map(|m| m.days.keys().copied().collect()).unwrap_or_default()
    }

    /// Reads one day's records with the given tolerance. Returns the
    /// records plus a [`DayDamage`] account that distinguishes
    /// mid-file loss from trailing truncation, and — for committed
    /// days — verifies the manifest footer (length, whole-file CRC,
    /// record count), which catches truncation on a frame boundary
    /// that the frame layer alone would read as a clean stream.
    pub fn read_day(
        &self,
        day: u16,
        mode: ReadMode,
    ) -> Result<(Vec<Record>, DayDamage), StoreError> {
        match self.manifest.as_ref().and_then(|m| m.days.get(&day)).copied() {
            Some(meta) => self.read_committed_day(day, meta, mode),
            None => self.read_legacy_day(day, mode),
        }
    }

    fn read_legacy_day(
        &self,
        day: u16,
        mode: ReadMode,
    ) -> Result<(Vec<Record>, DayDamage), StoreError> {
        let path = self.day_path(day);
        let file = self.fs.open_read(&path).map_err(|e| StoreError::io(Some(day), &path, e))?;
        let mut reader = FrameReader::new(BufReader::new(file), mode);
        let records = reader
            .read_all()
            .map_err(|source| StoreError::Frame { day, path: path.clone(), source })?;
        let truncated_tail = reader.truncated_tail();
        let damage = DayDamage {
            skipped: reader.skipped() - u64::from(truncated_tail),
            truncated_tail,
            resyncs: reader.resyncs(),
            lost_committed: 0,
        };
        self.obs.day_reads.inc();
        self.obs.records_read.add(records.len() as u64);
        self.obs.record_damage(day, &damage);
        Ok((records, damage))
    }

    fn read_committed_day(
        &self,
        day: u16,
        meta: crate::manifest::DayMeta,
        mode: ReadMode,
    ) -> Result<(Vec<Record>, DayDamage), StoreError> {
        let path = self.dir.join(gen_day_file_name(day, meta.generation));
        let mut bytes = Vec::new();
        self.fs
            .open_read(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| StoreError::io(Some(day), &path, e))?;
        let footer_mismatch = if bytes.len() as u64 != meta.file_len {
            Some(format!("file is {} bytes, manifest committed {}", bytes.len(), meta.file_len))
        } else if crc32(&bytes) != meta.file_crc {
            Some("whole-file CRC mismatch against manifest".to_string())
        } else {
            None
        };
        if let (Some(detail), ReadMode::Strict) = (&footer_mismatch, mode) {
            return Err(StoreError::Committed { day, path, detail: detail.clone() });
        }
        let mut reader = FrameReader::new(&bytes[..], mode);
        let records = reader
            .read_all()
            .map_err(|source| StoreError::Frame { day, path: path.clone(), source })?;
        if mode == ReadMode::Strict && (records.len() as u64) != meta.records {
            return Err(StoreError::Committed {
                day,
                path,
                detail: format!(
                    "read {} records, manifest committed {}",
                    records.len(),
                    meta.records
                ),
            });
        }
        let truncated_tail = reader.truncated_tail();
        let damage = DayDamage {
            skipped: reader.skipped() - u64::from(truncated_tail),
            truncated_tail,
            resyncs: reader.resyncs(),
            lost_committed: meta.records.saturating_sub(records.len() as u64),
        };
        self.obs.day_reads.inc();
        self.obs.records_read.add(records.len() as u64);
        self.obs.record_damage(day, &damage);
        Ok((records, damage))
    }

    /// Streams every stored day through `f`, in day order, tolerantly
    /// (a damaged day delivers what survived). Returns total damaged
    /// frames (mid-file skips plus truncated tails).
    pub fn for_each_day(
        &self,
        mut f: impl FnMut(u16, Vec<Record>),
    ) -> Result<u64, StoreError> {
        let mut lost = 0;
        for day in self.days()? {
            let (records, damage) = self.read_day(day, ReadMode::Tolerant)?;
            lost += damage.lost_frames();
            f(day, records);
        }
        Ok(lost)
    }
}

impl LogStore<RealFs> {
    /// Opens (creating if needed) a store rooted at `dir` on the real
    /// filesystem. See [`LogStore::open_on`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<LogStore<RealFs>, StoreError> {
        LogStore::open_on(RealFs, dir)
    }

    /// [`LogStore::open`] with an explicit observability registry.
    /// See [`LogStore::open_on_obs`].
    pub fn open_obs(
        dir: impl Into<PathBuf>,
        registry: &Registry,
    ) -> Result<LogStore<RealFs>, StoreError> {
        LogStore::open_on_obs(RealFs, dir, registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;
    use std::fs;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipactive-logstore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn recs(day: u16, n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Hits {
                day,
                addr: Addr::new(0x0A000000 + i),
                hits: (i as u64 + 1) * 3,
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let store = LogStore::open(tmpdir("roundtrip")).unwrap();
        store.write_day(0, &recs(0, 10)).unwrap();
        store.write_day(3, &recs(3, 5)).unwrap();
        assert!(store.has_day(0));
        assert!(!store.has_day(1));
        assert_eq!(store.days().unwrap(), vec![0, 3]);
        let (got, damage) = store.read_day(0, ReadMode::Strict).unwrap();
        assert_eq!(got, recs(0, 10));
        assert!(damage.is_clean());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rewrite_replaces_day() {
        let store = LogStore::open(tmpdir("rewrite")).unwrap();
        store.write_day(7, &recs(7, 10)).unwrap();
        store.write_day(7, &recs(7, 2)).unwrap();
        let (got, _) = store.read_day(7, ReadMode::Strict).unwrap();
        assert_eq!(got.len(), 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn for_each_day_streams_in_order() {
        let store = LogStore::open(tmpdir("stream")).unwrap();
        for day in [5u16, 1, 9] {
            store.write_day(day, &recs(day, 3)).unwrap();
        }
        let mut seen = Vec::new();
        let skipped = store
            .for_each_day(|day, records| {
                assert_eq!(records.len(), 3);
                seen.push(day);
            })
            .unwrap();
        assert_eq!(seen, vec![1, 5, 9]);
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn damaged_day_is_contained() {
        let store = LogStore::open(tmpdir("damage")).unwrap();
        store.write_day(0, &recs(0, 20)).unwrap();
        store.write_day(1, &recs(1, 20)).unwrap();
        // Corrupt day 0's file in the middle.
        let path = store.dir().join("day-0000.iplog");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&path, bytes).unwrap();
        // Strict read of day 0 fails or loses data; tolerant succeeds.
        let (survived, damage) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert!(survived.len() < 20);
        assert!(!damage.is_clean());
        assert!(
            !damage.truncated_tail,
            "mid-file corruption must not be reported as trailing truncation"
        );
        for rec in &survived {
            assert!(recs(0, 20).contains(rec), "fabricated {rec:?}");
        }
        // Day 1 is untouched.
        let (clean, damage) = store.read_day(1, ReadMode::Strict).unwrap();
        assert_eq!(clean, recs(1, 20));
        assert!(damage.is_clean());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_day_is_an_io_error_with_context() {
        let store = LogStore::open(tmpdir("missing")).unwrap();
        match store.read_day(42, ReadMode::Strict) {
            Err(e @ StoreError::Io { day: Some(42), .. }) => {
                assert_eq!(e.day(), Some(42));
                assert!(e.path().to_string_lossy().contains("day-0042.iplog"));
                assert!(e.to_string().contains("day 42"), "display lacks day: {e}");
            }
            other => panic!("expected contextual io error, got {other:?}"),
        }
        // Tolerant mode cannot paper over an absent file either.
        assert!(matches!(store.read_day(42, ReadMode::Tolerant), Err(StoreError::Io { .. })));
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Cuts `n` bytes off the end of a day file, landing mid-frame.
    fn truncate_day(store: &LogStore, day: u16, n: usize) {
        let path = store.dir().join(format!("day-{day:04}.iplog"));
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.len() > n, "test file too small to truncate");
        fs::write(&path, &bytes[..bytes.len() - n]).unwrap();
    }

    #[test]
    fn truncated_final_frame_strict_is_a_frame_error() {
        let store = LogStore::open(tmpdir("trunc-strict")).unwrap();
        store.write_day(2, &recs(2, 8)).unwrap();
        truncate_day(&store, 2, 3);
        match store.read_day(2, ReadMode::Strict) {
            Err(StoreError::Frame { day: 2, source: FrameError::TruncatedFrame, path }) => {
                assert!(path.to_string_lossy().contains("day-0002.iplog"));
            }
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_final_frame_tolerant_reports_truncation_not_skips() {
        let store = LogStore::open(tmpdir("trunc-tolerant")).unwrap();
        let written = recs(4, 8);
        store.write_day(4, &written).unwrap();
        truncate_day(&store, 4, 3);
        let (survived, damage) = store.read_day(4, ReadMode::Tolerant).unwrap();
        // The damaged tail (the Finish marker here) is the *trailing
        // truncation* shape: no mid-file skips, the flag set, every
        // intact frame before the cut surviving in order.
        assert_eq!(damage.skipped, 0, "trailing cut must not count as mid-file loss");
        assert!(damage.truncated_tail);
        assert_eq!(damage.lost_frames(), 1);
        assert_eq!(survived, written, "intact prefix must survive unchanged");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn mid_file_corruption_reports_skips_not_truncation() {
        let store = LogStore::open(tmpdir("mid-corrupt")).unwrap();
        let written = recs(5, 20);
        store.write_day(5, &written).unwrap();
        let path = store.dir().join("day-0005.iplog");
        let mut bytes = fs::read(&path).unwrap();
        // Flip a payload byte in the middle of the stream: a bad
        // checksum inside the file, with an intact tail after it.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&path, bytes).unwrap();
        let (survived, damage) = store.read_day(5, ReadMode::Tolerant).unwrap();
        assert!(damage.skipped >= 1 || damage.resyncs >= 1, "corruption went unnoticed");
        assert!(
            !damage.truncated_tail,
            "mid-file corruption must not be reported as a trailing cut"
        );
        assert!(survived.len() < written.len());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncation_inside_a_record_loses_only_that_record() {
        let store = LogStore::open(tmpdir("trunc-mid")).unwrap();
        // Measure the framing overhead so the cut lands mid-way
        // through the final *data* frame, past the Finish marker.
        let path = store.dir().join("day-0006.iplog");
        store.write_day(6, &[]).unwrap();
        let finish_len = fs::read(&path).unwrap().len();
        store.write_day(6, &recs(6, 7)).unwrap();
        let seven_len = fs::read(&path).unwrap().len();
        let written = recs(6, 8);
        store.write_day(6, &written).unwrap();
        let bytes = fs::read(&path).unwrap();
        let last_frame = bytes.len() - seven_len;
        let keep = seven_len - finish_len + last_frame / 2;
        fs::write(&path, &bytes[..keep]).unwrap();
        assert!(matches!(
            store.read_day(6, ReadMode::Strict),
            Err(StoreError::Frame { source: FrameError::TruncatedFrame, .. })
        ));
        let (survived, damage) = store.read_day(6, ReadMode::Tolerant).unwrap();
        assert_eq!(damage.skipped, 0);
        assert!(damage.truncated_tail);
        assert_eq!(survived, written[..7], "first seven records must survive");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn open_sweeps_stale_tmp_files_but_keeps_days() {
        let dir = tmpdir("sweep");
        {
            let store = LogStore::open(&dir).unwrap();
            store.write_day(1, &recs(1, 4)).unwrap();
        }
        // Simulate crashed writers (old fixed-name scheme, new unique
        // scheme, and a manifest commit) plus an unrelated dotfile
        // that must survive.
        fs::write(dir.join(".day-0001.tmp"), b"half-written").unwrap();
        fs::write(dir.join(".day-0002.999-7.tmp"), b"half-written").unwrap();
        fs::write(dir.join(".manifest-000003.999-8.tmp"), b"half-written").unwrap();
        fs::write(dir.join(".lease-0004.999-9.tmp"), b"half-written").unwrap();
        fs::write(dir.join("lease-0004.lse"), b"published lease").unwrap();
        fs::write(dir.join(".keepme"), b"not ours").unwrap();
        let store = LogStore::open(&dir).unwrap();
        assert!(!dir.join(".day-0001.tmp").exists(), "stale tmp survived open");
        assert!(!dir.join(".day-0002.999-7.tmp").exists(), "stale tmp survived open");
        assert!(!dir.join(".manifest-000003.999-8.tmp").exists(), "stale manifest tmp survived");
        assert!(!dir.join(".lease-0004.999-9.tmp").exists(), "stale lease tmp survived open");
        assert!(dir.join("lease-0004.lse").exists(), "published lease must survive the sweep");
        assert!(dir.join(".keepme").exists(), "sweep must only touch our tmp files");
        assert_eq!(store.days().unwrap(), vec![1]);
        assert_eq!(store.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 4));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn successful_writes_leave_no_tmp_files() {
        let store = LogStore::open(tmpdir("no-tmp")).unwrap();
        for day in 0..5u16 {
            store.write_day(day, &recs(day, 3)).unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn concurrent_writers_for_the_same_day_never_interleave() {
        let store = LogStore::open(tmpdir("concurrent")).unwrap();
        let a = recs(9, 50);
        let b: Vec<Record> = (0..50u32)
            .map(|i| Record::UaSample { day: 9, addr: Addr::new(0x14000000 + i), ua_hash: i as u64 })
            .collect();
        std::thread::scope(|s| {
            for records in [&a, &b] {
                s.spawn(|| {
                    for _ in 0..20 {
                        store.write_day(9, records).unwrap();
                    }
                });
            }
        });
        // Whichever writer's rename landed last, the file must be one
        // complete, strictly readable day — not a byte interleaving.
        let (got, damage) = store.read_day(9, ReadMode::Strict).unwrap();
        assert!(damage.is_clean());
        assert!(got == a || got == b, "day file mixes both writers");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_has_no_days() {
        let store = LogStore::open(tmpdir("empty")).unwrap();
        assert!(store.days().unwrap().is_empty());
        assert!(store.committed_days().is_empty());
        assert!(store.manifest().is_none());
        assert_eq!(store.for_each_day(|_, _| panic!("no days")).unwrap(), 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn batch_commit_roundtrip_and_reopen() {
        let dir = tmpdir("batch");
        let mut store = LogStore::open(&dir).unwrap();
        let gen = store.commit_days(&[(0, recs(0, 10)), (2, recs(2, 4))]).unwrap();
        assert_eq!(gen, 1);
        assert_eq!(store.committed_days(), vec![0, 2]);
        assert_eq!(store.days().unwrap(), vec![0, 2]);
        let (got, damage) = store.read_day(0, ReadMode::Strict).unwrap();
        assert_eq!(got, recs(0, 10));
        assert!(damage.is_clean());
        // A fresh open resolves the same committed state.
        let reopened = LogStore::open(&dir).unwrap();
        assert_eq!(reopened.committed_days(), vec![0, 2]);
        assert_eq!(reopened.read_day(2, ReadMode::Strict).unwrap().0, recs(2, 4));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn batch_commit_supersedes_and_garbage_collects() {
        let dir = tmpdir("batch-gc");
        let mut store = LogStore::open(&dir).unwrap();
        store.commit_days(&[(0, recs(0, 5)), (1, recs(1, 5))]).unwrap();
        let gen = store.commit_days(&[(1, recs(1, 9)), (2, recs(2, 2))]).unwrap();
        assert_eq!(gen, 2);
        assert_eq!(store.committed_days(), vec![0, 1, 2]);
        assert_eq!(store.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 9));
        // Old generation's day-1 file and gen-1 manifest are swept.
        assert!(!dir.join("day-0001.g000001.iplog").exists());
        assert!(!dir.join("manifest-000001.mft").exists());
        assert!(dir.join("day-0000.g000001.iplog").exists(), "day 0 still lives in gen 1");
        let reopened = LogStore::open(&dir).unwrap();
        assert_eq!(reopened.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 9));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn duplicate_day_in_batch_is_rejected() {
        let dir = tmpdir("batch-dup");
        let mut store = LogStore::open(&dir).unwrap();
        let err = store.commit_days(&[(3, recs(3, 1)), (3, recs(3, 2))]).unwrap_err();
        assert_eq!(err.day(), Some(3));
        assert!(store.committed_days().is_empty(), "rejected batch must not commit");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn committed_day_truncated_on_frame_boundary_is_caught() {
        // The hole frame CRCs cannot close: cut a committed file
        // exactly on a frame boundary (here: drop the final frames by
        // rewriting the file to a clean prefix). The frame layer reads
        // the prefix "cleanly"; the manifest footer must still object.
        let dir = tmpdir("boundary");
        let mut store = LogStore::open(&dir).unwrap();
        store.commit_days(&[(0, recs(0, 8))]).unwrap();
        let path = dir.join("day-0000.g000001.iplog");
        let bytes = fs::read(&path).unwrap();
        // Re-encode a shorter stream: frames for 3 records + Finish.
        let mut w = FrameWriter::new(Vec::new());
        for r in recs(0, 3) {
            w.write(&r).unwrap();
        }
        let short = w.finish().unwrap();
        assert!(short.len() < bytes.len());
        fs::write(&path, &short).unwrap();
        match store.read_day(0, ReadMode::Strict) {
            Err(StoreError::Committed { day: 0, .. }) => {}
            other => panic!("footer check missed a boundary cut: {other:?}"),
        }
        let (salvaged, damage) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert_eq!(salvaged, recs(0, 3));
        assert_eq!(damage.lost_committed, 5, "manifest promised 8, file delivers 3");
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupt_newest_manifest_falls_back_to_predecessor() {
        let dir = tmpdir("manifest-fallback");
        let mut store = LogStore::open(&dir).unwrap();
        store.commit_days(&[(0, recs(0, 4))]).unwrap();
        store.commit_days(&[(1, recs(1, 4))]).unwrap();
        // Forge a torn gen-3 manifest (half of gen 2's bytes).
        let gen2 = fs::read(dir.join("manifest-000002.mft")).unwrap();
        fs::write(dir.join("manifest-000003.mft"), &gen2[..gen2.len() / 2]).unwrap();
        let reopened = LogStore::open(&dir).unwrap();
        assert_eq!(reopened.manifest().unwrap().generation, 2);
        assert_eq!(reopened.committed_days(), vec![0, 1]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn sole_corrupt_manifest_is_an_error_not_amnesia() {
        let dir = tmpdir("manifest-corrupt");
        let mut store = LogStore::open(&dir).unwrap();
        store.commit_days(&[(0, recs(0, 4))]).unwrap();
        let path = dir.join("manifest-000001.mft");
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs::write(&path, bytes).unwrap();
        match LogStore::open(&dir) {
            Err(StoreError::Manifest { .. }) => {}
            other => panic!("corrupt sole manifest must fail open, got {other:?}"),
        }
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn store_counters_account_for_writes_reads_and_damage() {
        use ipactive_obs::{EventKind, Registry, SnapshotMode};
        let reg = Registry::new();
        let dir = tmpdir("obs");
        let mut store = LogStore::open_obs(&dir, &reg).unwrap();

        // Single-day path: tmp fsync + dir fsync = 2 syncs, 10 records.
        store.write_day(0, &recs(0, 10)).unwrap();
        // Batch path: 1 day file sync + batch dir sync + manifest
        // sync + post-rename dir sync = 4 syncs.
        store.commit_days(&[(1, recs(1, 6))]).unwrap();

        let (got, _) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert_eq!(got.len(), 10);
        // Damage a legacy day mid-file and read it back tolerantly.
        let path = dir.join("day-0000.iplog");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&path, bytes).unwrap();
        let (survived, damage) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert!(!damage.is_clean());

        let snap = reg.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap.counter("store.fsync"), 6);
        assert_eq!(snap.counter("store.day_writes"), 2);
        assert_eq!(snap.counter("store.records_written"), 16);
        assert_eq!(snap.counter("store.commits"), 1);
        assert_eq!(snap.counter("store.day_reads"), 2);
        assert_eq!(snap.counter("store.records_read"), 10 + survived.len() as u64);
        assert_eq!(
            snap.counter("store.frames_skipped") + snap.counter("store.resyncs"),
            damage.skipped + damage.resyncs,
            "damage tallies must mirror the DayDamage account"
        );
        assert!(
            damage.resyncs == 0 || snap.events_of(EventKind::Resync).count() > 0,
            "resync damage must be journaled"
        );
        // Bytes are counted for the in-memory-encoded paths (gen day
        // file + manifest), and a committed batch wrote both.
        assert!(snap.counter("store.bytes_written") > 0);

        // A crashed writer's tmp swept on open is journaled.
        fs::write(dir.join(".day-0007.999-1.tmp"), b"half").unwrap();
        let reg2 = Registry::new();
        let _reopened = LogStore::open_obs(&dir, &reg2).unwrap();
        let snap2 = reg2.snapshot(SnapshotMode::Deterministic);
        assert_eq!(snap2.events_of(EventKind::CrashRecovery).count(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let dir = tmpdir("batch-empty");
        let mut store = LogStore::open(&dir).unwrap();
        assert_eq!(store.commit_days(&[]).unwrap(), 0);
        assert!(store.manifest().is_none());
        let _ = fs::remove_dir_all(dir);
    }
}
