//! On-disk log store: one framed file per observation day.
//!
//! Production collectors persist their aggregates as a directory of
//! day files (`day-0000.iplog`, `day-0001.iplog`, …), each an
//! independently framed stream — so a damaged or missing day costs
//! that day, not the dataset. [`LogStore`] provides that layout with
//! the same strict/tolerant read semantics as the in-memory framing.

use crate::{FrameError, FrameReader, FrameWriter, ReadMode, Record};
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinguishes concurrent writers within one process; combined with
/// the pid it makes every tmp file name unique, so two writers racing
/// on the same day never interleave into one tmp file.
static TMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A directory of per-day framed log files.
#[derive(Debug, Clone)]
pub struct LogStore {
    dir: PathBuf,
}

/// Error from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure.
    Io(io::Error),
    /// A day file's content was damaged (strict reads only).
    Frame(FrameError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<FrameError> for StoreError {
    fn from(e: FrameError) -> Self {
        StoreError::Frame(e)
    }
}

impl LogStore {
    /// Opens (creating if needed) a store rooted at `dir`, sweeping
    /// any stale `.day-*.tmp` files a crashed writer left behind — a
    /// tmp file is only meaningful to the `write_day` call that
    /// created it, so on open every survivor is garbage.
    pub fn open(dir: impl Into<PathBuf>) -> Result<LogStore, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(".day-") && name.ends_with(".tmp") {
                // Best effort: a sweep that loses a race with a live
                // writer's cleanup must not fail the open.
                let _ = fs::remove_file(entry.path());
            }
        }
        Ok(LogStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn day_path(&self, day: u16) -> PathBuf {
        self.dir.join(format!("day-{day:04}.iplog"))
    }

    /// Writes one day's records, replacing any existing file for that
    /// day. The write goes to a uniquely named temporary file first
    /// (pid + counter, so concurrent writers for the same day cannot
    /// interleave), is fsynced, renamed into place, and the directory
    /// is fsynced after the rename — without that last step a crash
    /// can lose the rename itself and silently drop a "durably
    /// written" day. A failed write removes its tmp file.
    pub fn write_day(&self, day: u16, records: &[Record]) -> Result<(), StoreError> {
        let tmp = self.dir.join(format!(
            ".day-{day:04}.{}-{}.tmp",
            std::process::id(),
            TMP_COUNTER.fetch_add(1, Ordering::Relaxed),
        ));
        let result = self.write_day_at(&tmp, day, records);
        if result.is_err() {
            let _ = fs::remove_file(&tmp);
        }
        result
    }

    fn write_day_at(&self, tmp: &Path, day: u16, records: &[Record]) -> Result<(), StoreError> {
        let mut writer = FrameWriter::new(BufWriter::new(File::create(tmp)?));
        for rec in records {
            writer.write(rec)?;
        }
        writer
            .finish()?
            .into_inner()
            .map_err(|e| StoreError::Io(e.into_error()))?
            .sync_all()?;
        fs::rename(tmp, self.day_path(day))?;
        self.sync_dir()
    }

    /// Makes the rename itself durable. Directory fsync is a
    /// unix-filesystem notion; elsewhere the rename is already as
    /// durable as the platform allows.
    #[cfg(unix)]
    fn sync_dir(&self) -> Result<(), StoreError> {
        File::open(&self.dir)?.sync_all()?;
        Ok(())
    }

    #[cfg(not(unix))]
    fn sync_dir(&self) -> Result<(), StoreError> {
        Ok(())
    }

    /// Whether a file exists for `day`.
    pub fn has_day(&self, day: u16) -> bool {
        self.day_path(day).exists()
    }

    /// The days present in the store, ascending.
    pub fn days(&self) -> Result<Vec<u16>, StoreError> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let name = entry?.file_name();
            let name = name.to_string_lossy();
            if let Some(num) = name.strip_prefix("day-").and_then(|s| s.strip_suffix(".iplog"))
            {
                if let Ok(day) = num.parse::<u16>() {
                    out.push(day);
                }
            }
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Reads one day's records with the given tolerance. Returns the
    /// records plus the number of damaged frames skipped.
    pub fn read_day(&self, day: u16, mode: ReadMode) -> Result<(Vec<Record>, u64), StoreError> {
        let file = File::open(self.day_path(day))?;
        let mut reader = FrameReader::new(BufReader::new(file), mode);
        let records = reader.read_all()?;
        Ok((records, reader.skipped()))
    }

    /// Streams every stored day through `f`, in day order, tolerantly
    /// (a damaged day delivers what survived). Returns total skipped
    /// frames.
    pub fn for_each_day(
        &self,
        mut f: impl FnMut(u16, Vec<Record>),
    ) -> Result<u64, StoreError> {
        let mut skipped = 0;
        for day in self.days()? {
            let (records, s) = self.read_day(day, ReadMode::Tolerant)?;
            skipped += s;
            f(day, records);
        }
        Ok(skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ipactive_net::Addr;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "ipactive-logstore-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn recs(day: u16, n: u32) -> Vec<Record> {
        (0..n)
            .map(|i| Record::Hits {
                day,
                addr: Addr::new(0x0A000000 + i),
                hits: (i as u64 + 1) * 3,
            })
            .collect()
    }

    #[test]
    fn write_read_roundtrip() {
        let store = LogStore::open(tmpdir("roundtrip")).unwrap();
        store.write_day(0, &recs(0, 10)).unwrap();
        store.write_day(3, &recs(3, 5)).unwrap();
        assert!(store.has_day(0));
        assert!(!store.has_day(1));
        assert_eq!(store.days().unwrap(), vec![0, 3]);
        let (got, skipped) = store.read_day(0, ReadMode::Strict).unwrap();
        assert_eq!(got, recs(0, 10));
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn rewrite_replaces_day() {
        let store = LogStore::open(tmpdir("rewrite")).unwrap();
        store.write_day(7, &recs(7, 10)).unwrap();
        store.write_day(7, &recs(7, 2)).unwrap();
        let (got, _) = store.read_day(7, ReadMode::Strict).unwrap();
        assert_eq!(got.len(), 2);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn for_each_day_streams_in_order() {
        let store = LogStore::open(tmpdir("stream")).unwrap();
        for day in [5u16, 1, 9] {
            store.write_day(day, &recs(day, 3)).unwrap();
        }
        let mut seen = Vec::new();
        let skipped = store
            .for_each_day(|day, records| {
                assert_eq!(records.len(), 3);
                seen.push(day);
            })
            .unwrap();
        assert_eq!(seen, vec![1, 5, 9]);
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn damaged_day_is_contained() {
        let store = LogStore::open(tmpdir("damage")).unwrap();
        store.write_day(0, &recs(0, 20)).unwrap();
        store.write_day(1, &recs(1, 20)).unwrap();
        // Corrupt day 0's file in the middle.
        let path = store.dir().join("day-0000.iplog");
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&path, bytes).unwrap();
        // Strict read of day 0 fails or loses data; tolerant succeeds.
        let (survived, _) = store.read_day(0, ReadMode::Tolerant).unwrap();
        assert!(survived.len() < 20);
        for rec in &survived {
            assert!(recs(0, 20).contains(rec), "fabricated {rec:?}");
        }
        // Day 1 is untouched.
        let (clean, skipped) = store.read_day(1, ReadMode::Strict).unwrap();
        assert_eq!(clean, recs(1, 20));
        assert_eq!(skipped, 0);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_day_is_an_io_error() {
        let store = LogStore::open(tmpdir("missing")).unwrap();
        assert!(matches!(store.read_day(42, ReadMode::Strict), Err(StoreError::Io(_))));
        // Tolerant mode cannot paper over an absent file either.
        assert!(matches!(store.read_day(42, ReadMode::Tolerant), Err(StoreError::Io(_))));
        let _ = fs::remove_dir_all(store.dir());
    }

    /// Cuts `n` bytes off the end of a day file, landing mid-frame.
    fn truncate_day(store: &LogStore, day: u16, n: usize) {
        let path = store.dir().join(format!("day-{day:04}.iplog"));
        let bytes = fs::read(&path).unwrap();
        assert!(bytes.len() > n, "test file too small to truncate");
        fs::write(&path, &bytes[..bytes.len() - n]).unwrap();
    }

    #[test]
    fn truncated_final_frame_strict_is_a_frame_error() {
        let store = LogStore::open(tmpdir("trunc-strict")).unwrap();
        store.write_day(2, &recs(2, 8)).unwrap();
        truncate_day(&store, 2, 3);
        match store.read_day(2, ReadMode::Strict) {
            Err(StoreError::Frame(FrameError::TruncatedFrame)) => {}
            other => panic!("expected TruncatedFrame, got {other:?}"),
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncated_final_frame_tolerant_keeps_the_prefix() {
        let store = LogStore::open(tmpdir("trunc-tolerant")).unwrap();
        let written = recs(4, 8);
        store.write_day(4, &written).unwrap();
        truncate_day(&store, 4, 3);
        let (survived, skipped) = store.read_day(4, ReadMode::Tolerant).unwrap();
        // The damaged tail (the Finish marker here) is skipped, every
        // intact frame before it survives in order, nothing is invented.
        assert_eq!(skipped, 1);
        assert_eq!(survived, written, "intact prefix must survive unchanged");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncation_inside_a_record_loses_only_that_record() {
        let store = LogStore::open(tmpdir("trunc-mid")).unwrap();
        // Measure the framing overhead so the cut lands mid-way
        // through the final *data* frame, past the Finish marker.
        let path = store.dir().join("day-0006.iplog");
        store.write_day(6, &[]).unwrap();
        let finish_len = fs::read(&path).unwrap().len();
        store.write_day(6, &recs(6, 7)).unwrap();
        let seven_len = fs::read(&path).unwrap().len();
        let written = recs(6, 8);
        store.write_day(6, &written).unwrap();
        let bytes = fs::read(&path).unwrap();
        let last_frame = bytes.len() - seven_len;
        let keep = seven_len - finish_len + last_frame / 2;
        fs::write(&path, &bytes[..keep]).unwrap();
        assert!(matches!(
            store.read_day(6, ReadMode::Strict),
            Err(StoreError::Frame(FrameError::TruncatedFrame))
        ));
        let (survived, skipped) = store.read_day(6, ReadMode::Tolerant).unwrap();
        assert_eq!(skipped, 1);
        assert_eq!(survived, written[..7], "first seven records must survive");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn open_sweeps_stale_tmp_files_but_keeps_days() {
        let dir = tmpdir("sweep");
        {
            let store = LogStore::open(&dir).unwrap();
            store.write_day(1, &recs(1, 4)).unwrap();
        }
        // Simulate two crashed writers (old fixed-name and new unique
        // scheme) plus an unrelated dotfile that must survive.
        fs::write(dir.join(".day-0001.tmp"), b"half-written").unwrap();
        fs::write(dir.join(".day-0002.999-7.tmp"), b"half-written").unwrap();
        fs::write(dir.join(".keepme"), b"not ours").unwrap();
        let store = LogStore::open(&dir).unwrap();
        assert!(!dir.join(".day-0001.tmp").exists(), "stale tmp survived open");
        assert!(!dir.join(".day-0002.999-7.tmp").exists(), "stale tmp survived open");
        assert!(dir.join(".keepme").exists(), "sweep must only touch .day-*.tmp");
        assert_eq!(store.days().unwrap(), vec![1]);
        assert_eq!(store.read_day(1, ReadMode::Strict).unwrap().0, recs(1, 4));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn successful_writes_leave_no_tmp_files() {
        let store = LogStore::open(tmpdir("no-tmp")).unwrap();
        for day in 0..5u16 {
            store.write_day(day, &recs(day, 3)).unwrap();
        }
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "leaked tmp files: {leftovers:?}");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn concurrent_writers_for_the_same_day_never_interleave() {
        let store = LogStore::open(tmpdir("concurrent")).unwrap();
        let a = recs(9, 50);
        let b: Vec<Record> = (0..50u32)
            .map(|i| Record::UaSample { day: 9, addr: Addr::new(0x14000000 + i), ua_hash: i as u64 })
            .collect();
        std::thread::scope(|s| {
            for records in [&a, &b] {
                s.spawn(|| {
                    for _ in 0..20 {
                        store.write_day(9, records).unwrap();
                    }
                });
            }
        });
        // Whichever writer's rename landed last, the file must be one
        // complete, strictly readable day — not a byte interleaving.
        let (got, skipped) = store.read_day(9, ReadMode::Strict).unwrap();
        assert_eq!(skipped, 0);
        assert!(got == a || got == b, "day file mixes both writers");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn empty_store_has_no_days() {
        let store = LogStore::open(tmpdir("empty")).unwrap();
        assert!(store.days().unwrap().is_empty());
        assert_eq!(store.for_each_day(|_, _| panic!("no days")).unwrap(), 0);
        let _ = fs::remove_dir_all(store.dir());
    }
}
