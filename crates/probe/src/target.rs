//! The interface probed systems expose to the scanners.

use crate::ServiceSet;
use ipactive_net::{Addr, Block24};

/// Ground truth a scanner can *probe* (but not directly read).
///
/// Implementations describe per-address probe behaviour; the scanners
/// turn that into observations with realistic sampling noise. The
/// synthetic universe implements this from its host population.
pub trait ProbeTarget {
    /// Probability that a single ICMP echo request to `addr` receives
    /// a reply (0.0 = never: unused space, firewalled hosts, NATs that
    /// drop unsolicited probes; 1.0 = always: routers, most servers).
    fn icmp_response_probability(&self, addr: Addr) -> f64;

    /// Application services `addr` answers on (servers only).
    fn open_services(&self, addr: Addr) -> ServiceSet;

    /// Whether `addr` is a router interface that can appear on
    /// forwarding paths (and thus in traceroute output).
    fn is_router_interface(&self, addr: Addr) -> bool;

    /// The `/24` blocks worth probing. A real ZMap sweep covers the
    /// whole unicast space; blocks outside this list are guaranteed
    /// unresponsive, so skipping them changes nothing observable.
    fn candidate_blocks(&self) -> Vec<Block24>;
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;
    use std::collections::HashMap;

    /// A hand-built target for scanner tests.
    #[derive(Default)]
    pub struct FixtureTarget {
        pub icmp: HashMap<Addr, f64>,
        pub services: HashMap<Addr, ServiceSet>,
        pub routers: Vec<Addr>,
        pub blocks: Vec<Block24>,
    }

    impl ProbeTarget for FixtureTarget {
        fn icmp_response_probability(&self, addr: Addr) -> f64 {
            self.icmp.get(&addr).copied().unwrap_or(0.0)
        }

        fn open_services(&self, addr: Addr) -> ServiceSet {
            self.services.get(&addr).copied().unwrap_or_default()
        }

        fn is_router_interface(&self, addr: Addr) -> bool {
            self.routers.contains(&addr)
        }

        fn candidate_blocks(&self) -> Vec<Block24> {
            self.blocks.clone()
        }
    }
}
