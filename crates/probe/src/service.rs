//! Application-layer services a host may expose.

use core::fmt;

/// One probe-able application service (the set ZMap scans that the
/// paper uses to identify servers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Service {
    /// TCP/80.
    Http = 0,
    /// TCP/443.
    Https = 1,
    /// TCP/25.
    Smtp = 2,
    /// TCP/143 and /993.
    Imap = 3,
    /// TCP/110 and /995.
    Pop3 = 4,
}

impl Service {
    /// All probed services.
    pub const ALL: [Service; 5] =
        [Service::Http, Service::Https, Service::Smtp, Service::Imap, Service::Pop3];
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Service::Http => "HTTP",
            Service::Https => "HTTPS",
            Service::Smtp => "SMTP",
            Service::Imap => "IMAP",
            Service::Pop3 => "POP3",
        };
        f.write_str(s)
    }
}

/// A set of exposed services, packed into one byte.
///
/// ```
/// use ipactive_probe::{Service, ServiceSet};
/// let s = ServiceSet::new().with(Service::Http).with(Service::Smtp);
/// assert!(s.contains(Service::Http));
/// assert!(!s.contains(Service::Https));
/// assert_eq!(s.len(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServiceSet(u8);

impl ServiceSet {
    /// The empty set (no services — a non-server host).
    pub const fn new() -> Self {
        ServiceSet(0)
    }

    /// A typical web server's set (HTTP + HTTPS).
    pub const fn web() -> Self {
        ServiceSet(0b00011)
    }

    /// A typical mail server's set (SMTP + IMAP + POP3).
    pub const fn mail() -> Self {
        ServiceSet(0b11100)
    }

    /// Returns the set with `svc` added.
    pub const fn with(self, svc: Service) -> Self {
        ServiceSet(self.0 | (1 << svc as u8))
    }

    /// Whether `svc` is exposed.
    pub const fn contains(self, svc: Service) -> bool {
        self.0 & (1 << svc as u8) != 0
    }

    /// Number of exposed services.
    pub const fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no service is exposed.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_and_contains() {
        let mut s = ServiceSet::new();
        assert!(s.is_empty());
        for svc in Service::ALL {
            assert!(!s.contains(svc));
            s = s.with(svc);
            assert!(s.contains(svc));
        }
        assert_eq!(s.len(), 5);
    }

    #[test]
    fn canned_sets() {
        assert!(ServiceSet::web().contains(Service::Http));
        assert!(ServiceSet::web().contains(Service::Https));
        assert!(!ServiceSet::web().contains(Service::Smtp));
        assert!(ServiceSet::mail().contains(Service::Smtp));
        assert!(ServiceSet::mail().contains(Service::Imap));
        assert!(ServiceSet::mail().contains(Service::Pop3));
        assert!(!ServiceSet::mail().contains(Service::Http));
    }

    #[test]
    fn with_is_idempotent() {
        let s = ServiceSet::new().with(Service::Http).with(Service::Http);
        assert_eq!(s.len(), 1);
    }
}
