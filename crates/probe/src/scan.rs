//! The scanners.

use crate::{ProbeTarget, Service};
use ipactive_net::AddrSet;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// ZMap-style single-pass ICMP echo sweep.
///
/// Each candidate address is probed once per scan; it appears in the
/// result with its target-defined response probability. Scans are
/// deterministic in `(seed, scan_id)`, so repeated campaigns are
/// reproducible while distinct scans see independent intermittent
/// hosts.
#[derive(Debug, Clone, Copy)]
pub struct IcmpScanner {
    seed: u64,
}

impl IcmpScanner {
    /// Creates a scanner with a campaign seed.
    pub fn new(seed: u64) -> Self {
        IcmpScanner { seed }
    }

    /// Runs scan number `scan_id`, returning the responding addresses.
    pub fn scan<T: ProbeTarget>(&self, target: &T, scan_id: u32) -> AddrSet {
        let mut out = Vec::new();
        for block in target.candidate_blocks() {
            // One RNG per (campaign, scan, block): parallelizable and
            // independent of visit order.
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (scan_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (block.id() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            for addr in block.addrs() {
                let p = target.icmp_response_probability(addr);
                if p > 0.0 && rng.random::<f64>() < p {
                    out.push(addr);
                }
            }
        }
        AddrSet::from_unsorted(out)
    }
}

impl IcmpScanner {
    /// Runs a *sampled* sweep in the style of Heidemann et al.'s
    /// census surveys (the paper's Section 3.1): only a deterministic
    /// `fraction` of each block's addresses is probed. Sampling is by
    /// host-index hash, so repeated sampled scans probe the same
    /// subset — as a survey that revisits its sample would.
    pub fn scan_sample<T: ProbeTarget>(
        &self,
        target: &T,
        scan_id: u32,
        fraction: f64,
    ) -> AddrSet {
        assert!((0.0..=1.0).contains(&fraction), "fraction out of range");
        let threshold = (fraction * u32::MAX as f64) as u32;
        let mut out = Vec::new();
        for block in target.candidate_blocks() {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (scan_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    ^ (block.id() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03),
            );
            for addr in block.addrs() {
                // Membership in the sample is a pure function of the
                // address (not the scan), like a fixed survey panel.
                let h = (addr.bits() as u64)
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .rotate_left(17) as u32;
                let in_sample = h <= threshold;
                // Keep RNG consumption identical to a full scan so the
                // responders we do probe match `scan()`'s coin flips.
                let p = target.icmp_response_probability(addr);
                let respond = p > 0.0 && rng.random::<f64>() < p;
                if in_sample && respond {
                    out.push(addr);
                }
            }
        }
        AddrSet::from_unsorted(out)
    }
}

/// A multi-scan ICMP campaign (the paper uses the union of 8 scans).
#[derive(Debug, Clone, Copy)]
pub struct ScanCampaign {
    scanner: IcmpScanner,
    /// Number of scans to run.
    pub scans: u32,
}

impl ScanCampaign {
    /// Creates a campaign of `scans` sweeps.
    pub fn new(seed: u64, scans: u32) -> Self {
        ScanCampaign { scanner: IcmpScanner::new(seed), scans }
    }

    /// Runs all sweeps and returns each scan's responder set.
    pub fn run<T: ProbeTarget>(&self, target: &T) -> Vec<AddrSet> {
        (0..self.scans).map(|i| self.scanner.scan(target, i)).collect()
    }

    /// Runs all sweeps and returns the union of responders — the
    /// "seen in ICMP" set of Figure 2.
    pub fn run_union<T: ProbeTarget>(&self, target: &T) -> AddrSet {
        self.run(target)
            .into_iter()
            .fold(AddrSet::new(), |acc, s| acc.union(&s))
    }
}

/// Application-port scanner (deterministic: an open service answers).
#[derive(Debug, Clone, Copy, Default)]
pub struct PortScanner;

impl PortScanner {
    /// Creates a port scanner.
    pub fn new() -> Self {
        PortScanner
    }

    /// Addresses answering on `service`.
    pub fn scan<T: ProbeTarget>(&self, target: &T, service: Service) -> AddrSet {
        let mut out = Vec::new();
        for block in target.candidate_blocks() {
            for addr in block.addrs() {
                if target.open_services(addr).contains(service) {
                    out.push(addr);
                }
            }
        }
        AddrSet::from_unsorted(out)
    }

    /// Addresses answering on *any* probed service — the paper's
    /// "server" classification input.
    pub fn scan_any<T: ProbeTarget>(&self, target: &T) -> AddrSet {
        let mut out = Vec::new();
        for block in target.candidate_blocks() {
            for addr in block.addrs() {
                if !target.open_services(addr).is_empty() {
                    out.push(addr);
                }
            }
        }
        AddrSet::from_unsorted(out)
    }
}

/// Ark-style traceroute campaign: collects router interface addresses
/// that appear on forwarding paths.
///
/// Coverage is imperfect — each router interface is discovered with
/// probability `discovery_prob` over the whole campaign, modelling
/// paths never traversed by the probes.
#[derive(Debug, Clone, Copy)]
pub struct TracerouteCampaign {
    seed: u64,
    /// Per-interface probability of appearing in at least one trace.
    pub discovery_prob: f64,
}

impl TracerouteCampaign {
    /// Creates a campaign; `discovery_prob` in `[0, 1]`.
    pub fn new(seed: u64, discovery_prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&discovery_prob));
        TracerouteCampaign { seed, discovery_prob }
    }

    /// Runs the campaign, returning discovered router interfaces.
    pub fn run<T: ProbeTarget>(&self, target: &T) -> AddrSet {
        let mut out = Vec::new();
        for block in target.candidate_blocks() {
            let mut rng = StdRng::seed_from_u64(
                self.seed ^ (block.id() as u64).wrapping_mul(0xA076_1D64_78BD_642F),
            );
            for addr in block.addrs() {
                if target.is_router_interface(addr) && rng.random::<f64>() < self.discovery_prob {
                    out.push(addr);
                }
            }
        }
        AddrSet::from_unsorted(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::testutil::FixtureTarget;
    use crate::ServiceSet;
    use ipactive_net::{Addr, Block24};

    fn a(s: &str) -> Addr {
        s.parse().unwrap()
    }

    fn fixture() -> FixtureTarget {
        let block = Block24::of(a("10.0.0.0"));
        let mut t = FixtureTarget { blocks: vec![block], ..Default::default() };
        t.icmp.insert(a("10.0.0.1"), 1.0); // always answers
        t.icmp.insert(a("10.0.0.2"), 0.0); // never answers
        t.icmp.insert(a("10.0.0.3"), 0.5); // intermittent
        t.services.insert(a("10.0.0.10"), ServiceSet::web());
        t.services.insert(a("10.0.0.11"), ServiceSet::mail());
        t.routers.push(a("10.0.0.20"));
        t
    }

    #[test]
    fn deterministic_hosts_always_respond() {
        let t = fixture();
        let scan = IcmpScanner::new(1).scan(&t, 0);
        assert!(scan.contains(a("10.0.0.1")));
        assert!(!scan.contains(a("10.0.0.2")));
        assert!(!scan.contains(a("10.0.0.99"))); // unmodelled addr: silent
    }

    #[test]
    fn scans_are_reproducible() {
        let t = fixture();
        let s1 = IcmpScanner::new(7).scan(&t, 3);
        let s2 = IcmpScanner::new(7).scan(&t, 3);
        assert_eq!(s1, s2);
    }

    #[test]
    fn intermittent_host_found_by_union_of_scans() {
        let t = fixture();
        // One scan may miss a p=0.5 host; eight scans miss it with
        // probability 2^-8 — and deterministically don't, here.
        let union = ScanCampaign::new(11, 8).run_union(&t);
        assert!(union.contains(a("10.0.0.3")));
        // Per-scan results differ across scan ids for intermittent hosts.
        let scans = ScanCampaign::new(11, 8).run(&t);
        let hits = scans.iter().filter(|s| s.contains(a("10.0.0.3"))).count();
        assert!(hits > 0 && hits < 8, "p=0.5 host hit {hits}/8 scans");
    }

    #[test]
    fn sampled_scan_is_a_subset_of_the_full_scan() {
        let block = Block24::of(a("10.2.0.0"));
        let t = FixtureTarget {
            blocks: vec![block],
            icmp: block.addrs().map(|a| (a, 1.0)).collect(),
            ..Default::default()
        };
        let scanner = IcmpScanner::new(3);
        let full = scanner.scan(&t, 0);
        let sampled = scanner.scan_sample(&t, 0, 0.1);
        assert!(!sampled.is_empty(), "10% of 256 must hit something");
        assert!(sampled.len() < full.len());
        for addr in sampled.iter() {
            assert!(full.contains(addr), "sample probed outside the full scan");
        }
        // Roughly a tenth, with generous tolerance.
        assert!((10..=55).contains(&sampled.len()), "{} sampled", sampled.len());
        // The panel is fixed: the same addresses across scan ids.
        let again = scanner.scan_sample(&t, 1, 0.1);
        assert_eq!(sampled, again, "p=1 responders: panel must be identical");
        // Fraction 0 and 1 are the extremes.
        assert!(scanner.scan_sample(&t, 0, 0.0).is_empty());
        assert_eq!(scanner.scan_sample(&t, 0, 1.0), full);
    }

    #[test]
    fn port_scanner_finds_only_open_services() {
        let t = fixture();
        let ps = PortScanner::new();
        let http = ps.scan(&t, Service::Http);
        assert!(http.contains(a("10.0.0.10")));
        assert!(!http.contains(a("10.0.0.11")));
        let smtp = ps.scan(&t, Service::Smtp);
        assert!(smtp.contains(a("10.0.0.11")));
        let any = ps.scan_any(&t);
        assert_eq!(any.len(), 2);
    }

    #[test]
    fn traceroute_discovers_routers_with_full_probability() {
        let t = fixture();
        let tr = TracerouteCampaign::new(5, 1.0).run(&t);
        assert_eq!(tr.len(), 1);
        assert!(tr.contains(a("10.0.0.20")));
    }

    #[test]
    fn traceroute_with_zero_probability_finds_nothing() {
        let t = fixture();
        let tr = TracerouteCampaign::new(5, 0.0).run(&t);
        assert!(tr.is_empty());
    }

    #[test]
    fn partial_discovery_rate_roughly_holds() {
        // 256 routers at 50% discovery: expect ~128, tolerate wide noise.
        let block = Block24::of(a("10.1.0.0"));
        let t = FixtureTarget {
            blocks: vec![block],
            routers: block.addrs().collect(),
            ..Default::default()
        };
        let found = TracerouteCampaign::new(9, 0.5).run(&t).len();
        assert!((80..=176).contains(&found), "found {found} of 256");
    }
}
