//! # ipactive-probe
//!
//! Active-measurement substrate: simulators for the probing campaigns
//! the paper compares its passive CDN view against (Section 3):
//!
//! * [`IcmpScanner`] — ZMap-style ICMP echo sweeps. The paper uses the
//!   union of 8 scans from October 2015; responsiveness varies per
//!   host (NATs and firewalls suppress replies; some hosts answer only
//!   intermittently).
//! * [`PortScanner`] — application-port scans (HTTP(S), SMTP, IMAP(S),
//!   POP3(S)) used to classify ICMP-only addresses as servers
//!   (Figure 2(b)).
//! * [`TracerouteCampaign`] — CAIDA-Ark-style traceroute runs that
//!   surface router interface addresses via ICMP TTL-exceeded replies.
//!
//! The scanners are generic over a [`ProbeTarget`]: the synthetic
//! universe (crate `ipactive-cdnsim`) implements it from ground truth,
//! so probing observes — rather than copies — the simulated Internet.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scan;
mod service;
mod target;

pub use scan::{IcmpScanner, PortScanner, ScanCampaign, TracerouteCampaign};
pub use service::{Service, ServiceSet};
pub use target::ProbeTarget;
