//! Keyword-based assignment classification.

use crate::synth::PtrTable;
use ipactive_net::Block24;

/// Assignment practice suggested by a hostname (or a block of them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssignmentHint {
    /// Name suggests static assignment (`static` keyword).
    Static,
    /// Name suggests dynamic assignment (`dynamic`, `pool`, `dhcp`,
    /// `ppp`, `dial` keywords).
    Dynamic,
    /// No policy-revealing keyword (opaque name or no record).
    Unknown,
}

/// Keywords suggesting dynamic assignment, per the methodology of
/// the paper's references [24, 30, 35] (Moura et al., Quan et al.,
/// Xie et al.) — access-technology labels like `dsl` and `cable` mark
/// consumer pools that are overwhelmingly dynamically assigned.
const DYNAMIC_KEYWORDS: [&str; 7] =
    ["dynamic", "pool", "dhcp", "ppp", "dial", "dsl", "cable"];

/// Classifies a single PTR name by keyword search (case-insensitive on
/// ASCII; hostnames are ASCII by construction).
///
/// A name carrying *both* static and dynamic keywords is treated as
/// [`AssignmentHint::Unknown`] — contradictory labels are untrustworthy.
///
/// ```
/// use ipactive_dns::{classify_name, AssignmentHint};
/// assert_eq!(classify_name("static-24-1-2-3.isp.example.net"), AssignmentHint::Static);
/// assert_eq!(classify_name("pool-81-2-3-4.dsl.example.de"), AssignmentHint::Dynamic);
/// assert_eq!(classify_name("host-24-1-2-3.example.com"), AssignmentHint::Unknown);
/// ```
pub fn classify_name(name: &str) -> AssignmentHint {
    let lower = name.to_ascii_lowercase();
    let is_static = lower.contains("static");
    let is_dynamic = DYNAMIC_KEYWORDS.iter().any(|k| lower.contains(k));
    match (is_static, is_dynamic) {
        (true, false) => AssignmentHint::Static,
        (false, true) => AssignmentHint::Dynamic,
        _ => AssignmentHint::Unknown,
    }
}

/// Classifies a `/24` block from its PTR records, requiring consistency:
/// the block is tagged static/dynamic only when at least `min_records`
/// addresses have PTR names and **all** keyword-bearing names agree.
///
/// The paper tags blocks "containing addresses with consistent names
/// that suggest static … as well as dynamic … assignment".
///
/// One template names the whole block, and host octets render as
/// digits and dashes — which cannot spell a keyword — so every name a
/// block renders classifies identically (keywords come from the
/// template prefix or the operator domain, constant across the
/// block). That makes the per-name vote loop redundant: count the
/// records with an allocation-free presence test and render exactly
/// one representative name to classify. The equivalence with the
/// naive 256-render loop is pinned by a differential test.
pub fn classify_block(table: &PtrTable, block: Block24, min_records: usize) -> AssignmentHint {
    let Some(scheme) = table.scheme_of(block) else {
        return AssignmentHint::Unknown;
    };
    let mut records = 0usize;
    let mut sample = None;
    for addr in block.addrs() {
        if scheme.has_record(addr) {
            records += 1;
            if sample.is_none() {
                sample = Some(addr);
            }
        }
    }
    if records < min_records {
        return AssignmentHint::Unknown;
    }
    let Some(name) = sample.and_then(|addr| table.name_of(addr)) else {
        // Zero records (and min_records == 0): no votes were possible.
        return AssignmentHint::Unknown;
    };
    // All names agree with the representative, so the consistency vote
    // collapses to its single verdict.
    classify_name(&name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::NamingScheme;

    #[test]
    fn single_name_keywords() {
        assert_eq!(classify_name("STATIC-host.example"), AssignmentHint::Static);
        assert_eq!(classify_name("dyn.example"), AssignmentHint::Unknown); // 'dyn' alone is ambiguous
        assert_eq!(classify_name("dynamic-81-1-1-1.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("dhcp081.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("ppp-12.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("dialup-9.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("ip-pool-7.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("adsl-81-1-1-1.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name("cable-modem-3.example"), AssignmentHint::Dynamic);
        assert_eq!(classify_name(""), AssignmentHint::Unknown);
    }

    #[test]
    fn contradictory_names_are_unknown() {
        assert_eq!(classify_name("static-dhcp-pool.example"), AssignmentHint::Unknown);
    }

    #[test]
    fn block_classification_respects_scheme() {
        let block = Block24::new(42);
        let mut table = PtrTable::new();
        table.set_scheme(block, NamingScheme::StaticKeyword { domain: "uni.example".into() });
        assert_eq!(classify_block(&table, block, 10), AssignmentHint::Static);

        let mut table = PtrTable::new();
        table.set_scheme(block, NamingScheme::PoolKeyword { domain: "isp.example".into() });
        assert_eq!(classify_block(&table, block, 10), AssignmentHint::Dynamic);

        let mut table = PtrTable::new();
        table.set_scheme(block, NamingScheme::Opaque { domain: "corp.example".into() });
        assert_eq!(classify_block(&table, block, 10), AssignmentHint::Unknown);
    }

    #[test]
    fn absent_records_are_unknown() {
        let table = PtrTable::new();
        assert_eq!(classify_block(&table, Block24::new(7), 1), AssignmentHint::Unknown);
    }

    /// The naive per-name implementation `classify_block` replaced:
    /// render every address, vote, apply threshold + consistency.
    fn classify_block_by_names(
        table: &PtrTable,
        block: Block24,
        min_records: usize,
    ) -> AssignmentHint {
        let mut votes_static = 0usize;
        let mut votes_dynamic = 0usize;
        let mut records = 0usize;
        for addr in block.addrs() {
            if let Some(name) = table.name_of(addr) {
                records += 1;
                match classify_name(&name) {
                    AssignmentHint::Static => votes_static += 1,
                    AssignmentHint::Dynamic => votes_dynamic += 1,
                    AssignmentHint::Unknown => {}
                }
            }
        }
        if records < min_records {
            return AssignmentHint::Unknown;
        }
        match (votes_static > 0, votes_dynamic > 0) {
            (true, false) => AssignmentHint::Static,
            (false, true) => AssignmentHint::Dynamic,
            _ => AssignmentHint::Unknown,
        }
    }

    #[test]
    fn scheme_fast_path_matches_per_name_voting() {
        // Every scheme shape, including keyword-bearing operator
        // domains (the "dsl.example.de" trap: an Opaque template whose
        // *domain* makes every name classify Dynamic) and nested
        // partial sampling.
        let dyn_domain = || NamingScheme::Opaque { domain: "dsl.example.de".into() };
        let schemes: Vec<NamingScheme> = vec![
            NamingScheme::StaticKeyword { domain: "uni.example".into() },
            NamingScheme::DynamicKeyword { domain: "x.example".into() },
            NamingScheme::PoolKeyword { domain: "isp.example".into() },
            NamingScheme::Opaque { domain: "corp.example".into() },
            dyn_domain(),
            NamingScheme::Opaque { domain: "static.example".into() },
            // Contradiction: static prefix, dynamic domain.
            NamingScheme::StaticKeyword { domain: "dsl.example.de".into() },
            NamingScheme::Partial { inner: Box::new(dyn_domain()), one_in: 4 },
            NamingScheme::Partial {
                inner: Box::new(NamingScheme::Partial {
                    inner: Box::new(NamingScheme::DynamicKeyword { domain: "x.example".into() }),
                    one_in: 2,
                }),
                one_in: 3,
            },
            NamingScheme::Partial { inner: Box::new(dyn_domain()), one_in: 0 },
            NamingScheme::None,
        ];
        for (i, scheme) in schemes.into_iter().enumerate() {
            let block = Block24::new(i as u32);
            let mut table = PtrTable::new();
            table.set_scheme(block, scheme.clone());
            for min_records in [0, 1, 32, 64, 256, 257] {
                assert_eq!(
                    classify_block(&table, block, min_records),
                    classify_block_by_names(&table, block, min_records),
                    "scheme {scheme:?} with min_records {min_records}"
                );
            }
        }
        // And a block with no scheme at all.
        let table = PtrTable::new();
        for min_records in [0, 1] {
            assert_eq!(
                classify_block(&table, Block24::new(99), min_records),
                classify_block_by_names(&table, Block24::new(99), min_records),
            );
        }
    }

    #[test]
    fn min_records_threshold_applies() {
        let block = Block24::new(9);
        let mut table = PtrTable::new();
        // Partial coverage scheme: only 1/8 of addresses get names.
        table.set_scheme(
            block,
            NamingScheme::Partial {
                inner: Box::new(NamingScheme::DynamicKeyword { domain: "x.example".into() }),
                one_in: 8,
            },
        );
        // 256/8 = 32 records exist; threshold above that yields Unknown.
        assert_eq!(classify_block(&table, block, 64), AssignmentHint::Unknown);
        assert_eq!(classify_block(&table, block, 16), AssignmentHint::Dynamic);
    }
}
