//! PTR record synthesis.
//!
//! Blocks are assigned a *naming scheme*; names are derived on demand
//! from the scheme and the address, so the table stores one scheme per
//! block rather than 256 strings.

use ipactive_net::{Addr, Block24};
use std::collections::HashMap;

/// How a block names its addresses in reverse DNS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NamingScheme {
    /// `static-a-b-c-d.<domain>` — reveals static assignment.
    StaticKeyword {
        /// Operator domain suffix.
        domain: String,
    },
    /// `dynamic-a-b-c-d.<domain>` — reveals dynamic assignment.
    DynamicKeyword {
        /// Operator domain suffix.
        domain: String,
    },
    /// `pool-a-b-c-d.<domain>` — reveals dynamic pool assignment.
    PoolKeyword {
        /// Operator domain suffix.
        domain: String,
    },
    /// `host-a-b-c-d.<domain>` — name exists but reveals nothing.
    Opaque {
        /// Operator domain suffix.
        domain: String,
    },
    /// Only one in `one_in` addresses has a record (sparse zone files).
    Partial {
        /// The scheme used for the addresses that do have records.
        inner: Box<NamingScheme>,
        /// Sampling modulus: host indices divisible by this get names.
        one_in: u8,
    },
    /// No PTR records at all.
    None,
}

impl NamingScheme {
    fn render(&self, addr: Addr) -> Option<String> {
        let [a, b, c, d] = addr.octets();
        match self {
            NamingScheme::StaticKeyword { domain } => Some(format!("static-{a}-{b}-{c}-{d}.{domain}")),
            NamingScheme::DynamicKeyword { domain } => {
                Some(format!("dynamic-{a}-{b}-{c}-{d}.{domain}"))
            }
            NamingScheme::PoolKeyword { domain } => Some(format!("pool-{a}-{b}-{c}-{d}.{domain}")),
            NamingScheme::Opaque { domain } => Some(format!("host-{a}-{b}-{c}-{d}.{domain}")),
            NamingScheme::Partial { inner, one_in } => {
                if *one_in > 0 && addr.host_index() % one_in == 0 {
                    inner.render(addr)
                } else {
                    None
                }
            }
            NamingScheme::None => None,
        }
    }

    /// Whether `addr` has a PTR record under this scheme — the
    /// allocation-free mirror of `render(addr).is_some()`.
    pub(crate) fn has_record(&self, addr: Addr) -> bool {
        match self {
            NamingScheme::Partial { inner, one_in } => {
                *one_in > 0 && addr.host_index() % one_in == 0 && inner.has_record(addr)
            }
            NamingScheme::None => false,
            _ => true,
        }
    }
}

/// Reverse-DNS table: per-`/24` naming schemes, rendered on lookup.
///
/// ```
/// use ipactive_dns::{NamingScheme, PtrTable};
/// use ipactive_net::{Addr, Block24};
/// let mut t = PtrTable::new();
/// let block = Block24::of("81.10.20.0".parse().unwrap());
/// t.set_scheme(block, NamingScheme::PoolKeyword { domain: "dsl.example.de".into() });
/// let name = t.name_of("81.10.20.7".parse().unwrap()).unwrap();
/// assert_eq!(name, "pool-81-10-20-7.dsl.example.de");
/// ```
#[derive(Debug, Clone, Default)]
pub struct PtrTable {
    schemes: HashMap<Block24, NamingScheme>,
}

impl PtrTable {
    /// An empty table (every lookup misses).
    pub fn new() -> Self {
        PtrTable { schemes: HashMap::new() }
    }

    /// Sets the naming scheme for a block.
    pub fn set_scheme(&mut self, block: Block24, scheme: NamingScheme) {
        self.schemes.insert(block, scheme);
    }

    /// The naming scheme of a block, if configured.
    pub fn scheme_of(&self, block: Block24) -> Option<&NamingScheme> {
        self.schemes.get(&block)
    }

    /// The PTR name of `addr`, if one exists.
    pub fn name_of(&self, addr: Addr) -> Option<String> {
        self.schemes.get(&Block24::of(addr))?.render(addr)
    }

    /// Number of blocks with a configured scheme.
    pub fn len(&self) -> usize {
        self.schemes.len()
    }

    /// Whether no block has a scheme.
    pub fn is_empty(&self) -> bool {
        self.schemes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr(s: &str) -> Addr {
        s.parse().unwrap()
    }

    #[test]
    fn renders_each_scheme() {
        let mut t = PtrTable::new();
        let b = Block24::of(addr("10.1.2.0"));
        t.set_scheme(b, NamingScheme::StaticKeyword { domain: "u.example".into() });
        assert_eq!(t.name_of(addr("10.1.2.3")).unwrap(), "static-10-1-2-3.u.example");
        t.set_scheme(b, NamingScheme::DynamicKeyword { domain: "u.example".into() });
        assert_eq!(t.name_of(addr("10.1.2.3")).unwrap(), "dynamic-10-1-2-3.u.example");
        t.set_scheme(b, NamingScheme::Opaque { domain: "u.example".into() });
        assert_eq!(t.name_of(addr("10.1.2.3")).unwrap(), "host-10-1-2-3.u.example");
        t.set_scheme(b, NamingScheme::None);
        assert_eq!(t.name_of(addr("10.1.2.3")), None);
    }

    #[test]
    fn partial_scheme_samples_hosts() {
        let mut t = PtrTable::new();
        let b = Block24::of(addr("10.1.2.0"));
        t.set_scheme(
            b,
            NamingScheme::Partial {
                inner: Box::new(NamingScheme::Opaque { domain: "x.example".into() }),
                one_in: 4,
            },
        );
        let named = b.addrs().filter(|&a| t.name_of(a).is_some()).count();
        assert_eq!(named, 64);
        assert!(t.name_of(addr("10.1.2.0")).is_some());
        assert!(t.name_of(addr("10.1.2.1")).is_none());
    }

    #[test]
    fn unconfigured_block_misses() {
        let t = PtrTable::new();
        assert!(t.is_empty());
        assert_eq!(t.name_of(addr("9.9.9.9")), None);
    }

    #[test]
    fn names_are_distinct_per_address() {
        let mut t = PtrTable::new();
        let b = Block24::of(addr("198.51.100.0"));
        t.set_scheme(b, NamingScheme::PoolKeyword { domain: "isp.example".into() });
        let names: std::collections::HashSet<String> =
            b.addrs().filter_map(|a| t.name_of(a)).collect();
        assert_eq!(names.len(), 256);
    }
}
