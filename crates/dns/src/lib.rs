//! # ipactive-dns
//!
//! Reverse-DNS (PTR) substrate: synthesis of hostname records for the
//! simulated address space, and the keyword classifier the paper uses
//! to tag `/24` blocks as statically or dynamically assigned
//! (Section 5.3, following the methodology of Xie et al. and Moura et
//! al.: names containing `static` suggest static assignment; `dynamic`,
//! `pool`, `dhcp`, `ppp`, `dial` suggest dynamic assignment).
//!
//! Coverage is intentionally imperfect, as in reality: many blocks
//! carry no PTR records or opaque names, and the classifier requires
//! *consistent* names across a block before tagging it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod classify;
mod synth;

pub use classify::{classify_block, classify_name, AssignmentHint};
pub use synth::{NamingScheme, PtrTable};
